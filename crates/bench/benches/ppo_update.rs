//! PPO update cost: one policy+value update over a fixed collected batch —
//! the other half of the Table IX epoch time (sampling being the first).

use criterion::{criterion_group, criterion_main, Criterion};

use rlsched_rl::{collect_rollouts, Env, PpoConfig};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SchedulingEnv};

fn bench_update(c: &mut Criterion) {
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(1024, 3));
    let cfg = AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig { max_obsv: 64, ..ObsConfig::default() },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig {
            train_pi_iters: 5,
            train_v_iters: 5,
            minibatch: Some(512),
            ..PpoConfig::default()
        },
        seed: 5,
    };
    let mut agent = Agent::new(cfg);
    let encoder = *agent.encoder();
    let objective = agent.objective();

    // Collect one reusable batch of 8 x 128-step episodes.
    let mut envs: Vec<SchedulingEnv> = (0..8)
        .map(|_| SchedulingEnv::new(trace.clone(), 128, SimConfig::default(), encoder, objective))
        .collect();
    let seeds: Vec<u64> = (0..8).collect();
    let (batch, _stats) = collect_rollouts(agent.ppo(), &mut envs, &seeds);

    let mut group = c.benchmark_group("ppo");
    group.sample_size(10);
    group.bench_function("update_5x5_iters_mb512", |b| {
        b.iter(|| std::hint::black_box(agent.ppo_mut().update(&batch)))
    });

    group.bench_function("rollout_8x128", |b| {
        b.iter(|| {
            let (batch, _s) = collect_rollouts(agent.ppo(), &mut envs, &seeds);
            std::hint::black_box(batch.len())
        })
    });

    // Per-step env interaction without the network (simulator+encoding).
    group.bench_function("env_step_random_policy", |b| {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        b.iter(|| {
            let mut env = envs[0].clone();
            let (_obs, mut mask) = env.reset(rng.gen());
            let mut steps = 0usize;
            loop {
                let valid: Vec<usize> =
                    (0..mask.len()).filter(|&i| mask[i] == 0.0).collect();
                let a = valid[rng.gen_range(0..valid.len())];
                let out = env.step(a);
                steps += 1;
                if out.done {
                    break;
                }
                mask = out.mask;
            }
            std::hint::black_box(steps)
        })
    });
    group.finish();
}


/// Short, CI-friendly measurement settings: these are latency gauges, not
/// regression-grade statistics.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
criterion_group!{name = benches; config = short_config(); targets = bench_update}
criterion_main!(benches);
