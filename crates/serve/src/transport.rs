//! Stream-type abstraction: the serving tier speaks the same protocol
//! over TCP and Unix-domain sockets.
//!
//! [`Transport`] is the client-side/connection-side stream contract
//! ([`std::net::TcpStream`], [`std::os::unix::net::UnixStream`], or the
//! type-erased [`AnyStream`]); [`Listen`] is the server-side listener
//! contract. [`ListenAddr`] is what a [`crate::ServeConfig`] binds,
//! [`ServerAddr`] is what a bound server publishes (port 0 resolved,
//! socket path settled) and what [`AnyStream::dial`] redials.
//!
//! ## `RLSCHED_WIRE`
//!
//! Mirroring `RLSCHED_FORCE_SCALAR`, the `RLSCHED_WIRE` environment
//! variable pins the *default* wire arm process-wide so the whole test
//! suite can be swept across protocol×transport without touching call
//! sites: a value containing `binary` makes clients default to the
//! length-prefixed binary framing ([`WireProtocol::Binary`]), and a
//! value containing `uds` makes [`ListenAddr::env_default`] (and hence
//! `ServeConfig::default()`) bind a fresh Unix socket instead of a TCP
//! port. `RLSCHED_WIRE=binary-uds` is the CI arm. Explicit
//! configuration always wins over the environment.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use crate::protocol::WireProtocol;

/// A bidirectional byte stream the protocol can run over.
///
/// Everything the client and the server's per-connection threads need
/// from a socket, with no TCP specifics: dialing, cloning into a
/// read/write half pair, timeouts, shutdown, and per-transport tuning
/// (Nagle for TCP, nothing for UDS).
pub trait Transport: Read + Write + Send + Sized + 'static {
    /// The address this stream type dials.
    type Addr: Clone + Send + Sync + std::fmt::Debug + 'static;

    /// Open a fresh connection to `addr`.
    fn dial(addr: &Self::Addr) -> std::io::Result<Self>;

    /// A second handle to the same underlying socket (read/write halves).
    fn try_clone(&self) -> std::io::Result<Self>;

    /// Shut down both directions, unblocking any parked reader.
    /// Best-effort: an already-dead socket is fine.
    fn shutdown_both(&self);

    /// Per-transport socket tuning (e.g. `TCP_NODELAY`). Best-effort.
    fn tune(&self) {}

    /// Bound each blocking read by `d` (`None` blocks indefinitely).
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()>;

    /// Bound each blocking write by `d` (`None` blocks indefinitely).
    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()>;
}

impl Transport for TcpStream {
    type Addr = SocketAddr;

    fn dial(addr: &SocketAddr) -> std::io::Result<Self> {
        TcpStream::connect(addr)
    }

    fn try_clone(&self) -> std::io::Result<Self> {
        TcpStream::try_clone(self)
    }

    fn shutdown_both(&self) {
        let _ = TcpStream::shutdown(self, std::net::Shutdown::Both);
    }

    fn tune(&self) {
        let _ = self.set_nodelay(true);
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, d)
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_write_timeout(self, d)
    }
}

impl Transport for UnixStream {
    type Addr = PathBuf;

    fn dial(addr: &PathBuf) -> std::io::Result<Self> {
        UnixStream::connect(addr)
    }

    fn try_clone(&self) -> std::io::Result<Self> {
        UnixStream::try_clone(self)
    }

    fn shutdown_both(&self) {
        let _ = UnixStream::shutdown(self, std::net::Shutdown::Both);
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        UnixStream::set_read_timeout(self, d)
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        UnixStream::set_write_timeout(self, d)
    }
}

/// What a [`crate::ServeConfig`] binds: a TCP bind string (port 0 picks
/// a free port) or a Unix-socket path (a stale file at that path is
/// removed before binding; the server removes it again on shutdown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A `host:port` bind string, e.g. `"127.0.0.1:0"`.
    Tcp(String),
    /// A filesystem path for a Unix-domain socket.
    Unix(PathBuf),
}

static UNIX_TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl ListenAddr {
    /// A fresh, collision-free Unix-socket path under the system temp
    /// directory (unique per process × call).
    pub fn unix_temp(tag: &str) -> ListenAddr {
        let n = UNIX_TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        ListenAddr::Unix(std::env::temp_dir().join(format!(
            "rlsched-serve-{tag}-{}-{n}.sock",
            std::process::id()
        )))
    }

    /// The default bind address, honoring `RLSCHED_WIRE`: a loopback
    /// TCP port normally, a fresh temp Unix socket when the env pin
    /// asks for UDS.
    pub fn env_default() -> ListenAddr {
        if wire_env().prefer_uds {
            ListenAddr::unix_temp("default")
        } else {
            ListenAddr::Tcp("127.0.0.1:0".to_string())
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(a) => write!(f, "tcp:{a}"),
            ListenAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Where a *bound* server actually listens — what clients dial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAddr {
    /// A resolved TCP socket address (port 0 already replaced).
    Tcp(SocketAddr),
    /// The Unix-socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerAddr::Tcp(a) => write!(f, "tcp:{a}"),
            ServerAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A connected stream over either transport, dialed from a
/// [`ServerAddr`]. The per-call enum dispatch costs one predictable
/// branch; transport-pinned code can use `TcpStream` / `UnixStream`
/// directly instead.
#[derive(Debug)]
pub enum AnyStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

impl Transport for AnyStream {
    type Addr = ServerAddr;

    fn dial(addr: &ServerAddr) -> std::io::Result<Self> {
        match addr {
            ServerAddr::Tcp(a) => TcpStream::connect(a).map(AnyStream::Tcp),
            ServerAddr::Unix(p) => UnixStream::connect(p).map(AnyStream::Unix),
        }
    }

    fn try_clone(&self) -> std::io::Result<Self> {
        match self {
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
        }
    }

    fn shutdown_both(&self) {
        match self {
            AnyStream::Tcp(s) => Transport::shutdown_both(s),
            AnyStream::Unix(s) => Transport::shutdown_both(s),
        }
    }

    fn tune(&self) {
        if let AnyStream::Tcp(s) = self {
            Transport::tune(s);
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(d),
            AnyStream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_write_timeout(d),
            AnyStream::Unix(s) => s.set_write_timeout(d),
        }
    }
}

/// Server-side listener contract: the accept loop is generic over this,
/// so TCP and UDS front doors share one implementation, monomorphized.
pub trait Listen: Send + 'static {
    /// The stream type accepted connections arrive as.
    type Stream: Transport;

    /// Toggle non-blocking accepts (the accept loop polls).
    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()>;

    /// Accept one pending connection.
    fn accept_stream(&self) -> std::io::Result<Self::Stream>;
}

impl Listen for TcpListener {
    type Stream = TcpStream;

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        TcpListener::set_nonblocking(self, nonblocking)
    }

    fn accept_stream(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(s, _peer)| s)
    }
}

impl Listen for UnixListener {
    type Stream = UnixStream;

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        UnixListener::set_nonblocking(self, nonblocking)
    }

    fn accept_stream(&self) -> std::io::Result<UnixStream> {
        self.accept().map(|(s, _peer)| s)
    }
}

/// The process-wide wire defaults pinned by `RLSCHED_WIRE`.
#[derive(Debug, Clone, Copy)]
pub struct WireEnv {
    /// Default client protocol ([`WireProtocol::Json`] unless the pin
    /// contains `binary`).
    pub protocol: WireProtocol,
    /// Whether `ServeConfig::default()` binds a Unix socket (pin
    /// contains `uds`).
    pub prefer_uds: bool,
}

/// Read (once) the `RLSCHED_WIRE` pin; see the module docs.
pub fn wire_env() -> WireEnv {
    static ENV: OnceLock<WireEnv> = OnceLock::new();
    *ENV.get_or_init(|| {
        let v = std::env::var("RLSCHED_WIRE").unwrap_or_default();
        WireEnv {
            protocol: if v.contains("binary") {
                WireProtocol::Binary
            } else {
                WireProtocol::Json
            },
            prefer_uds: v.contains("uds"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_temp_paths_are_unique() {
        let a = ListenAddr::unix_temp("t");
        let b = ListenAddr::unix_temp("t");
        assert_ne!(a, b);
    }

    #[test]
    fn any_stream_round_trips_over_both_transports() {
        use std::io::{BufRead, BufReader};
        // TCP echo.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = ServerAddr::Tcp(l.local_addr().unwrap());
        let t = std::thread::spawn(move || {
            let (mut s, _) = l.accept().unwrap();
            let mut line = String::new();
            BufReader::new(s.try_clone().unwrap())
                .read_line(&mut line)
                .unwrap();
            s.write_all(line.as_bytes()).unwrap();
        });
        let mut c = AnyStream::dial(&addr).unwrap();
        c.tune();
        c.write_all(b"ping\n").unwrap();
        let mut back = String::new();
        BufReader::new(c.try_clone().unwrap())
            .read_line(&mut back)
            .unwrap();
        assert_eq!(back, "ping\n");
        t.join().unwrap();

        // UDS echo through the same generic surface.
        let ListenAddr::Unix(path) = ListenAddr::unix_temp("echo") else {
            unreachable!()
        };
        let l = UnixListener::bind(&path).unwrap();
        let addr = ServerAddr::Unix(path.clone());
        let t = std::thread::spawn(move || {
            let mut s = l.accept_stream().unwrap();
            let mut line = String::new();
            BufReader::new(Transport::try_clone(&s).unwrap())
                .read_line(&mut line)
                .unwrap();
            s.write_all(line.as_bytes()).unwrap();
        });
        let mut c = AnyStream::dial(&addr).unwrap();
        c.write_all(b"pong\n").unwrap();
        let mut back = String::new();
        BufReader::new(c.try_clone().unwrap())
            .read_line(&mut back)
            .unwrap();
        assert_eq!(back, "pong\n");
        t.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
