//! The telemetry layer's overhead contract, measured.
//!
//! Two groups back the two halves of the `rlsched-obs` contract:
//!
//! * `obs_primitives` — the per-record cost of each hot-path handle:
//!   counter increment, gauge `set_max`, histogram record, and a
//!   *disabled* `span!` guard (the shape every non-traced run pays).
//!   All are a handful of nanoseconds; none allocates (the
//!   alloc-regression suite pins that separately).
//! * `obs_engine` — the whole-cycle check the acceptance bar reads:
//!   a `ShardEngine` push+flush cycle uninstrumented versus the same
//!   cycle with registry handles attached. The instrumented arm adds
//!   four relaxed atomic RMWs to a batched forward that streams whole
//!   weight matrices, so the deltas should disappear into noise
//!   (≤ 2%).
//!
//! The criterion shim writes `BENCH_obs_overhead.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use rlsched_obs::{Counter, Gauge, Histogram, Registry};
use rlsched_rl::PpoConfig;
use rlsched_serve::{EngineMetrics, ScorerSlot, ShardEngine};
use rlsched_sim::MetricKind;
use rlscheduler::{
    Agent, AgentConfig, ObsConfig, PolicyKind, QueueSnapshot, SnapshotJob, JOB_FEATURES,
};

const MAX_OBSV: usize = 64;
const BATCH: usize = 8;

fn agent() -> Agent {
    Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: MAX_OBSV,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig::default(),
        seed: 5,
    })
}

struct Row {
    obs: Vec<f32>,
    mask: Vec<f32>,
    queue_len: usize,
}

fn request_rows(agent: &Agent, n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let depth = 1 + (7 * i + 3) % MAX_OBSV;
            let snap = QueueSnapshot {
                free_procs: 16 + (i as u32 % 48),
                total_procs: 256,
                queue_len: depth as u32,
                jobs: (0..depth)
                    .map(|j| SnapshotJob {
                        wait: 30.0 * (1 + (i + j) % 100) as f64,
                        time_bound: 600.0 * (1 + (i * 13 + j * 7) % 200) as f64,
                        procs: 1 + ((i + 3 * j) % 64) as u32,
                        can_run_now: (i + j) % 3 != 0,
                    })
                    .collect(),
            };
            let mut obs = Vec::with_capacity(MAX_OBSV * JOB_FEATURES);
            let mut mask = Vec::with_capacity(MAX_OBSV);
            agent
                .encoder()
                .encode_snapshot_extend(&snap, &mut obs, &mut mask);
            Row {
                obs,
                mask,
                queue_len: depth,
            }
        })
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");

    let counter = Counter::standalone();
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            criterion::black_box(&counter);
        })
    });

    let gauge = Gauge::standalone();
    let mut x = 0u64;
    group.bench_function("gauge_set_max", |b| {
        b.iter(|| {
            x = (x + 7) % 512;
            gauge.set_max(x as f64);
            criterion::black_box(&gauge);
        })
    });

    let hist = Histogram::standalone();
    let mut v = 1u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = (v.wrapping_mul(48271)) % 2_000_000 + 1;
            hist.record_value(v);
            criterion::black_box(&hist);
        })
    });

    // The guard every un-traced run pays: one cached atomic load and a
    // branch, no clock read, no allocation.
    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            rlsched_obs::span!("bench.noop");
            criterion::black_box(0u8);
        })
    });

    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_engine");
    let agent = agent();
    let scorer = agent.scorer_snapshot();
    let rows = request_rows(&agent, BATCH);

    // Baseline: the serve tier's push+flush cycle, no telemetry.
    let mut plain = ShardEngine::new(ScorerSlot::new(scorer.clone()), BATCH);
    group.bench_function("push_flush_plain", |b| {
        b.iter(|| {
            for r in &rows {
                plain.push_row(&r.obs, &r.mask, r.queue_len);
            }
            criterion::black_box(plain.flush().len())
        })
    });

    // Instrumented: identical cycle with registry handles attached —
    // the configuration every production shard runs.
    let reg = Registry::new();
    let mut inst = ShardEngine::new(ScorerSlot::new(scorer), BATCH);
    inst.instrument(EngineMetrics {
        rows: reg.counter("bench_rows_total", &[]),
        batches: reg.counter("bench_batches_total", &[]),
        batch_rows: reg.histogram("bench_batch_rows", &[]),
        batch_max: reg.gauge("bench_batch_max", &[]),
    });
    group.bench_function("push_flush_instrumented", |b| {
        b.iter(|| {
            for r in &rows {
                inst.push_row(&r.obs, &r.mask, r.queue_len);
            }
            criterion::black_box(inst.flush().len())
        })
    });

    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
criterion_group! {name = benches; config = config(); targets = bench_primitives, bench_engine}
criterion_main!(benches);
