//! Error type for SWF parsing and trace manipulation.

use std::fmt;

/// Errors produced while reading or validating SWF data.
#[derive(Debug)]
pub enum SwfError {
    /// An I/O error while reading the underlying stream.
    Io(std::io::Error),
    /// A data line did not have the 18 whitespace-separated SWF fields.
    FieldCount {
        /// 1-based line number in the input.
        line: usize,
        /// Number of fields actually found.
        found: usize,
    },
    /// A field failed to parse as a number.
    BadField {
        /// 1-based line number in the input.
        line: usize,
        /// 0-based field index (see the SWF spec field order).
        field: usize,
        /// The offending token.
        token: String,
    },
    /// A semantic validation failed (e.g. negative submit time).
    Invalid {
        /// Job id of the offending record, when known.
        job: Option<u32>,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwfError::Io(e) => write!(f, "I/O error: {e}"),
            SwfError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 18 SWF fields, found {found}")
            }
            SwfError::BadField { line, field, token } => {
                write!(f, "line {line}: field {field} is not numeric: {token:?}")
            }
            SwfError::Invalid { job, reason } => match job {
                Some(id) => write!(f, "job {id}: {reason}"),
                None => write!(f, "invalid trace: {reason}"),
            },
        }
    }
}

impl std::error::Error for SwfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SwfError {
    fn from(e: std::io::Error) -> Self {
        SwfError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_field_count() {
        let e = SwfError::FieldCount { line: 3, found: 5 };
        assert_eq!(e.to_string(), "line 3: expected 18 SWF fields, found 5");
    }

    #[test]
    fn display_bad_field() {
        let e = SwfError::BadField {
            line: 7,
            field: 2,
            token: "abc".into(),
        };
        assert!(e.to_string().contains("field 2"));
        assert!(e.to_string().contains("abc"));
    }

    #[test]
    fn display_invalid_with_and_without_job() {
        let e = SwfError::Invalid {
            job: Some(9),
            reason: "negative submit".into(),
        };
        assert!(e.to_string().starts_with("job 9:"));
        let e = SwfError::Invalid {
            job: None,
            reason: "empty".into(),
        };
        assert!(e.to_string().starts_with("invalid trace:"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let io = std::io::Error::other("boom");
        let e: SwfError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
