//! # rlsched-serve — the sharded, request-coalescing policy-serving tier
//!
//! RLScheduler's pitch is that a trained kernel policy decides fast
//! enough to sit inside a live batch-job dispatcher (§IV-B1, Table IX).
//! This crate is that dispatcher-facing tier: it turns the batched
//! scoring building blocks (`BatchPolicy`, `PackedScorer`,
//! row-count-invariant forward kernels) into a server that answers
//! scheduling queries over a socket.
//!
//! ## Architecture
//!
//! * [`protocol`] — two frame formats for [`Request`] / [`Response`]:
//!   newline-delimited JSON (debuggable with `nc`) and length-prefixed
//!   little-endian binary frames with zero-copy `f32` rows. The server
//!   sniffs the first byte of every frame, so both coexist with no
//!   handshake; queue snapshots or pre-encoded rows in, actions out.
//!   `f32` rows cross either wire bit-exactly.
//! * [`transport`] — the [`Transport`] abstraction over TCP and Unix
//!   domain sockets: [`ListenAddr`] (server side), [`ServerAddr`]
//!   (bound address), [`AnyStream`] (runtime-chosen client stream),
//!   and the `RLSCHED_WIRE` env pin ([`wire_env`]).
//! * [`engine`] — [`ShardEngine`], the allocation-free coalescing batch
//!   scorer, and [`ScorerSlot`], the atomic weight hot-swap point.
//! * [`server`] — [`Server::spawn`] / [`ServerHandle`]: accept loop,
//!   per-connection reader/writer threads, N shard worker threads with
//!   deterministic id→shard routing, bounded inboxes with explicit
//!   shed responses, and a per-server `rlsched_obs::Registry` of
//!   counters / gauges / latency histograms scrapeable over the wire
//!   via `Request::Metrics` (and summarised by `Request::Stats`).
//! * [`client`] — [`ServeClient`] (blocking, single in-flight, typed
//!   [`ClientError`]s, reconnect + deadline + safe retry) and
//!   [`RemotePolicy`] (a `rlsched_sim::Policy` that schedules through
//!   the server — every simulator decision goes over the wire).
//! * [`histogram`] — re-export shim for the log-linear
//!   [`LatencyHistogram`], which now lives in `rlsched-obs` so every
//!   subsystem shares one latency bucketing scheme.
//! * [`faults`] — [`FaultPlan`], the deterministic fault-injection
//!   harness behind the chaos suite (`tests/chaos.rs`).
//!
//! ## The failure model
//!
//! Shard workers are supervised: panics are caught, the in-flight
//! batch is answered by a deterministic heuristic fallback
//! (`served_by: Fallback` on the wire), and the worker respawns under
//! a bounded restart budget — exhaustion parks it on the fallback arm
//! until a validated weight swap revives it. Checkpoints install
//! through propose → validate (all-finite walk + canary parity probe)
//! → commit with generation rollback. See `README.md` § Failure model.
//!
//! ## The parity guarantee
//!
//! Serving decisions are **bit-identical** to in-process
//! `Agent::as_policy` decisions, for every `PolicyKind`, on both SIMD
//! dispatch arms, regardless of batch composition, coalescing cuts, or
//! shard count. Three properties compose into that guarantee:
//!
//! 1. snapshot encoding and in-process view encoding share one loop
//!    (`ObsEncoder::encode_snapshot_extend`), and both wire formats
//!    round-trip floats exactly (JSON via shortest-round-trip
//!    formatting, binary via `to_le_bytes` verbatim);
//! 2. a [`rlscheduler::ScorerSnapshot`] picks the same per-architecture
//!    representation as `as_policy` (packed for flat MLPs, unpacked
//!    otherwise);
//! 3. the forward kernels are row-count invariant, so a row's bits do
//!    not depend on what else was coalesced around it.
//!
//! The suite in `tests/serve_parity.rs` pins the whole chain end to
//! end, across {JSON, binary} × {TCP, UDS} × shard counts.

pub mod client;
pub mod engine;
pub mod faults;
pub mod histogram;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod transport;

pub use client::{ClientConfig, ClientError, Decision, RemotePolicy, ServeClient};
pub use engine::{EngineMetrics, ScorerSlot, ShardEngine};
pub use faults::{write_torn_frame, FaultPlan};
pub use histogram::LatencyHistogram;
pub use loadgen::{LoadGen, LoadGenConfig, LoadGenReport, TimedRequest};
pub use protocol::{
    Request, Response, ServeStats, ServedBy, ShardHealth, ShardState, WireFrame, WireProtocol,
};
pub use server::{ProposeError, ServeConfig, Server, ServerHandle};
pub use transport::{wire_env, AnyStream, Listen, ListenAddr, ServerAddr, Transport};
