//! Property tests: the allocation-free inference fast path must agree
//! with the autodiff tape for every Table IV architecture.
//!
//! The SIMD microkernel reorders float accumulation (FMA), so log-probs
//! are compared within tolerance and the greedy *decision* (masked
//! argmax — what actually schedules jobs) must match exactly whenever
//! the top two logits are not a floating-point near-tie.

use proptest::prelude::*;

use rlsched_nn::{Graph, ParamBinds, Scratch, Tensor};
use rlsched_rl::categorical::MASK_OFF;
use rlsched_rl::{PolicyModel, ValueModel};
use rlscheduler::{PolicyKind, PolicyNet, ValueNet, JOB_FEATURES};

/// Window size: the smallest that every architecture accepts (LeNet
/// needs `max_obsv % 4 == 0 && >= 64`).
const K: usize = 64;

fn tape_log_probs(policy: &PolicyNet, obs: &[f32], mask: &[f32]) -> Vec<f32> {
    let mut g = Graph::new();
    let mut binds = ParamBinds::new();
    let o = g.input(Tensor::from_vec(obs.to_vec(), &[1, obs.len()]));
    let m = g.input(Tensor::from_vec(mask.to_vec(), &[1, mask.len()]));
    let lp = policy.log_probs(&mut g, o, m, &mut binds);
    g.value(lp).data().to_vec()
}

fn fast_log_probs(policy: &PolicyNet, obs: &[f32], mask: &[f32]) -> Vec<f32> {
    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    policy.log_probs_fast(obs, mask, &mut scratch, &mut out);
    out
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Gap between the largest and second-largest entries.
fn top2_gap(xs: &[f32]) -> f32 {
    let mut top = f32::NEG_INFINITY;
    let mut second = f32::NEG_INFINITY;
    for &x in xs {
        if x > top {
            second = top;
            top = x;
        } else if x > second {
            second = x;
        }
    }
    top - second
}

fn build_obs(features: &[f32], valid: usize) -> (Vec<f32>, Vec<f32>) {
    let mut obs = vec![0.0f32; K * JOB_FEATURES];
    let mut mask = vec![MASK_OFF; K];
    for s in 0..valid {
        for f in 0..JOB_FEATURES {
            obs[s * JOB_FEATURES + f] = features[(s * JOB_FEATURES + f) % features.len()];
        }
        obs[s * JOB_FEATURES + JOB_FEATURES - 1] = 1.0;
        mask[s] = 0.0;
    }
    (obs, mask)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole acceptance property: for all five `PolicyKind`s, the
    /// `score` fast path and the tape's `log_probs` argmax pick the same
    /// job on random observations.
    #[test]
    fn fast_score_agrees_with_tape_argmax_all_kinds(
        features in prop::collection::vec(0.0f32..1.0, K * JOB_FEATURES),
        valid in 1usize..=K,
        seed in 0u64..50,
    ) {
        let (obs, mask) = build_obs(&features, valid);
        for kind in PolicyKind::all() {
            let policy = PolicyNet::build(kind, K, seed);
            let tape = tape_log_probs(&policy, &obs, &mask);
            let fast = fast_log_probs(&policy, &obs, &mask);
            prop_assert_eq!(fast.len(), tape.len());
            // Log-probs agree within float-reassociation tolerance.
            for (slot, (f, t)) in fast.iter().zip(&tape).enumerate() {
                if mask[slot] == 0.0 {
                    prop_assert!(
                        (f - t).abs() <= 1e-3 * (1.0 + t.abs()),
                        "{}: slot {} fast {} vs tape {}", kind.name(), slot, f, t
                    );
                }
            }
            // The decision itself matches whenever it is not a near-tie.
            if top2_gap(&tape) > 1e-4 {
                prop_assert_eq!(
                    argmax(&fast),
                    argmax(&tape),
                    "{}: fast/tape argmax diverged", kind.name()
                );
            }
            // Masked slots can never win.
            prop_assert!(argmax(&fast) < valid, "{}: picked a padded slot", kind.name());
        }
    }

    /// The critic's fast path agrees with its tape forward.
    #[test]
    fn value_fast_agrees_with_tape(
        features in prop::collection::vec(0.0f32..1.0, K * JOB_FEATURES),
        valid in 1usize..=K,
        seed in 0u64..50,
    ) {
        let (obs, _mask) = build_obs(&features, valid);
        let net = ValueNet::new(K, seed);

        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let o = g.input(Tensor::from_vec(obs.clone(), &[1, obs.len()]));
        let v = net.values(&mut g, o, &mut binds);
        let tape = g.value(v).data()[0] as f64;

        let fast = net.value_fast(&obs, &mut Scratch::new());
        prop_assert!(
            (fast - tape).abs() <= 1e-4 * (1.0 + tape.abs()),
            "value fast {} vs tape {}", fast, tape
        );
    }
}
