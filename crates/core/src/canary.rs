//! Checkpoint-validation canary: a frozen batch of synthetic decision
//! points with the actions the *candidate agent itself* computes for
//! them in process.
//!
//! A serving tier must never install a checkpoint it cannot trust. The
//! all-finite weight walk ([`crate::ScorerSnapshot::all_finite`]) catches
//! NaN/Inf poisoning; the canary catches everything subtler — a snapshot
//! taken from the wrong agent, a stale pack, a representation bug, a
//! dimension drift — by demanding the proposed [`ScorerSnapshot`]
//! reproduce, bit for bit, the decisions the agent's in-process
//! [`Agent::as_policy`] path makes on a known batch. The expected actions
//! are computed through [`Agent::scorer_snapshot`] scoring, which the
//! serve parity suite pins as bit-identical to `as_policy` for every
//! architecture on both dispatch arms — so a canary pass certifies the
//! proposed snapshot scores exactly like the agent it claims to come
//! from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlsched_rl::{greedy_batch, ActorScratch};

use crate::agent::Agent;
use crate::nets::ScorerSnapshot;
use crate::obs::{QueueSnapshot, SnapshotJob};

/// Why a canary probe rejected a candidate snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum CanaryError {
    /// The candidate's observation window or action space does not match
    /// the canary's.
    Dims {
        /// Expected `(obs_dim, n_actions)`.
        want: (usize, usize),
        /// The candidate's `(obs_dim, n_actions)`.
        got: (usize, usize),
    },
    /// A scored log-probability came back non-finite (NaN/Inf weights
    /// that slipped past — or arose after — the parameter walk). Note
    /// this gate alone is not sufficient: ReLU (`max(0.0)`) swallows a
    /// NaN hidden activation into 0, so hidden-layer poison can reach the
    /// logits as a finite-but-wrong value. Callers must combine the
    /// canary with [`crate::ScorerSnapshot::all_finite`].
    NonFiniteLogits {
        /// First offending canary row.
        row: usize,
    },
    /// The candidate picked a different action than the agent's
    /// in-process scoring on the same row.
    Mismatch {
        /// First diverging canary row.
        row: usize,
        /// The action the agent computes in process.
        want: usize,
        /// The action the candidate snapshot computed.
        got: usize,
    },
}

impl std::fmt::Display for CanaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanaryError::Dims { want, got } => write!(
                f,
                "canary dims mismatch: want obs_dim/n_actions {want:?}, got {got:?}"
            ),
            CanaryError::NonFiniteLogits { row } => {
                write!(f, "non-finite logits on canary row {row}")
            }
            CanaryError::Mismatch { row, want, got } => write!(
                f,
                "canary row {row} diverged: in-process action {want}, candidate scored {got}"
            ),
        }
    }
}

impl std::error::Error for CanaryError {}

/// A frozen validation batch: synthetic decision points plus the actions
/// the candidate agent computes for them in process. Build one with
/// [`CanaryBatch::probe`] right after training, hand it to the serving
/// tier alongside the proposed snapshot.
#[derive(Debug, Clone)]
pub struct CanaryBatch {
    obs: Vec<f32>,
    masks: Vec<f32>,
    queue_lens: Vec<usize>,
    expected: Vec<usize>,
    obs_dim: usize,
    n_actions: usize,
}

impl CanaryBatch {
    /// Generate `rows` deterministic synthetic decision points (seeded —
    /// same agent, same seed, same canary) and score them through
    /// `agent`'s serving representation, recording the expected actions.
    ///
    /// The synthetic queues sweep short/long, wide/narrow, runnable and
    /// blocked jobs at varying depths, so a candidate that diverges
    /// anywhere in the policy's input space has a real chance of tripping
    /// a row; `rows` in the tens is plenty for the architectures here.
    pub fn probe(agent: &Agent, rows: usize, seed: u64) -> CanaryBatch {
        assert!(rows > 0, "a canary needs at least one row");
        let encoder = agent.encoder();
        let window = encoder.cfg.max_obsv;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = Vec::with_capacity(rows * encoder.obs_dim());
        let mut masks = Vec::with_capacity(rows * encoder.n_actions());
        let mut queue_lens = Vec::with_capacity(rows);
        for _ in 0..rows {
            let total_procs = 8u32 << rng.gen_range(0..4u32);
            let free_procs = rng.gen_range(0..=total_procs);
            let depth = rng.gen_range(1..=window.min(12));
            let jobs: Vec<SnapshotJob> = (0..depth)
                .map(|_| {
                    let procs = rng.gen_range(1..=total_procs);
                    SnapshotJob {
                        wait: rng.gen_range(0.0..36_000.0f64),
                        time_bound: rng.gen_range(60.0..259_200.0f64),
                        procs,
                        can_run_now: procs <= free_procs,
                    }
                })
                .collect();
            let snap = QueueSnapshot {
                free_procs,
                total_procs,
                queue_len: depth as u32,
                jobs,
            };
            encoder.encode_snapshot_extend(&snap, &mut obs, &mut masks);
            queue_lens.push(depth);
        }
        let mut canary = CanaryBatch {
            obs,
            masks,
            queue_lens,
            expected: Vec::new(),
            obs_dim: encoder.obs_dim(),
            n_actions: encoder.n_actions(),
        };
        let mut scratch = ActorScratch::new();
        let mut actions = Vec::new();
        canary.score(&agent.scorer_snapshot(), &mut scratch, &mut actions);
        canary.expected = actions;
        canary
    }

    /// Number of decision points in the batch.
    pub fn rows(&self) -> usize {
        self.queue_lens.len()
    }

    /// Row `i` as a raw scoring request: `(obs, mask, queue_len,
    /// expected_action)` — what a chaos/parity test replays through the
    /// wire to assert model-served decisions still match in-process bits.
    pub fn row(&self, i: usize) -> (&[f32], &[f32], usize, usize) {
        (
            &self.obs[i * self.obs_dim..(i + 1) * self.obs_dim],
            &self.masks[i * self.n_actions..(i + 1) * self.n_actions],
            self.queue_lens[i],
            self.expected[i],
        )
    }

    fn score(&self, scorer: &ScorerSnapshot, scratch: &mut ActorScratch, actions: &mut Vec<usize>) {
        greedy_batch(
            scorer,
            &self.obs,
            &self.masks,
            self.rows(),
            scratch,
            actions,
        );
        for (a, &qlen) in actions.iter_mut().zip(&self.queue_lens) {
            // The same defensive clamp as Agent::as_policy / ShardEngine.
            *a = (*a).min(qlen.saturating_sub(1));
        }
    }

    /// Validate a candidate snapshot: dimensions must match, every scored
    /// log-probability must be finite, and every row's action must equal
    /// the agent's in-process decision. `Ok(())` certifies the candidate
    /// is bit-faithful to the agent the canary was probed from.
    pub fn check(&self, candidate: &ScorerSnapshot) -> Result<(), CanaryError> {
        if candidate.obs_dim() != self.obs_dim || candidate.n_actions() != self.n_actions {
            return Err(CanaryError::Dims {
                want: (self.obs_dim, self.n_actions),
                got: (candidate.obs_dim(), candidate.n_actions()),
            });
        }
        let mut scratch = ActorScratch::new();
        // Finite-logit gate first: argmax over NaNs is not meaningful.
        let mut logp = Vec::new();
        use rlsched_rl::BatchPolicy;
        candidate.log_probs_batch(
            &self.obs,
            &self.masks,
            self.rows(),
            &mut scratch.nn,
            &mut logp,
        );
        for (row, chunk) in logp.chunks(self.n_actions).enumerate() {
            if chunk.iter().any(|v| !v.is_finite()) {
                return Err(CanaryError::NonFiniteLogits { row });
            }
        }
        let mut actions = Vec::new();
        self.score(candidate, &mut scratch, &mut actions);
        for (row, (&got, &want)) in actions.iter().zip(&self.expected).enumerate() {
            if got != want {
                return Err(CanaryError::Mismatch { row, want, got });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentConfig;
    use crate::nets::{PolicyKind, PolicyNet};
    use crate::obs::ObsConfig;
    use rlsched_rl::{PolicyModel, PpoConfig};
    use rlsched_sim::MetricKind;

    fn agent(kind: PolicyKind, seed: u64) -> Agent {
        Agent::new(AgentConfig {
            policy: kind,
            obs: ObsConfig {
                max_obsv: 16,
                ..ObsConfig::default()
            },
            metric: MetricKind::BoundedSlowdown,
            ppo: PpoConfig::default(),
            seed,
        })
    }

    #[test]
    fn probe_is_deterministic_and_self_consistent() {
        for kind in [PolicyKind::Kernel, PolicyKind::MlpV1] {
            let a = agent(kind, 3);
            let c1 = CanaryBatch::probe(&a, 24, 99);
            let c2 = CanaryBatch::probe(&a, 24, 99);
            assert_eq!(c1.expected, c2.expected, "{}", kind.name());
            assert_eq!(c1.obs, c2.obs, "{}", kind.name());
            c1.check(&a.scorer_snapshot())
                .expect("an agent's own snapshot passes its canary");
        }
    }

    #[test]
    fn wrong_agent_fails_the_canary() {
        let a = agent(PolicyKind::Kernel, 3);
        let b = agent(PolicyKind::Kernel, 4);
        let canary = CanaryBatch::probe(&a, 32, 7);
        let err = canary
            .check(&b.scorer_snapshot())
            .expect_err("different weights must trip a canary row");
        assert!(matches!(err, CanaryError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn dim_mismatch_is_rejected_before_scoring() {
        let a = agent(PolicyKind::Kernel, 3);
        let canary = CanaryBatch::probe(&a, 8, 7);
        let wide = Agent::new(AgentConfig {
            policy: PolicyKind::Kernel,
            obs: ObsConfig {
                max_obsv: 32,
                ..ObsConfig::default()
            },
            metric: MetricKind::BoundedSlowdown,
            ppo: PpoConfig::default(),
            seed: 3,
        });
        let err = canary.check(&wide.scorer_snapshot()).unwrap_err();
        assert!(matches!(err, CanaryError::Dims { .. }), "{err}");
    }

    #[test]
    fn nan_poisoned_snapshot_fails_finite_gates() {
        // Poison both serving representations: the kernel policy snapshots
        // as an unpacked net, MLP v1 as a transposed pack. Poison the
        // OUTPUT layer: a hidden-layer NaN is swallowed by ReLU
        // (max(NaN, 0.0) == 0.0), which is exactly why all_finite is the
        // primary gate and the logit check only a backstop.
        for kind in [PolicyKind::Kernel, PolicyKind::MlpV1] {
            let a = agent(kind, 5);
            let canary = CanaryBatch::probe(&a, 16, 11);
            let mut net = PolicyNet::build(kind, 16, 5);
            let mut params = net.params_mut();
            let last = params.last_mut().unwrap();
            for v in last.data_mut() {
                *v = f32::NAN;
            }
            let snap = ScorerSnapshot::new(&net, a.encoder().obs_dim(), a.encoder().n_actions());
            assert!(
                !snap.all_finite(),
                "{}: weight walk catches NaN",
                kind.name()
            );
            let err = canary
                .check(&snap)
                .expect_err("NaN logits must be rejected");
            assert!(
                matches!(err, CanaryError::NonFiniteLogits { .. }),
                "{}: {err}",
                kind.name()
            );
        }
    }

    #[test]
    fn hidden_layer_nan_slips_the_logit_gate_but_not_all_finite() {
        // Documents the ReLU-swallowing hazard: NaN in an early layer can
        // come out of the forward as finite logits, so a server relying on
        // the canary alone would install a poisoned checkpoint. The weight
        // walk must run first.
        let a = agent(PolicyKind::Kernel, 5);
        let mut net = PolicyNet::build(PolicyKind::Kernel, 16, 5);
        net.params_mut()[0].data_mut()[0] = f32::NAN;
        let snap = ScorerSnapshot::new(&net, a.encoder().obs_dim(), a.encoder().n_actions());
        assert!(!snap.all_finite(), "weight walk still catches it");
    }
}
