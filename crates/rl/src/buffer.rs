//! Rollout storage with Generalized Advantage Estimation.
//!
//! Mirrors the Spinning Up `PPOBuffer`: during an episode, per-step
//! observations, masks, actions, rewards, value estimates and sampled
//! log-probs are appended; `finish_path` closes the episode and computes
//! GAE-λ advantages and reward-to-go returns. The batch-job reward
//! structure of the paper — zero intermediate rewards, full metric at the
//! last action (§IV-A) — is just a special case.

use rlsched_nn::Tensor;

/// One merged, advantage-normalized training batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Observations, `[n, obs_dim]`.
    pub obs: Tensor,
    /// Additive action masks, `[n, n_actions]`.
    pub masks: Tensor,
    /// Chosen actions.
    pub actions: Vec<usize>,
    /// Normalized GAE advantages.
    pub advantages: Vec<f32>,
    /// Reward-to-go returns (value-function targets).
    pub returns: Vec<f32>,
    /// Behavior-policy log-probs at sampling time.
    pub logp_old: Vec<f32>,
}

impl Batch {
    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Episode-granular rollout buffer.
#[derive(Debug, Clone)]
pub struct RolloutBuffer {
    obs_dim: usize,
    n_actions: usize,
    gamma: f64,
    lam: f64,
    obs: Vec<f32>,
    masks: Vec<f32>,
    actions: Vec<usize>,
    rewards: Vec<f64>,
    values: Vec<f64>,
    logps: Vec<f32>,
    advantages: Vec<f64>,
    returns: Vec<f64>,
    path_start: usize,
}

impl RolloutBuffer {
    /// An empty buffer for `(obs_dim, n_actions)` transitions.
    pub fn new(obs_dim: usize, n_actions: usize, gamma: f64, lam: f64) -> Self {
        RolloutBuffer {
            obs_dim,
            n_actions,
            gamma,
            lam,
            obs: Vec::new(),
            masks: Vec::new(),
            actions: Vec::new(),
            rewards: Vec::new(),
            values: Vec::new(),
            logps: Vec::new(),
            advantages: Vec::new(),
            returns: Vec::new(),
            path_start: 0,
        }
    }

    /// Append one step of the current episode.
    pub fn store(
        &mut self,
        obs: &[f32],
        mask: &[f32],
        action: usize,
        reward: f64,
        value: f64,
        logp: f32,
    ) {
        assert_eq!(obs.len(), self.obs_dim, "observation width");
        assert_eq!(mask.len(), self.n_actions, "mask width");
        assert!(action < self.n_actions, "action out of range");
        self.obs.extend_from_slice(obs);
        self.masks.extend_from_slice(mask);
        self.actions.push(action);
        self.rewards.push(reward);
        self.values.push(value);
        self.logps.push(logp);
    }

    /// Close the current episode. `last_value` bootstraps a truncated
    /// episode (0.0 for terminal states, as in scheduling episodes that
    /// always run to completion).
    pub fn finish_path(&mut self, last_value: f64) {
        let start = self.path_start;
        let end = self.rewards.len();
        assert!(end > start, "finish_path on an empty episode");
        self.advantages.resize(end, 0.0);
        self.returns.resize(end, 0.0);
        gae_and_returns(
            end - start,
            last_value,
            self.gamma,
            self.lam,
            |i| start + i,
            &self.rewards,
            &self.values,
            &mut self.advantages,
            &mut self.returns,
        );
        self.path_start = end;
    }

    /// Steps stored so far (finished or not).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Sum of rewards of all finished episodes.
    pub fn total_reward(&self) -> f64 {
        self.rewards[..self.path_start].iter().sum()
    }

    /// Merge finished episodes from several buffers into one training
    /// batch, normalizing advantages to zero mean / unit variance across
    /// the whole batch (the Spinning Up "advantage normalization trick").
    pub fn into_batch(buffers: Vec<RolloutBuffer>) -> Batch {
        assert!(!buffers.is_empty());
        let obs_dim = buffers[0].obs_dim;
        let n_actions = buffers[0].n_actions;
        let mut obs = Vec::new();
        let mut masks = Vec::new();
        let mut actions = Vec::new();
        let mut advantages: Vec<f64> = Vec::new();
        let mut returns = Vec::new();
        let mut logp_old = Vec::new();
        for b in &buffers {
            assert_eq!(b.obs_dim, obs_dim);
            assert_eq!(b.n_actions, n_actions);
            assert_eq!(
                b.path_start,
                b.actions.len(),
                "all episodes must be finished before batching"
            );
            let n = b.path_start;
            obs.extend_from_slice(&b.obs[..n * obs_dim]);
            masks.extend_from_slice(&b.masks[..n * n_actions]);
            actions.extend_from_slice(&b.actions[..n]);
            advantages.extend_from_slice(&b.advantages[..n]);
            returns.extend(b.returns[..n].iter().map(|&r| r as f32));
            logp_old.extend_from_slice(&b.logps[..n]);
        }
        let n = actions.len();
        assert!(n > 0, "empty batch");
        let advantages = normalize_advantages(&advantages);

        Batch {
            obs: Tensor::from_vec(obs, &[n, obs_dim]),
            masks: Tensor::from_vec(masks, &[n, n_actions]),
            actions,
            advantages,
            returns,
            logp_old,
        }
    }
}

/// GAE-λ advantages and reward-to-go returns for one `n`-step episode,
/// bootstrapped with `last_value`: `delta_t = r_t + γ V_{t+1} − V_t`,
/// `A_t = Σ_k (γλ)^k delta_{t+k}`. `row` maps the episode's step index
/// to its storage row in the reward/value (and output) arrays — the ONE
/// recurrence shared by the contiguous per-episode [`RolloutBuffer`] and
/// the interleaved [`ArrivalArena`], so the two can never drift apart.
#[allow(clippy::too_many_arguments)] // the full GAE term list, both storages
fn gae_and_returns(
    n: usize,
    last_value: f64,
    gamma: f64,
    lam: f64,
    row: impl Fn(usize) -> usize,
    rewards: &[f64],
    values: &[f64],
    advantages: &mut [f64],
    returns: &mut [f64],
) {
    let mut next_adv = 0.0f64;
    for i in (0..n).rev() {
        let r = row(i);
        let v = values[r];
        let next_v = if i + 1 < n {
            values[row(i + 1)]
        } else {
            last_value
        };
        let delta = rewards[r] + gamma * next_v - v;
        next_adv = delta + gamma * lam * next_adv;
        advantages[r] = next_adv;
    }
    let mut running = last_value;
    for i in (0..n).rev() {
        let r = row(i);
        running = rewards[r] + gamma * running;
        returns[r] = running;
    }
}

/// The Spinning Up "advantage normalization trick": zero mean / unit
/// variance over the merged batch (1e-8 std floor), shared by both batch
/// assembly paths so the arithmetic cannot diverge between them.
fn normalize_advantages(advantages: &[f64]) -> Vec<f32> {
    let n = advantages.len();
    let mean = advantages.iter().sum::<f64>() / n as f64;
    let var = advantages
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum::<f64>()
        / n as f64;
    let std = var.sqrt().max(1e-8);
    advantages
        .iter()
        .map(|a| ((a - mean) / std) as f32)
        .collect()
}

/// Arrival-order rollout arena for the lockstep sampler.
///
/// The lockstep loop produces one transition per live episode per tick —
/// interleaved across episodes. Staging those rows into one
/// [`RolloutBuffer`] per episode means every tick scatters its stores
/// across N growing buffers (N distinct cache tails at lockstep width N)
/// and the final [`RolloutBuffer::into_batch`] re-copies everything
/// anyway. The arena instead appends every row to **one** contiguous
/// tail in arrival order, remembers each episode's row indices, and
/// performs a single episode-ordered gather at the end.
///
/// Bit-identity contract: [`ArrivalArena::into_batch`] produces exactly
/// the [`Batch`] that per-episode buffers merged through
/// [`RolloutBuffer::into_batch`] would — GAE runs per episode over the
/// same values in the same order, and the episode-ordered gather feeds
/// advantage normalization the same merged sequence. The `vecenv_parity`
/// suites pin this on both kernel dispatch arms.
#[derive(Debug)]
pub struct ArrivalArena {
    obs_dim: usize,
    n_actions: usize,
    gamma: f64,
    lam: f64,
    obs: Vec<f32>,
    masks: Vec<f32>,
    actions: Vec<usize>,
    rewards: Vec<f64>,
    values: Vec<f64>,
    logps: Vec<f32>,
    advantages: Vec<f64>,
    returns: Vec<f64>,
    /// Per-episode arrival row indices, in step order.
    rows: Vec<Vec<u32>>,
    /// Per-episode bootstrap value recorded at finish (for replay).
    finished: Vec<Option<f64>>,
}

impl ArrivalArena {
    /// An empty arena for `episodes` episodes of `(obs_dim, n_actions)`
    /// transitions.
    pub fn new(obs_dim: usize, n_actions: usize, gamma: f64, lam: f64, episodes: usize) -> Self {
        ArrivalArena {
            obs_dim,
            n_actions,
            gamma,
            lam,
            obs: Vec::new(),
            masks: Vec::new(),
            actions: Vec::new(),
            rewards: Vec::new(),
            values: Vec::new(),
            logps: Vec::new(),
            advantages: Vec::new(),
            returns: Vec::new(),
            rows: (0..episodes).map(|_| Vec::new()).collect(),
            finished: vec![None; episodes],
        }
    }

    /// Append one step of `episode` (steps of one episode must arrive in
    /// order; different episodes may interleave freely).
    #[allow(clippy::too_many_arguments)] // RolloutBuffer::store's row + the episode key
    pub fn store(
        &mut self,
        episode: usize,
        obs: &[f32],
        mask: &[f32],
        action: usize,
        reward: f64,
        value: f64,
        logp: f32,
    ) {
        assert_eq!(obs.len(), self.obs_dim, "observation width");
        assert_eq!(mask.len(), self.n_actions, "mask width");
        assert!(action < self.n_actions, "action out of range");
        assert!(
            self.finished[episode].is_none(),
            "store into a finished episode"
        );
        let row = self.actions.len() as u32;
        self.obs.extend_from_slice(obs);
        self.masks.extend_from_slice(mask);
        self.actions.push(action);
        self.rewards.push(reward);
        self.values.push(value);
        self.logps.push(logp);
        self.advantages.push(0.0);
        self.returns.push(0.0);
        self.rows[episode].push(row);
    }

    /// Close `episode`, computing its GAE-λ advantages and reward-to-go
    /// returns over its rows through the same [`gae_and_returns`]
    /// recurrence [`RolloutBuffer::finish_path`] runs.
    pub fn finish_episode(&mut self, episode: usize, last_value: f64) {
        let rows = &self.rows[episode];
        assert!(!rows.is_empty(), "finish_episode on an empty episode");
        assert!(self.finished[episode].is_none(), "episode finished twice");
        gae_and_returns(
            rows.len(),
            last_value,
            self.gamma,
            self.lam,
            |i| rows[i] as usize,
            &self.rewards,
            &self.values,
            &mut self.advantages,
            &mut self.returns,
        );
        self.finished[episode] = Some(last_value);
    }

    /// One episode-ordered gather into a merged, advantage-normalized
    /// training batch — bit-identical to staging per-episode
    /// [`RolloutBuffer`]s and merging them with
    /// [`RolloutBuffer::into_batch`] in episode order.
    pub fn into_batch(self) -> Batch {
        Self::merge_into_batch(vec![self])
    }

    /// Merge several arenas into one batch: episodes are gathered in
    /// arena order, then episode order within each arena, and advantage
    /// normalization runs ONCE over the merged sequence. Because each
    /// row's GAE depends only on its own episode, the result is
    /// bit-identical to one arena having collected the same episodes in
    /// the same overall order — this is the parallel rollout's seed-order
    /// merge of per-worker arenas.
    pub fn merge_into_batch(arenas: Vec<ArrivalArena>) -> Batch {
        assert!(!arenas.is_empty(), "merge of zero arenas");
        let obs_dim = arenas[0].obs_dim;
        let n_actions = arenas[0].n_actions;
        let n: usize = arenas.iter().map(|a| a.actions.len()).sum();
        assert!(n > 0, "empty batch");
        let mut obs = Vec::with_capacity(n * obs_dim);
        let mut masks = Vec::with_capacity(n * n_actions);
        let mut actions = Vec::with_capacity(n);
        let mut advantages: Vec<f64> = Vec::with_capacity(n);
        let mut returns = Vec::with_capacity(n);
        let mut logp_old = Vec::with_capacity(n);
        for a in &arenas {
            assert_eq!(a.obs_dim, obs_dim);
            assert_eq!(a.n_actions, n_actions);
            for (ep, fin) in a.finished.iter().enumerate() {
                assert!(
                    fin.is_some() || a.rows[ep].is_empty(),
                    "all episodes must be finished before batching"
                );
            }
            for rows in &a.rows {
                for &row in rows {
                    let r = row as usize;
                    obs.extend_from_slice(&a.obs[r * obs_dim..(r + 1) * obs_dim]);
                    masks.extend_from_slice(&a.masks[r * n_actions..(r + 1) * n_actions]);
                    actions.push(a.actions[r]);
                    advantages.push(a.advantages[r]);
                    returns.push(a.returns[r] as f32);
                    logp_old.push(a.logps[r]);
                }
            }
        }

        // Advantage normalization over the merged episode order — the
        // same helper `RolloutBuffer::into_batch` runs.
        let advantages = normalize_advantages(&advantages);

        Batch {
            obs: Tensor::from_vec(obs, &[n, obs_dim]),
            masks: Tensor::from_vec(masks, &[n, n_actions]),
            actions,
            advantages,
            returns,
            logp_old,
        }
    }

    /// Replay the arena into per-episode [`RolloutBuffer`]s (episode
    /// order) — the compatibility path for callers that want per-episode
    /// granularity; contents are bit-identical to having staged per
    /// episode from the start.
    pub fn into_episode_buffers(self) -> Vec<RolloutBuffer> {
        self.rows
            .iter()
            .enumerate()
            .map(|(ep, rows)| {
                let mut buf =
                    RolloutBuffer::new(self.obs_dim, self.n_actions, self.gamma, self.lam);
                for &row in rows {
                    let r = row as usize;
                    buf.store(
                        &self.obs[r * self.obs_dim..(r + 1) * self.obs_dim],
                        &self.masks[r * self.n_actions..(r + 1) * self.n_actions],
                        self.actions[r],
                        self.rewards[r],
                        self.values[r],
                        self.logps[r],
                    );
                }
                if let Some(last_value) = self.finished[ep] {
                    buf.finish_path(last_value);
                }
                buf
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_buffer(rewards: &[f64], values: &[f64], gamma: f64, lam: f64) -> RolloutBuffer {
        let mut b = RolloutBuffer::new(2, 3, gamma, lam);
        for (i, (&r, &v)) in rewards.iter().zip(values).enumerate() {
            b.store(&[i as f32, 0.0], &[0.0, 0.0, 0.0], i % 3, r, v, -1.0);
        }
        b.finish_path(0.0);
        b
    }

    #[test]
    fn returns_are_rewards_to_go() {
        let b = simple_buffer(&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0], 1.0, 1.0);
        assert_eq!(b.returns, vec![6.0, 5.0, 3.0]);
    }

    #[test]
    fn discounted_returns() {
        let b = simple_buffer(&[1.0, 1.0], &[0.0, 0.0], 0.5, 1.0);
        assert_eq!(b.returns, vec![1.5, 1.0]);
    }

    #[test]
    fn gae_with_lambda_one_gamma_one_is_return_minus_value() {
        // With γ=λ=1 and terminal bootstrap 0: A_t = G_t − V_t
        // (telescoping identity).
        let rewards = [0.0, 0.0, -5.0];
        let values = [1.0, 2.0, 3.0];
        let b = simple_buffer(&rewards, &values, 1.0, 1.0);
        let expect = [-5.0 - 1.0, -5.0 - 2.0, -5.0 - 3.0];
        for (a, e) in b.advantages.iter().zip(expect) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
    }

    #[test]
    fn gae_lambda_zero_is_one_step_td() {
        // λ=0: A_t = r_t + γ V_{t+1} − V_t.
        let rewards = [1.0, 2.0];
        let values = [0.5, 0.25];
        let b = simple_buffer(&rewards, &values, 0.9, 0.0);
        let e0 = 1.0 + 0.9 * 0.25 - 0.5;
        let e1 = 2.0 + 0.0 - 0.25;
        assert!((b.advantages[0] - e0).abs() < 1e-9);
        assert!((b.advantages[1] - e1).abs() < 1e-9);
    }

    #[test]
    fn delayed_reward_structure_of_the_paper() {
        // Rewards all zero except the last step (−bsld): every action in
        // the episode receives the same return with γ=1.
        let b = simple_buffer(&[0.0, 0.0, 0.0, -42.0], &[0.0; 4], 1.0, 1.0);
        assert!(b.returns.iter().all(|&r| (r + 42.0).abs() < 1e-9));
    }

    #[test]
    fn batch_merges_and_normalizes() {
        let b1 = simple_buffer(&[0.0, -10.0], &[0.0, 0.0], 1.0, 1.0);
        let b2 = simple_buffer(&[0.0, -20.0], &[0.0, 0.0], 1.0, 1.0);
        let batch = RolloutBuffer::into_batch(vec![b1, b2]);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.obs.shape(), &[4, 2]);
        assert_eq!(batch.masks.shape(), &[4, 3]);
        let mean: f32 = batch.advantages.iter().sum::<f32>() / 4.0;
        let var: f32 = batch
            .advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
    }

    #[test]
    fn multi_episode_buffer() {
        let mut b = RolloutBuffer::new(1, 2, 1.0, 1.0);
        b.store(&[0.0], &[0.0, 0.0], 0, 0.0, 0.0, -0.5);
        b.store(&[1.0], &[0.0, 0.0], 1, -1.0, 0.0, -0.5);
        b.finish_path(0.0);
        b.store(&[2.0], &[0.0, 0.0], 0, -2.0, 0.0, -0.5);
        b.finish_path(0.0);
        assert_eq!(b.returns, vec![-1.0, -1.0, -2.0]);
        assert!((b.total_reward() + 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty episode")]
    fn finish_empty_path_panics() {
        let mut b = RolloutBuffer::new(1, 2, 1.0, 1.0);
        b.finish_path(0.0);
    }

    #[test]
    #[should_panic(expected = "must be finished")]
    fn unfinished_episode_cannot_batch() {
        let mut b = RolloutBuffer::new(1, 2, 1.0, 1.0);
        b.store(&[0.0], &[0.0, 0.0], 0, 0.0, 0.0, -0.5);
        let _ = RolloutBuffer::into_batch(vec![b]);
    }

    #[test]
    #[should_panic(expected = "observation width")]
    fn store_checks_widths() {
        let mut b = RolloutBuffer::new(2, 2, 1.0, 1.0);
        b.store(&[0.0], &[0.0, 0.0], 0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn arena_matches_per_episode_buffers_bitwise() {
        // Interleaved arrival across 3 episodes of different lengths must
        // produce exactly the batch (and the replayed buffers) that
        // per-episode staging produces.
        let (gamma, lam) = (0.9, 0.95);
        let mut arena = ArrivalArena::new(2, 3, gamma, lam, 3);
        let mut bufs: Vec<RolloutBuffer> = (0..3)
            .map(|_| RolloutBuffer::new(2, 3, gamma, lam))
            .collect();
        // (episode, step) arrival order with episode 1 finishing early.
        let schedule: &[(usize, usize)] = &[
            (0, 0),
            (1, 0),
            (2, 0),
            (0, 1),
            (1, 1),
            (2, 1),
            (0, 2),
            (2, 2),
            (0, 3),
            (2, 3),
        ];
        for &(ep, t) in schedule {
            let obs = [ep as f32 + t as f32 * 0.1, -(t as f32)];
            let mask = [0.0, 0.0, 0.0];
            let a = (ep + t) % 3;
            let r = (t as f64 + 1.0) * if ep == 1 { -1.0 } else { 0.5 };
            let v = ep as f64 * 0.3 + t as f64 * 0.01;
            let lp = -0.5 - t as f32 * 0.1;
            arena.store(ep, &obs, &mask, a, r, v, lp);
            bufs[ep].store(&obs, &mask, a, r, v, lp);
        }
        for (ep, buf) in bufs.iter_mut().enumerate() {
            arena.finish_episode(ep, 0.0);
            buf.finish_path(0.0);
        }
        let replayed = {
            let mut a2 = ArrivalArena::new(2, 3, gamma, lam, 3);
            for &(ep, t) in schedule {
                let obs = [ep as f32 + t as f32 * 0.1, -(t as f32)];
                a2.store(
                    ep,
                    &obs,
                    &[0.0, 0.0, 0.0],
                    (ep + t) % 3,
                    (t as f64 + 1.0) * if ep == 1 { -1.0 } else { 0.5 },
                    ep as f64 * 0.3 + t as f64 * 0.01,
                    -0.5 - t as f32 * 0.1,
                );
            }
            for ep in 0..3 {
                a2.finish_episode(ep, 0.0);
            }
            a2.into_episode_buffers()
        };
        let from_arena = arena.into_batch();
        let from_bufs = RolloutBuffer::into_batch(bufs);
        assert_eq!(from_arena.obs.data(), from_bufs.obs.data());
        assert_eq!(from_arena.masks.data(), from_bufs.masks.data());
        assert_eq!(from_arena.actions, from_bufs.actions);
        assert_eq!(from_arena.advantages, from_bufs.advantages);
        assert_eq!(from_arena.returns, from_bufs.returns);
        assert_eq!(from_arena.logp_old, from_bufs.logp_old);
        // And the replay path merges to the same bits.
        let from_replay = RolloutBuffer::into_batch(replayed);
        assert_eq!(from_replay.advantages, from_bufs.advantages);
        assert_eq!(from_replay.obs.data(), from_bufs.obs.data());
    }

    #[test]
    fn split_arenas_merge_bit_identically() {
        // The same 3 episodes collected into one arena vs split across
        // two arenas ({0,1} and {2}) must merge to the same bits — the
        // invariant the parallel rollout's seed-order merge rests on.
        let (gamma, lam) = (0.97, 0.9);
        let step = |ep: usize, t: usize| {
            (
                [ep as f32 * 2.0 + t as f32, t as f32 * 0.5],
                [0.0f32, 0.0, 0.0],
                (ep * 2 + t) % 3,
                -((ep + 1) as f64) * (t as f64 + 0.5),
                ep as f64 * 0.1 - t as f64 * 0.2,
                -0.3 - ep as f32 * 0.07,
            )
        };
        let lens = [4usize, 2, 3];
        let mut whole = ArrivalArena::new(2, 3, gamma, lam, 3);
        let mut first = ArrivalArena::new(2, 3, gamma, lam, 2);
        let mut second = ArrivalArena::new(2, 3, gamma, lam, 1);
        for (ep, &len) in lens.iter().enumerate() {
            for t in 0..len {
                let (obs, mask, a, r, v, lp) = step(ep, t);
                whole.store(ep, &obs, &mask, a, r, v, lp);
                if ep < 2 {
                    first.store(ep, &obs, &mask, a, r, v, lp);
                } else {
                    second.store(0, &obs, &mask, a, r, v, lp);
                }
            }
            whole.finish_episode(ep, 0.0);
        }
        first.finish_episode(0, 0.0);
        first.finish_episode(1, 0.0);
        second.finish_episode(0, 0.0);
        let merged = ArrivalArena::merge_into_batch(vec![first, second]);
        let single = whole.into_batch();
        assert_eq!(merged.obs.data(), single.obs.data());
        assert_eq!(merged.masks.data(), single.masks.data());
        assert_eq!(merged.actions, single.actions);
        assert_eq!(merged.advantages, single.advantages);
        assert_eq!(merged.returns, single.returns);
        assert_eq!(merged.logp_old, single.logp_old);
    }

    #[test]
    #[should_panic(expected = "must be finished")]
    fn arena_rejects_unfinished_batching() {
        let mut arena = ArrivalArena::new(1, 2, 1.0, 1.0, 1);
        arena.store(0, &[0.0], &[0.0, 0.0], 0, 0.0, 0.0, -0.5);
        let _ = arena.into_batch();
    }

    #[test]
    fn bootstrap_value_used_for_truncated_paths() {
        let mut b = RolloutBuffer::new(1, 2, 1.0, 1.0);
        b.store(&[0.0], &[0.0, 0.0], 0, 1.0, 0.5, -0.5);
        b.finish_path(10.0); // truncated: bootstrap with V=10
        assert_eq!(b.returns, vec![11.0]);
        // A_0 = r + γ·V_boot − V_0 = 1 + 10 − 0.5
        assert!((b.advantages[0] - 10.5).abs() < 1e-9);
    }
}
