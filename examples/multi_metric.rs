//! Domain scenario: the paper's core motivation — the *same* automated
//! scheduler adapts to different optimization goals (§V-D).
//!
//! An operations team first wants high utilization, then management pivots
//! to user experience (low bounded slowdown). With heuristics that means
//! swapping schedulers; with RLScheduler it means changing one line — the
//! reward — and retraining.
//!
//! ```text
//! cargo run --release --example multi_metric
//! ```

use rlsched_repro::core::prelude::*;
use rlsched_repro::sched::{HeuristicKind, PriorityScheduler};
use rlsched_repro::workload::NamedWorkload;

fn train_for(metric: MetricKind, trace: &rlsched_repro::swf::JobTrace, seed: u64) -> Agent {
    let mut cfg = AgentConfig::for_metric(metric);
    cfg.obs.max_obsv = 32;
    cfg.ppo.train_pi_iters = 15;
    cfg.ppo.train_v_iters = 15;
    cfg.ppo.minibatch = Some(512);
    cfg.seed = seed;
    let mut agent = Agent::new(cfg);
    let train_cfg = TrainConfig {
        epochs: 8,
        trajectories_per_epoch: 10,
        seq_len: 128,
        sim: SimConfig::with_backfill(),
        filter: FilterMode::Off,
        seed,
        n_envs: 8,
        n_threads: 1,
    };
    train(&mut agent, trace, &train_cfg);
    agent
}

fn main() {
    let trace = NamedWorkload::Lublin2.generate(1500, 11);
    let windows = sample_eval_windows(&trace, 4, 256, 5);
    let sim = SimConfig::with_backfill();

    println!("goal 1: maximize utilization — retrain with reward = +util");
    let util_agent = train_for(MetricKind::Utilization, &trace, 1);
    println!("goal 2: minimize bounded slowdown — retrain with reward = -bsld");
    let bsld_agent = train_for(MetricKind::BoundedSlowdown, &trace, 2);

    println!("\n{:<12} {:>10} {:>10}", "scheduler", "util", "bsld");
    for kind in HeuristicKind::table3() {
        let mut sched = PriorityScheduler::new(kind);
        let r = evaluate_policy(&windows, sim, &mut sched);
        println!(
            "{:<12} {:>10.3} {:>10.2}",
            kind.name(),
            mean_metric(&r, MetricKind::Utilization),
            mean_metric(&r, MetricKind::BoundedSlowdown)
        );
    }
    for (name, agent) in [("RL-util", &util_agent), ("RL-bsld", &bsld_agent)] {
        let r = evaluate_policy(&windows, sim, &mut agent.as_policy());
        println!(
            "{:<12} {:>10.3} {:>10.2}",
            name,
            mean_metric(&r, MetricKind::Utilization),
            mean_metric(&r, MetricKind::BoundedSlowdown)
        );
    }

    println!(
        "\nSame code path, two policies: the reward function is the only thing\n\
         that changed between RL-util and RL-bsld (§IV-A of the paper)."
    );
}
