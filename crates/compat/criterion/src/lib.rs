//! Offline shim for `criterion`: wall-clock micro-benchmark timing with
//! criterion's macro/builder surface and machine-readable output.
//!
//! Each `bench_function` warms up, then takes `sample_size` samples (each
//! a calibrated batch of iterations) and reports the **median ns/iter**
//! (medians are robust to scheduler noise on shared CI runners). On exit,
//! `criterion_main!` writes every result to `BENCH_<bench-name>.json` in
//! the process's working directory (for `cargo bench` that is the bench's
//! package root, e.g. `crates/bench/`), or in `$BENCH_OUT_DIR` when set —
//! so per-PR perf trajectories can be diffed without parsing console
//! output.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` id.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Benchmark runner configuration (builder style, like upstream).
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total time budget for measurement samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Number of samples (the median of which is reported).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id, self.warm_up, self.measurement, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = Some(n);
        self
    }

    /// Benchmark one function under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(
            &full,
            self.criterion.warm_up,
            self.criterion.measurement,
            samples,
            f,
        );
        self
    }

    /// Finish the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmarked closure; `iter` runs the workload.
pub struct Bencher {
    mode: BenchMode,
    /// Measured duration of the last `iter` call (batch total).
    elapsed: Duration,
    iters: u64,
}

enum BenchMode {
    /// Run once (calibration/warmup probing).
    Probe,
    /// Run a timed batch.
    Timed,
}

impl Bencher {
    /// Run `f` for the configured number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BenchMode::Probe => {
                let t0 = Instant::now();
                std::hint::black_box(f());
                self.elapsed = t0.elapsed();
            }
            BenchMode::Timed => {
                let t0 = Instant::now();
                for _ in 0..self.iters {
                    std::hint::black_box(f());
                }
                self.elapsed = t0.elapsed();
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut f: F,
) {
    // Warm-up + calibration: probe single-iteration cost until the warm-up
    // budget is spent.
    let mut probe = Bencher {
        mode: BenchMode::Probe,
        elapsed: Duration::ZERO,
        iters: 1,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    let mut probes = 0u32;
    while warm_start.elapsed() < warm_up || probes < 3 {
        f(&mut probe);
        per_iter = probe.elapsed.max(Duration::from_nanos(1));
        probes += 1;
        if probes > 1_000_000 {
            break;
        }
    }

    // Size each sample so that sample_size samples fill the measurement
    // budget, with at least one iteration per sample.
    let budget_per_sample = measurement / sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    let mut bench = Bencher {
        mode: BenchMode::Timed,
        elapsed: Duration::ZERO,
        iters,
    };
    for _ in 0..sample_size {
        f(&mut bench);
        samples_ns.push(bench.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples_ns[samples_ns.len() / 2];

    println!(
        "  {id:<50} median {:>12}  ({iters} iters/sample, {sample_size} samples)",
        fmt_ns(median)
    );
    RESULTS.lock().expect("results lock").push(Measurement {
        id: id.to_string(),
        median_ns: median,
        iters_per_sample: iters,
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Prevent the optimizer from discarding a value (upstream re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Where `BENCH_<name>.json` files go: `$BENCH_OUT_DIR` if set, else the
/// current working directory.
fn out_dir() -> std::path::PathBuf {
    std::env::var_os("BENCH_OUT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."))
}

/// Write collected results as `BENCH_<bench-name>.json`. Called by
/// `criterion_main!` after all groups ran.
pub fn finalize_and_write_report() {
    let results = RESULTS.lock().expect("results lock");
    if results.is_empty() {
        return;
    }
    // `target/…/deps/decision_latency-1a2b…` → `decision_latency`.
    let exe = std::env::current_exe().ok();
    let stem = exe
        .as_ref()
        .and_then(|p| p.file_stem())
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    let name = match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base
        }
        _ => stem,
    };
    let mut body = String::from("{\n");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "  \"{}\": {{\"median_ns\": {:.1}, \"iters_per_sample\": {}}}",
            m.id.replace('"', ""),
            m.median_ns,
            m.iters_per_sample
        ));
    }
    body.push_str("\n}\n");
    let path = out_dir().join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, body) {
        Ok(()) => println!("\n[bench report saved to {}]", path.display()),
        Err(e) => eprintln!(
            "warning: could not write bench report {}: {e}",
            path.display()
        ),
    }
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize_and_write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(50))
            .sample_size(5);
        let mut group = c.benchmark_group("unit");
        group.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        let results = RESULTS.lock().unwrap();
        let m = results
            .iter()
            .find(|m| m.id == "unit/noop_sum")
            .expect("recorded");
        assert!(m.median_ns > 0.0);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
    }
}
