//! Offline shim for `rayon`: typed parallel-iterator combinators for the
//! patterns this workspace uses, executed with real `std::thread::scope`
//! fan-out.
//!
//! Supported shapes:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()`
//! * `slice.par_iter_mut().zip(other.par_iter()).map(f).collect::<Vec<_>>()`
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)`
//!
//! plus the shim-specific entry points [`fan_out`] (ordered range
//! fan-out), [`with_threads`] (scoped worker-budget override) and
//! [`current_num_threads`].
//!
//! # Threading model & determinism contract
//!
//! Work is partitioned into **fixed tasks whose boundaries depend only
//! on the input size** — never on the machine or the worker budget
//! (`n` items split into `min(n, MAX_TASKS)` contiguous ranges;
//! `par_chunks_mut(k)` makes each user chunk a task). Workers execute
//! contiguous groups of tasks and results are stitched back in task
//! order, so `collect` preserves input order exactly like rayon AND any
//! per-task reduction merged in task order is bit-identical at every
//! thread count. Small inputs run inline to skip thread start-up cost.
//!
//! The worker budget comes from, in priority order: a scoped
//! [`with_threads`] override on the calling thread, the
//! `RLSCHED_THREADS` environment variable (read once, like
//! `RLSCHED_FORCE_SCALAR` / `RLSCHED_FORCE_TAPE` in `rlsched-nn`), and
//! `available_parallelism`. A fan-out issued from *inside* a shim
//! worker runs inline (thread-local guard) so nested parallelism never
//! oversubscribes to `workers²` threads.
//!
//! Panics in task closures are re-raised on the calling thread via
//! `std::panic::resume_unwind` with their **original payload** (all
//! workers are joined first), so `catch_unwind` supervisors upstream
//! see the real panic message instead of a synthetic one.

use std::any::Any;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::OnceLock;

/// Upper bound on the number of fixed tasks an input is split into.
/// Partitioning `n` items always yields `min(n, MAX_TASKS)` contiguous
/// ranges — a function of `n` alone, so reductions merged in task order
/// are worker-count independent.
const MAX_TASKS: usize = 32;

/// `RLSCHED_THREADS` override, read once per process.
fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("RLSCHED_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    })
}

thread_local! {
    /// Scoped worker-budget override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside shim worker threads; makes nested fan-outs run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The worker-thread budget for fan-outs issued from the calling
/// thread: a [`with_threads`] override if one is active, else
/// `RLSCHED_THREADS`, else `available_parallelism`. Always ≥ 1, and
/// exactly 1 inside a shim worker (nested fan-outs run inline).
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` with the calling thread's worker budget pinned to
/// `n.max(1)`, restoring the previous budget afterwards (also on
/// unwind). Task partitioning is budget-independent, so results are
/// bit-identical for every `n`; this exists so parity suites can sweep
/// thread counts in-process and so `TrainConfig::n_threads` can cap
/// parallelism without touching the environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

fn workers(n_tasks: usize) -> usize {
    if n_tasks < 2 {
        return 1;
    }
    current_num_threads().min(n_tasks)
}

/// Evenly split `n` items into `parts` contiguous ranges.
fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The fixed task partition of `n` items: `min(n, MAX_TASKS)` contiguous
/// ranges derived from `n` alone (worker-count independent).
fn task_ranges(n: usize) -> Vec<Range<usize>> {
    split_ranges(n, n.clamp(1, MAX_TASKS))
}

/// Execute `run` over every task, distributing contiguous task groups
/// across `min(current_num_threads(), tasks.len())` scoped worker
/// threads, and return the per-task outputs **in task order**. When the
/// budget or task count is 1, runs inline on the caller thread in task
/// order. Worker panics are re-raised with their original payload after
/// all workers have been joined.
fn run_ordered<T, R, F>(tasks: Vec<T>, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = tasks.len();
    let w = workers(n);
    if w <= 1 {
        return tasks.into_iter().map(run).collect();
    }
    let mut iter = tasks.into_iter();
    let mut groups: Vec<Vec<T>> = split_ranges(n, w)
        .iter()
        .map(|r| iter.by_ref().take(r.len()).collect())
        .collect();
    let run = &run;
    let parts: Vec<std::thread::Result<Vec<R>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .drain(..)
            .map(|group| {
                scope.spawn(move || {
                    IN_WORKER.with(|g| g.set(true));
                    group.into_iter().map(run).collect::<Vec<R>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut out = Vec::with_capacity(n);
    let mut panic: Option<Box<dyn Any + Send>> = None;
    for part in parts {
        match part {
            Ok(rs) => out.extend(rs),
            Err(payload) => panic = panic.or(Some(payload)),
        }
    }
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    out
}

/// Run `per_range` over the fixed task partition of `n` items (see
/// [`task_ranges`]) and return the per-range outputs in range order.
/// Because the ranges depend only on `n`, folding the outputs in order
/// is bit-identical at every thread count — this is the primitive the
/// parallel rollout and sharded backward build on.
pub fn fan_out<R, F>(n: usize, per_range: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    run_ordered(task_ranges(n), per_range)
}

/// Parallel shared iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Parallel exclusive iterator over a slice.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

/// `par_iter_mut().zip(par_iter())`.
pub struct ParZip<'a, 'b, A, B> {
    left: &'a mut [A],
    right: &'b [B],
}

/// A mapped parallel iterator, ready to `collect`.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each `&T` through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { inner: self, f }
    }

    /// Zip with another shared parallel iterator of equal length.
    pub fn zip<'b, B>(self, other: ParIter<'b, B>) -> ParZipRef<'a, 'b, T, B> {
        assert_eq!(self.items.len(), other.items.len(), "zip length mismatch");
        ParZipRef {
            left: self.items,
            right: other.items,
        }
    }
}

/// `par_iter().zip(par_iter())`.
pub struct ParZipRef<'a, 'b, A, B> {
    left: &'a [A],
    right: &'b [B],
}

impl<'a, 'b, A: Sync, B: Sync> ParZipRef<'a, 'b, A, B> {
    /// Map each `(&A, &B)` pair through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn((&'a A, &'b B)) -> R + Sync,
        R: Send,
    {
        ParMap { inner: self, f }
    }
}

impl<'a, 'b, A: Send, B: Sync> ParZip<'a, 'b, A, B> {
    /// Map each `(&mut A, &B)` pair through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn((&'a mut A, &'b B)) -> R + Sync,
        R: Send,
    {
        ParMap { inner: self, f }
    }
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Zip with a shared parallel iterator of equal length.
    pub fn zip<'b, B>(self, other: ParIter<'b, B>) -> ParZip<'a, 'b, T, B> {
        assert_eq!(self.items.len(), other.items.len(), "zip length mismatch");
        ParZip {
            left: self.items,
            right: other.items,
        }
    }

    /// Map each `&mut T` through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(&'a mut T) -> R + Sync,
        R: Send,
    {
        ParMap { inner: self, f }
    }
}

impl<'a, T, F, R> ParMap<ParIter<'a, T>, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Gather results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let items = self.inner.items;
        let f = &self.f;
        let parts = fan_out(items.len(), |range| {
            items[range].iter().map(f).collect::<Vec<R>>()
        });
        C::from(parts.into_iter().flatten().collect())
    }
}

impl<'a, 'b, A, B, F, R> ParMap<ParZipRef<'a, 'b, A, B>, F>
where
    A: Sync,
    B: Sync,
    F: Fn((&'a A, &'b B)) -> R + Sync,
    R: Send,
{
    /// Gather results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let (left, right) = (self.inner.left, self.inner.right);
        let f = &self.f;
        let parts = fan_out(left.len(), |range| {
            left[range.clone()]
                .iter()
                .zip(&right[range])
                .map(f)
                .collect::<Vec<R>>()
        });
        C::from(parts.into_iter().flatten().collect())
    }
}

impl<'a, 'b, A, B, F, R> ParMap<ParZip<'a, 'b, A, B>, F>
where
    A: Send,
    B: Sync,
    F: Fn((&'a mut A, &'b B)) -> R + Sync,
    R: Send,
{
    /// Gather results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let ParZip { left, right } = self.inner;
        let n = left.len();
        let f = &self.f;
        if workers(task_ranges(n).len()) <= 1 {
            let out: Vec<R> = left.iter_mut().zip(right).map(f).collect();
            return C::from(out);
        }
        // Split the &mut slice at the fixed task boundaries.
        let ranges = task_ranges(n);
        let mut tasks: Vec<(&mut [A], &[B])> = Vec::with_capacity(ranges.len());
        let mut rest = left;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            tasks.push((head, &right[r.clone()]));
            rest = tail;
        }
        let parts = run_ordered(tasks, |(chunk, rhs)| {
            chunk.iter_mut().zip(rhs).map(f).collect::<Vec<R>>()
        });
        C::from(parts.into_iter().flatten().collect())
    }
}

/// Parallel exclusive chunk iterator.
pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    chunk: usize,
}

/// Enumerated form of [`ParChunksMut`].
pub struct EnumChunksMut<'a, T> {
    items: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attach chunk indices.
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut {
            items: self.items,
            chunk: self.chunk,
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

impl<T: Send> EnumChunksMut<'_, T> {
    /// Apply `f` to every `(index, chunk)` in parallel. Each caller
    /// chunk is one fixed task (boundaries derive from the chunk size,
    /// never the worker count), so disjoint-write kernels stay
    /// bit-identical at any thread count. The inline (1-worker) path
    /// allocates nothing.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk = self.chunk;
        assert!(chunk > 0, "chunk size must be positive");
        let n_chunks = self.items.len().div_ceil(chunk);
        if workers(n_chunks) <= 1 {
            for (i, c) in self.items.chunks_mut(chunk).enumerate() {
                f((i, c));
            }
            return;
        }
        let tasks: Vec<(usize, &mut [T])> = self.items.chunks_mut(chunk).enumerate().collect();
        run_ordered(tasks, |(i, c)| f((i, c)));
    }
}

/// Entry points, attached to slices and `Vec`s via extension traits.
pub mod prelude {
    use super::*;

    /// `par_iter` on shared slices.
    pub trait IntoParRefIterator<'a> {
        /// Shared item type.
        type Item: 'a;
        /// A parallel iterator of `&Item`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    /// `par_iter_mut` / `par_chunks_mut` on exclusive slices.
    pub trait IntoParMutIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// A parallel iterator of `&mut Item`.
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
        /// A parallel iterator of `&mut [Item]` chunks of length `chunk`
        /// (last one possibly shorter).
        fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, Self::Item>;
    }

    impl<'a, T: 'a> IntoParRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: 'a> IntoParRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: 'a> IntoParMutIterator<'a> for [T] {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { items: self }
        }
        fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, T> {
            ParChunksMut { items: self, chunk }
        }
    }

    impl<'a, T: 'a> IntoParMutIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { items: self }
        }
        fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, T> {
            ParChunksMut { items: self, chunk }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, fan_out, with_threads};

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_mut_mutates_and_collects_in_order() {
        let mut xs: Vec<u64> = vec![0; 500];
        let seeds: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = xs
            .par_iter_mut()
            .zip(seeds.par_iter())
            .map(|(x, &s)| {
                *x = s + 1;
                s * 10
            })
            .collect();
        assert_eq!(out, (0..500).map(|s| s * 10).collect::<Vec<_>>());
        assert_eq!(xs, (1..=500).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_enumerated() {
        let mut xs = vec![0u32; 103];
        xs.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i as u32;
            }
        });
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(v, (i / 10) as u32);
        }
    }

    #[test]
    fn single_and_empty_inputs() {
        let xs: Vec<u32> = vec![];
        let ys: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
        let one = [7u32];
        let ys: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![8]);
    }

    #[test]
    fn zip_ref_map_collect() {
        let a: Vec<u32> = (0..64).collect();
        let b: Vec<u32> = (0..64).map(|x| x * 3).collect();
        let out: Vec<u32> = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| x + y)
            .collect();
        assert_eq!(out, (0..64).map(|x| x * 4).collect::<Vec<_>>());
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = current_num_threads();
        with_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_threads(1, || assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outside);
        // Zero clamps to one rather than panicking.
        with_threads(0, || assert_eq!(current_num_threads(), 1));
    }

    #[test]
    fn with_threads_restores_on_unwind() {
        let outside = current_num_threads();
        let err = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(err.is_err());
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn task_partition_is_worker_count_independent() {
        for n in [0usize, 1, 5, 31, 32, 33, 100, 1000] {
            let base = with_threads(1, || fan_out(n, |r| r));
            for k in [2usize, 3, 7, 64] {
                let got = with_threads(k, || fan_out(n, |r| r));
                assert_eq!(got, base, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn panic_payload_survives_fan_out() {
        for k in [1usize, 4] {
            let err = std::panic::catch_unwind(|| {
                with_threads(k, || {
                    fan_out(100, |r| {
                        if r.contains(&50) {
                            panic!("original payload {}", r.start);
                        }
                        r.len()
                    })
                })
            })
            .expect_err("fan_out must propagate the panic");
            let msg = err
                .downcast_ref::<String>()
                .expect("payload is the formatted String, not a synthetic &str");
            assert!(msg.starts_with("original payload"), "got {msg:?}");
        }
    }

    #[test]
    fn panic_payload_survives_chunked_for_each() {
        let err = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let mut xs = vec![0u32; 64];
                xs.par_chunks_mut(8).enumerate().for_each(|(i, _)| {
                    if i == 3 {
                        panic!("chunk {i} failed");
                    }
                });
            })
        })
        .expect_err("for_each must propagate the panic");
        assert_eq!(
            err.downcast_ref::<String>().map(String::as_str),
            Some("chunk 3 failed")
        );
    }

    #[test]
    fn ragged_and_empty_chunk_edges() {
        for k in [1usize, 2, 7] {
            with_threads(k, || {
                // Empty slice: no chunks, no calls.
                let mut empty: Vec<u32> = vec![];
                empty.par_chunks_mut(4).enumerate().for_each(|_| {
                    panic!("no chunks expected");
                });
                // Chunk larger than the slice: one ragged chunk.
                let mut xs = vec![1u32; 3];
                xs.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
                    assert_eq!((i, c.len()), (0, 3));
                });
                // Ragged tail chunk keeps its index and short length.
                let mut ys = vec![0u32; 23];
                ys.par_chunks_mut(5).enumerate().for_each(|(i, c)| {
                    assert_eq!(c.len(), if i == 4 { 3 } else { 5 });
                    for v in c.iter_mut() {
                        *v = i as u32;
                    }
                });
                assert_eq!(ys[20..], [4, 4, 4]);
            });
        }
    }

    #[test]
    fn nested_fan_out_runs_inline_in_workers() {
        with_threads(4, || {
            let ids = fan_out(8, |_| {
                assert_eq!(
                    current_num_threads(),
                    1,
                    "inside a shim worker the budget must collapse to 1"
                );
                let outer = std::thread::current().id();
                // The inner fan-out must not spawn: every inner range
                // runs on the worker's own thread.
                fan_out(16, move |_| assert_eq!(std::thread::current().id(), outer));
                outer
            });
            assert_eq!(ids.len(), 8);
        });
    }
}
