//! Tape-based reverse-mode automatic differentiation.
//!
//! Define-by-run: every op evaluates eagerly and records itself on the tape
//! (an arena `Vec<Node>`); [`Graph::backward`] runs the tape in reverse.
//! Because [`Var`] ids are handed out in construction order, the tape is
//! already topologically sorted — backpropagation is a single reverse scan
//! with no pointer chasing, the arena idiom the perf guides recommend over
//! `Rc<RefCell<…>>` graphs.
//!
//! The arena is **reusable**: [`Graph::reset`] clears the tape while
//! recycling every node's backing buffer into an internal pool, so a
//! steady-state training loop (PPO runs thousands of forward/backward
//! passes per epoch) performs no heap allocation once warm. Ops draw
//! their output buffers from the pool; [`Graph::input_from`] copies
//! caller slices into pooled storage.
//!
//! The op set is exactly what the RLScheduler networks need: dense algebra
//! and activations for the kernel/MLP networks (Figs 5–6 of the paper) —
//! including the fused [`Graph::linear`] (matmul + bias + activation in
//! one node with a single output allocation) — `conv2d`/`max_pool2d` for
//! the LeNet comparison of Fig 8 / Table IV, and
//! `log_softmax`/`select_cols`/`clamp`/`min_elem` for the PPO clipped
//! surrogate objective.
//!
//! For inference *without* gradient bookkeeping, use [`crate::infer`]
//! instead: plain forwards over scratch buffers, no tape at all.

use crate::infer::idx4;
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Activation fused into [`Graph::linear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// y = x
    Identity,
    /// y = max(x, 0)
    Relu,
    /// y = tanh(x)
    Tanh,
    /// y = 1/(1+e^{-x})
    Sigmoid,
}

impl Act {
    /// Apply in place.
    #[inline]
    pub fn apply_slice(self, xs: &mut [f32]) {
        match self {
            Act::Identity => {}
            Act::Relu => {
                for x in xs {
                    // Branchless (maxss) so the loop vectorizes.
                    *x = x.max(0.0);
                }
            }
            Act::Tanh => {
                for x in xs {
                    *x = x.tanh();
                }
            }
            Act::Sigmoid => {
                for x in xs {
                    *x = 1.0 / (1.0 + (-*x).exp());
                }
            }
        }
    }

    /// d act / d pre-activation, expressed through the *output* y (all four
    /// activations admit this form, which is why no pre-activation needs
    /// storing).
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Act::Identity => 1.0,
            Act::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Act::Tanh => 1.0 - y * y,
            Act::Sigmoid => y * (1.0 - y),
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Leaf; `requires_grad` marks parameters.
    Leaf {
        requires_grad: bool,
    },
    MatMul(usize, usize),
    /// Fused `act(x @ w + bias)` — one node, one output allocation.
    Linear {
        x: usize,
        w: usize,
        b: usize,
        act: Act,
    },
    /// `a + b` where `b` is a vector broadcast over the rows of `a`.
    AddBias(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MinElem(usize, usize),
    Scale(usize, f32),
    AddScalar(usize),
    Relu(usize),
    Tanh(usize),
    Sigmoid(usize),
    Exp(usize),
    Clamp(usize, f32, f32),
    LogSoftmax(usize),
    SelectCols(usize, Vec<usize>),
    SumRows(usize),
    Mean(usize),
    Sum(usize),
    Reshape(usize),
    Conv2d {
        x: usize,
        w: usize,
        b: usize,
        stride: usize,
    },
    MaxPool2d {
        x: usize,
        size: usize,
    },
}

impl Op {
    /// Tape indices this op reads (up to three).
    fn inputs(&self) -> [Option<usize>; 3] {
        match *self {
            Op::Leaf { .. } => [None, None, None],
            Op::MatMul(a, b)
            | Op::AddBias(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::MinElem(a, b) => [Some(a), Some(b), None],
            Op::Linear { x, w, b, .. } | Op::Conv2d { x, w, b, .. } => [Some(x), Some(w), Some(b)],
            Op::Scale(a, _)
            | Op::AddScalar(a)
            | Op::Relu(a)
            | Op::Tanh(a)
            | Op::Sigmoid(a)
            | Op::Exp(a)
            | Op::Clamp(a, _, _)
            | Op::LogSoftmax(a)
            | Op::SelectCols(a, _)
            | Op::SumRows(a)
            | Op::Mean(a)
            | Op::Sum(a)
            | Op::Reshape(a)
            | Op::MaxPool2d { x: a, .. } => [Some(a), None, None],
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// Buffers kept around between [`Graph::reset`]s; beyond this the pool
/// stops growing (a PPO iteration tops out well below this).
const POOL_CAP: usize = 512;

/// The autodiff tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    pool: Vec<Vec<f32>>,
    /// Reused gradient-slot vector for [`Graph::backward`].
    slots: Vec<Option<Tensor>>,
    /// Reused needs-gradient marks for [`Graph::backward`]: `true` iff a
    /// parameter leaf is reachable from the node, so gradient work on
    /// constant-input paths (e.g. `dX` into the observation matrix) is
    /// skipped entirely.
    needs: Vec<bool>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(64),
            pool: Vec::new(),
            slots: Vec::new(),
            needs: Vec::new(),
        }
    }

    /// Clear the tape for reuse, recycling every node's value and gradient
    /// buffer into the allocation pool. After `reset`, re-running the same
    /// op sequence allocates nothing — values and gradients are
    /// bit-identical to a fresh graph's (see `reset_reuse_is_bit_identical`).
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            if self.pool.len() < POOL_CAP {
                self.pool.push(node.value.into_data());
            }
            if let Some(g) = node.grad {
                if self.pool.len() < POOL_CAP {
                    self.pool.push(g.into_data());
                }
            }
        }
    }

    /// A cleared buffer with capacity for at least `len` elements, drawn
    /// from the pool when possible.
    fn buf(&mut self, len: usize) -> Vec<f32> {
        pool_take(&mut self.pool, len)
    }

    /// Like [`Graph::buf`] but zero-filled to exactly `len`.
    fn zero_buf(&mut self, len: usize) -> Vec<f32> {
        let mut b = self.buf(len);
        b.resize(len, 0.0);
        b
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after [`Graph::backward`]; `None` when the loss
    /// does not depend on it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Owned gradient, zeros when untouched (convenience for tests and
    /// cold paths; prefer [`Graph::grad`] / [`Graph::take_grad`]).
    pub fn grad_or_zeros(&self, v: Var) -> Tensor {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => Tensor::zeros(self.nodes[v.0].value.shape()),
        }
    }

    /// Move a node's gradient out of the tape without copying (zeros when
    /// untouched). The optimizer consumes gradients exactly once per
    /// backward, so taking ownership is free.
    pub fn take_grad(&mut self, v: Var) -> Tensor {
        match self.nodes[v.0].grad.take() {
            Some(g) => g,
            None => {
                let shape = self.nodes[v.0].value.shape().to_vec();
                let data = self.zero_buf(shape.iter().product());
                Tensor::from_vec(data, &shape)
            }
        }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Buffers currently waiting in the recycling pool (observability for
    /// tests and tuning).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    // ---------------------------------------------------------------- leaves

    /// A constant input (no gradient tracked through optimizers).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(
            t,
            Op::Leaf {
                requires_grad: false,
            },
        )
    }

    /// A constant input copied from a slice into pooled storage — the
    /// allocation-free alternative to `input(Tensor::from_vec(...))` for
    /// reused graphs.
    pub fn input_from(&mut self, data: &[f32], shape: &[usize]) -> Var {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} != shape volume {n}",
            data.len()
        );
        let mut buf = self.buf(n);
        buf.extend_from_slice(data);
        self.push(
            Tensor::from_vec(buf, shape),
            Op::Leaf {
                requires_grad: false,
            },
        )
    }

    /// A parameter leaf (gradient wanted).
    pub fn param(&mut self, t: Tensor) -> Var {
        self.push(
            t,
            Op::Leaf {
                requires_grad: true,
            },
        )
    }

    /// A parameter leaf copied from existing storage into pooled memory.
    pub fn param_from(&mut self, t: &Tensor) -> Var {
        let mut buf = self.buf(t.len());
        buf.extend_from_slice(t.data());
        self.push(
            Tensor::from_vec(buf, t.shape()),
            Op::Leaf {
                requires_grad: true,
            },
        )
    }

    // ------------------------------------------------------------------- ops

    /// Matrix product `a @ b` of 2-D tensors.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let m = self.nodes[a.0].value.rows();
        let n = self.nodes[b.0].value.cols();
        let mut out = self.buf(m * n);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut out);
        self.push(Tensor::from_vec(out, &[m, n]), Op::MatMul(a.0, b.0))
    }

    /// Fused dense layer: `act(x @ w + bias)` as a single tape node with
    /// one output allocation. `x` is `[m, k]`, `w` `[k, n]`, `bias` `[n]`.
    pub fn linear(&mut self, x: Var, w: Var, b: Var, act: Act) -> Var {
        let xv = &self.nodes[x.0].value;
        let wv = &self.nodes[w.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(xv.shape().len(), 2, "linear input must be 2-D");
        assert_eq!(wv.shape().len(), 2, "linear weight must be 2-D");
        let (m, k) = (xv.rows(), xv.cols());
        let (k2, n) = (wv.rows(), wv.cols());
        assert_eq!(k, k2, "linear inner dimensions {k} vs {k2}");
        assert_eq!(bv.len(), n, "linear bias length");
        let mut out = self.buf(m * n);
        {
            let xv = &self.nodes[x.0].value;
            let wv = &self.nodes[w.0].value;
            let bv = &self.nodes[b.0].value;
            out.resize(m * n, 0.0);
            // The same kernel dispatch `infer::dense_forward` runs, so
            // tape and fast path agree bit-for-bit by construction on
            // either dispatch arm (AVX2/FMA or scalar).
            crate::simd::dense_any(xv.data(), m, wv.data(), bv.data(), k, n, &mut out);
            act.apply_slice(&mut out);
        }
        self.push(
            Tensor::from_vec(out, &[m, n]),
            Op::Linear {
                x: x.0,
                w: w.0,
                b: b.0,
                act,
            },
        )
    }

    /// Row-broadcast `a + bias` where `bias` has `a.cols()` elements.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        assert_eq!(av.shape().len(), 2, "add_bias lhs must be 2-D");
        assert_eq!(bv.len(), av.cols(), "bias length must equal columns");
        let (m, n) = (av.rows(), av.cols());
        let mut out = self.buf(m * n);
        {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[bias.0].value;
            out.extend(
                av.data()
                    .iter()
                    .enumerate()
                    .map(|(idx, &x)| x + bv.data()[idx % n]),
            );
        }
        self.push(Tensor::from_vec(out, &[m, n]), Op::AddBias(a.0, bias.0))
    }

    fn zip_ew(&mut self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32, op: Op) -> Var {
        assert_eq!(
            self.nodes[a.0].value.shape(),
            self.nodes[b.0].value.shape(),
            "elementwise shape mismatch"
        );
        let len = self.nodes[a.0].value.len();
        let mut data = self.buf(len);
        let shape = {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[b.0].value;
            data.extend(av.data().iter().zip(bv.data()).map(|(&x, &y)| f(x, y)));
            av.shape().to_vec()
        };
        let t = Tensor::from_vec(data, &shape);
        self.push(t, op)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.zip_ew(a, b, |x, y| x + y, Op::Add(a.0, b.0))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.zip_ew(a, b, |x, y| x - y, Op::Sub(a.0, b.0))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.zip_ew(a, b, |x, y| x * y, Op::Mul(a.0, b.0))
    }

    /// Elementwise minimum (the PPO clipped-objective combiner).
    pub fn min_elem(&mut self, a: Var, b: Var) -> Var {
        self.zip_ew(a, b, f32::min, Op::MinElem(a.0, b.0))
    }

    fn map_ew(&mut self, a: Var, f: impl Fn(f32) -> f32, op: Op) -> Var {
        let len = self.nodes[a.0].value.len();
        let mut data = self.buf(len);
        let shape = {
            let av = &self.nodes[a.0].value;
            data.extend(av.data().iter().map(|&x| f(x)));
            av.shape().to_vec()
        };
        let t = Tensor::from_vec(data, &shape);
        self.push(t, op)
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        self.map_ew(a, |x| x * c, Op::Scale(a.0, c))
    }

    /// Add a scalar constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        self.map_ew(a, |x| x + c, Op::AddScalar(a.0))
    }

    /// True when the node is a parameter leaf (created via [`Graph::param`]).
    pub fn is_param(&self, v: Var) -> bool {
        matches!(
            self.nodes[v.0].op,
            Op::Leaf {
                requires_grad: true
            }
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        self.map_ew(a, |x| x.max(0.0), Op::Relu(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.map_ew(a, f32::tanh, Op::Tanh(a.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.map_ew(a, |x| 1.0 / (1.0 + (-x).exp()), Op::Sigmoid(a.0))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        self.map_ew(a, f32::exp, Op::Exp(a.0))
    }

    /// Clamp to `[lo, hi]`; gradient passes only strictly inside the range.
    pub fn clamp(&mut self, a: Var, lo: f32, hi: f32) -> Var {
        assert!(lo <= hi);
        self.map_ew(a, |x| x.clamp(lo, hi), Op::Clamp(a.0, lo, hi))
    }

    /// Row-wise log-softmax of a 2-D tensor (numerically stabilized).
    pub fn log_softmax(&mut self, a: Var) -> Var {
        assert_eq!(
            self.nodes[a.0].value.shape().len(),
            2,
            "log_softmax requires 2-D"
        );
        let (m, n) = (self.nodes[a.0].value.rows(), self.nodes[a.0].value.cols());
        let mut out = self.buf(m * n);
        {
            let av = &self.nodes[a.0].value;
            for i in 0..m {
                let row = &av.data()[i * n..(i + 1) * n];
                let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = mx
                    + row
                        .iter()
                        .map(|&x| crate::infer::exp_or_zero(x - mx))
                        .sum::<f32>()
                        .ln();
                out.extend(row.iter().map(|&x| x - lse));
            }
        }
        self.push(Tensor::from_vec(out, &[m, n]), Op::LogSoftmax(a.0))
    }

    /// Pick one column per row: `out[i] = a[i, idx[i]]`.
    pub fn select_cols(&mut self, a: Var, idx: &[usize]) -> Var {
        assert_eq!(
            self.nodes[a.0].value.shape().len(),
            2,
            "select_cols requires 2-D"
        );
        assert_eq!(idx.len(), self.nodes[a.0].value.rows(), "one index per row");
        let mut data = self.buf(idx.len());
        {
            let av = &self.nodes[a.0].value;
            let n = av.cols();
            data.extend(idx.iter().enumerate().map(|(i, &j)| {
                assert!(j < n, "column index {j} out of range");
                av.at(i, j)
            }));
        }
        let t = Tensor::from_vec(data, &[idx.len()]);
        self.push(t, Op::SelectCols(a.0, idx.to_vec()))
    }

    /// Row sums of a 2-D tensor: `[m, n] -> [m]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        assert_eq!(
            self.nodes[a.0].value.shape().len(),
            2,
            "sum_rows requires 2-D"
        );
        let m = self.nodes[a.0].value.rows();
        let mut data = self.buf(m);
        {
            let av = &self.nodes[a.0].value;
            let n = av.cols();
            data.extend((0..m).map(|i| av.data()[i * n..(i + 1) * n].iter().sum::<f32>()));
        }
        let t = Tensor::from_vec(data, &[m]);
        self.push(t, Op::SumRows(a.0))
    }

    /// Mean over all elements (scalar output).
    pub fn mean(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let mean = av.sum() / av.len() as f32;
        let mut buf = self.buf(1);
        buf.push(mean);
        self.push(Tensor::from_vec(buf, &[1]), Op::Mean(a.0))
    }

    /// Sum over all elements (scalar output).
    pub fn sum(&mut self, a: Var) -> Var {
        let total = self.nodes[a.0].value.sum();
        let mut buf = self.buf(1);
        buf.push(total);
        self.push(Tensor::from_vec(buf, &[1]), Op::Sum(a.0))
    }

    /// View with a different shape (volume preserved).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.nodes[a.0].value.len(),
            "reshape must preserve volume"
        );
        let mut data = self.buf(n);
        data.extend_from_slice(self.nodes[a.0].value.data());
        self.push(Tensor::from_vec(data, shape), Op::Reshape(a.0))
    }

    /// Valid (unpadded) 2-D convolution.
    ///
    /// `x`: `[B, C, H, W]`, `w`: `[O, C, KH, KW]`, `b`: `[O]`; output
    /// `[B, O, OH, OW]` with `OH = (H-KH)/stride + 1`.
    pub fn conv2d(&mut self, x: Var, w: Var, b: Var, stride: usize) -> Var {
        assert!(stride >= 1);
        let (bs, c, h, wd) = dims4(self.nodes[x.0].value.shape());
        let (o, c2, kh, kw) = dims4(self.nodes[w.0].value.shape());
        assert_eq!(c, c2, "conv2d channel mismatch");
        assert_eq!(self.nodes[b.0].value.len(), o, "conv2d bias length");
        assert!(h >= kh && wd >= kw, "kernel larger than input");
        let oh = (h - kh) / stride + 1;
        let ow = (wd - kw) / stride + 1;
        let mut od = self.zero_buf(bs * o * oh * ow);
        {
            let xv = &self.nodes[x.0].value;
            let wv = &self.nodes[w.0].value;
            let bv = &self.nodes[b.0].value;
            crate::infer::conv2d_into(
                xv.data(),
                wv.data(),
                bv.data(),
                bs,
                c,
                h,
                wd,
                o,
                kh,
                kw,
                stride,
                &mut od,
            );
        }
        self.push(
            Tensor::from_vec(od, &[bs, o, oh, ow]),
            Op::Conv2d {
                x: x.0,
                w: w.0,
                b: b.0,
                stride,
            },
        )
    }

    /// Non-overlapping max pooling with window = stride = `size`.
    pub fn max_pool2d(&mut self, x: Var, size: usize) -> Var {
        assert!(size >= 1);
        let (bs, c, h, w) = dims4(self.nodes[x.0].value.shape());
        let (oh, ow) = (h / size, w / size);
        assert!(oh >= 1 && ow >= 1, "pool window larger than input");
        let mut od = self.zero_buf(bs * c * oh * ow);
        crate::infer::max_pool2d_into(self.nodes[x.0].value.data(), bs, c, h, w, size, &mut od);
        self.push(
            Tensor::from_vec(od, &[bs, c, oh, ow]),
            Op::MaxPool2d { x: x.0, size },
        )
    }

    // -------------------------------------------------------------- backward

    /// Backpropagate from a scalar `loss` node, filling gradients for every
    /// node that both influences the loss and can reach a parameter leaf.
    ///
    /// Gradient work is skipped wholesale on constant-input paths: a
    /// forward needs-gradient scan marks every node from which a
    /// [`Graph::param`] leaf is reachable, and the reverse scan only
    /// accumulates into marked nodes — so e.g. `dX` of the first dense
    /// layer (the observation matrix, often the largest single matmul of
    /// a PPO value update) is never computed. Parameter gradients are
    /// bit-identical either way; [`Graph::grad`] of a node on a
    /// constants-only path is `None`, exactly like a node the loss does
    /// not depend on.
    ///
    /// All gradient temporaries are drawn from (and returned to) the
    /// graph's buffer pool, and the per-node slot vector is retained
    /// across calls — after the first backward on a given op sequence,
    /// subsequent passes are allocation-free.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward needs a scalar loss"
        );
        let n = self.nodes.len();
        let Graph {
            nodes,
            pool,
            slots,
            needs,
        } = self;
        needs.clear();
        needs.resize(n, false);
        for id in 0..n {
            needs[id] = match &nodes[id].op {
                Op::Leaf { requires_grad } => *requires_grad,
                op => op.inputs().into_iter().flatten().any(|input| needs[input]),
            };
        }
        let needs = &needs[..];
        let grads = slots;
        grads.clear();
        grads.resize(n, None);
        grads[loss.0] = Some(pooled_full(pool, &[1], 1.0));

        for id in (0..n).rev() {
            let Some(gout) = grads[id].take() else {
                continue;
            };
            if !needs[id] {
                // The loss seed itself can land here when no parameter is
                // reachable at all; recycle it and move on.
                pool_put(pool, gout.into_data());
                grads[id] = None;
                continue;
            }
            // The match borrows `nodes` immutably; gradient accumulation
            // writes only into the separate `grads` vector, so the op needs
            // no clone (the seed cloned every op here, `Vec` payloads
            // included). `gout` always carries the node's exact shape —
            // `accum_*` normalize it on store.
            match &nodes[id].op {
                Op::Leaf { .. } => {}
                &Op::MatMul(a, b) => {
                    if needs[a] {
                        let mut da = pool_take(pool, 0);
                        gout.matmul_nt_into(&nodes[b].value, &mut da);
                        accum_owned(
                            grads,
                            nodes,
                            pool,
                            a,
                            Tensor::from_vec(da, nodes[a].value.shape()),
                        );
                    }
                    if needs[b] {
                        let mut db = pool_take(pool, 0);
                        nodes[a].value.matmul_tn_into(&gout, &mut db);
                        accum_owned(
                            grads,
                            nodes,
                            pool,
                            b,
                            Tensor::from_vec(db, nodes[b].value.shape()),
                        );
                    }
                }
                &Op::Linear { x, w, b, act } => {
                    let y = &nodes[id].value;
                    let (m, ncol) = (y.rows(), y.cols());
                    // dpre = dy ∘ act'(y). One loop per activation (the
                    // enum match must not run per element — this buffer is
                    // the largest elementwise pass of a PPO update).
                    let mut dpre_buf = pool_take(pool, m * ncol);
                    let pairs = gout.data().iter().zip(y.data());
                    match act {
                        Act::Identity => dpre_buf.extend_from_slice(gout.data()),
                        Act::Relu => {
                            dpre_buf.extend(pairs.map(|(&g, &yv)| if yv > 0.0 { g } else { 0.0 }))
                        }
                        Act::Tanh => dpre_buf.extend(pairs.map(|(&g, &yv)| g * (1.0 - yv * yv))),
                        Act::Sigmoid => dpre_buf.extend(pairs.map(|(&g, &yv)| g * yv * (1.0 - yv))),
                    }
                    let dpre = Tensor::from_vec(dpre_buf, &[m, ncol]);
                    if needs[x] {
                        // dX = dpre · Wᵀ. The NT dot kernel is horizontal-
                        // sum-bound when the layer width (the dot length)
                        // is small, which is exactly the kernel-network
                        // case — so transpose W (tiny) through the pool
                        // and run the broadcast gemm kernel instead.
                        let wv = &nodes[w].value;
                        let (k_in, n_out) = (wv.rows(), wv.cols());
                        let mut dx = pool_take(pool, m * k_in);
                        dx.resize(m * k_in, 0.0);
                        let mut dispatched = false;
                        if crate::simd::simd_enabled() && k_in >= 8 {
                            let mut wt = pool_take(pool, k_in * n_out);
                            wt.resize(k_in * n_out, 0.0);
                            crate::simd::transpose(wv.data(), k_in, n_out, &mut wt);
                            dispatched =
                                crate::simd::gemm(dpre.data(), m, n_out, &wt, k_in, None, &mut dx);
                            pool_put(pool, wt);
                        }
                        if !dispatched {
                            crate::simd::gemm_nt_scalar(
                                dpre.data(),
                                m,
                                n_out,
                                wv.data(),
                                k_in,
                                &mut dx,
                            );
                        }
                        accum_owned(
                            grads,
                            nodes,
                            pool,
                            x,
                            Tensor::from_vec(dx, nodes[x].value.shape()),
                        );
                    }
                    if needs[w] {
                        let mut dw = pool_take(pool, 0);
                        nodes[x].value.matmul_tn_into(&dpre, &mut dw);
                        accum_owned(
                            grads,
                            nodes,
                            pool,
                            w,
                            Tensor::from_vec(dw, nodes[w].value.shape()),
                        );
                    }
                    if needs[b] {
                        let mut db = pooled_full(pool, &[ncol], 0.0);
                        let dbd = db.data_mut();
                        for row in dpre.data().chunks_exact(ncol) {
                            for (d, &v) in dbd.iter_mut().zip(row) {
                                *d += v;
                            }
                        }
                        accum_owned(grads, nodes, pool, b, db);
                    }
                    pool_put(pool, dpre.into_data());
                }
                &Op::AddBias(a, bias) => {
                    if needs[bias] {
                        let ncol = nodes[a].value.cols();
                        let mut db = pooled_full(pool, &[ncol], 0.0);
                        let dbd = db.data_mut();
                        for row in gout.data().chunks_exact(ncol) {
                            for (d, &v) in dbd.iter_mut().zip(row) {
                                *d += v;
                            }
                        }
                        accum_owned(grads, nodes, pool, bias, db);
                    }
                    if needs[a] {
                        accum_ref(grads, nodes, pool, a, &gout);
                    }
                }
                &Op::Add(a, b) => {
                    if needs[a] {
                        accum_ref(grads, nodes, pool, a, &gout);
                    }
                    if needs[b] {
                        accum_ref(grads, nodes, pool, b, &gout);
                    }
                }
                &Op::Sub(a, b) => {
                    if needs[a] {
                        accum_ref(grads, nodes, pool, a, &gout);
                    }
                    if needs[b] {
                        let neg = pooled_map(pool, &gout, |x| -x);
                        accum_owned(grads, nodes, pool, b, neg);
                    }
                }
                &Op::Mul(a, b) => {
                    if needs[a] {
                        let da = pooled_zip(pool, &gout, &nodes[b].value, |g, y| g * y);
                        accum_owned(grads, nodes, pool, a, da);
                    }
                    if needs[b] {
                        let db = pooled_zip(pool, &gout, &nodes[a].value, |g, x| g * x);
                        accum_owned(grads, nodes, pool, b, db);
                    }
                }
                &Op::MinElem(a, b) => {
                    // Gradient routes to whichever side won the min; ties
                    // go to `a`, matching the forward's `f32::min`.
                    if needs[a] {
                        let av = &nodes[a].value;
                        let bv = &nodes[b].value;
                        let da = pooled_zip3(
                            pool,
                            &gout,
                            av,
                            bv,
                            |g, x, y| {
                                if x <= y {
                                    g
                                } else {
                                    0.0
                                }
                            },
                        );
                        accum_owned(grads, nodes, pool, a, da);
                    }
                    if needs[b] {
                        let av = &nodes[a].value;
                        let bv = &nodes[b].value;
                        let db = pooled_zip3(
                            pool,
                            &gout,
                            av,
                            bv,
                            |g, x, y| {
                                if x <= y {
                                    0.0
                                } else {
                                    g
                                }
                            },
                        );
                        accum_owned(grads, nodes, pool, b, db);
                    }
                }
                &Op::Scale(a, c) => {
                    let da = pooled_map(pool, &gout, |x| x * c);
                    accum_owned(grads, nodes, pool, a, da);
                }
                &Op::AddScalar(a) => {
                    accum_ref(grads, nodes, pool, a, &gout);
                }
                &Op::Relu(a) => {
                    let da =
                        pooled_zip(
                            pool,
                            &gout,
                            &nodes[a].value,
                            |g, x| if x > 0.0 { g } else { 0.0 },
                        );
                    accum_owned(grads, nodes, pool, a, da);
                }
                &Op::Tanh(a) => {
                    let da = pooled_zip(pool, &gout, &nodes[id].value, |g, y| g * (1.0 - y * y));
                    accum_owned(grads, nodes, pool, a, da);
                }
                &Op::Sigmoid(a) => {
                    let da = pooled_zip(pool, &gout, &nodes[id].value, |g, y| g * y * (1.0 - y));
                    accum_owned(grads, nodes, pool, a, da);
                }
                &Op::Exp(a) => {
                    let da = pooled_zip(pool, &gout, &nodes[id].value, |g, y| g * y);
                    accum_owned(grads, nodes, pool, a, da);
                }
                &Op::Clamp(a, lo, hi) => {
                    let da = pooled_zip(pool, &gout, &nodes[a].value, |g, x| {
                        if x > lo && x < hi {
                            g
                        } else {
                            0.0
                        }
                    });
                    accum_owned(grads, nodes, pool, a, da);
                }
                &Op::LogSoftmax(a) => {
                    // dx = dy - softmax(x) * rowsum(dy); masked slots hold
                    // log-probs of ~-1e9 whose exp is exactly 0, so the
                    // underflow short-circuit is bit-exact.
                    let y = &nodes[id].value;
                    let (m, ncol) = (y.rows(), y.cols());
                    let mut da = pooled_full(pool, &[m, ncol], 0.0);
                    for ((g_row, y_row), da_row) in gout
                        .data()
                        .chunks_exact(ncol)
                        .zip(y.data().chunks_exact(ncol))
                        .zip(da.data_mut().chunks_exact_mut(ncol))
                    {
                        let row_sum: f32 = g_row.iter().sum();
                        for ((d, &rj), &yj) in da_row.iter_mut().zip(g_row).zip(y_row) {
                            *d = rj - crate::infer::exp_or_zero(yj) * row_sum;
                        }
                    }
                    accum_owned(grads, nodes, pool, a, da);
                }
                Op::SelectCols(a, idx) => {
                    let a = *a;
                    let av = &nodes[a].value;
                    let ncol = av.cols();
                    let mut da = pooled_full(pool, av.shape(), 0.0);
                    for (i, &j) in idx.iter().enumerate() {
                        da.data_mut()[i * ncol + j] += gout.data()[i];
                    }
                    accum_owned(grads, nodes, pool, a, da);
                }
                &Op::SumRows(a) => {
                    let av = &nodes[a].value;
                    let (m, ncol) = (av.rows(), av.cols());
                    let mut da = pool_take(pool, m * ncol);
                    for i in 0..m {
                        for _ in 0..ncol {
                            da.push(gout.data()[i]);
                        }
                    }
                    accum_owned(grads, nodes, pool, a, Tensor::from_vec(da, &[m, ncol]));
                }
                &Op::Mean(a) => {
                    let len = nodes[a].value.len() as f32;
                    let g = gout.item() / len;
                    let da = pooled_full(pool, nodes[a].value.shape(), g);
                    accum_owned(grads, nodes, pool, a, da);
                }
                &Op::Sum(a) => {
                    let da = pooled_full(pool, nodes[a].value.shape(), gout.item());
                    accum_owned(grads, nodes, pool, a, da);
                }
                &Op::Reshape(a) => {
                    accum_ref(grads, nodes, pool, a, &gout);
                }
                &Op::Conv2d { x, w, b, stride } => {
                    let xv = &nodes[x].value;
                    let wv = &nodes[w].value;
                    let (bs, c, h, wd) = dims4(xv.shape());
                    let (o, _, kh, kw) = dims4(wv.shape());
                    let (_, _, oh, ow) = dims4(nodes[id].value.shape());
                    // Each side is allocated and computed only when a
                    // parameter is reachable through it (dX of the first
                    // conv — the observation image — is half the FLOPs
                    // and never needed). The per-element branches hoist:
                    // the Options are loop-invariant.
                    let mut dx = needs[x].then(|| pooled_full(pool, xv.shape(), 0.0));
                    let mut dw = needs[w].then(|| pooled_full(pool, wv.shape(), 0.0));
                    let mut db = needs[b].then(|| pooled_full(pool, &[o], 0.0));
                    let gd = gout.data();
                    for bi in 0..bs {
                        for oi in 0..o {
                            for y in 0..oh {
                                for xj in 0..ow {
                                    let g = gd[idx4(bi, oi, y, xj, o, oh, ow)];
                                    if g == 0.0 {
                                        continue;
                                    }
                                    if let Some(db) = &mut db {
                                        db.data_mut()[oi] += g;
                                    }
                                    for ci in 0..c {
                                        for ky in 0..kh {
                                            for kx in 0..kw {
                                                let xi = idx4(
                                                    bi,
                                                    ci,
                                                    y * stride + ky,
                                                    xj * stride + kx,
                                                    c,
                                                    h,
                                                    wd,
                                                );
                                                let wi = idx4(oi, ci, ky, kx, c, kh, kw);
                                                if let Some(dx) = &mut dx {
                                                    dx.data_mut()[xi] += g * wv.data()[wi];
                                                }
                                                if let Some(dw) = &mut dw {
                                                    dw.data_mut()[wi] += g * xv.data()[xi];
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    for (input, delta) in [(x, dx), (w, dw), (b, db)] {
                        if let Some(delta) = delta {
                            accum_owned(grads, nodes, pool, input, delta);
                        }
                    }
                }
                &Op::MaxPool2d { x, size } => {
                    let xv = &nodes[x].value;
                    let (bs, c, h, w) = dims4(xv.shape());
                    let (_, _, oh, ow) = dims4(nodes[id].value.shape());
                    let mut dx = pooled_full(pool, xv.shape(), 0.0);
                    let gd = gout.data();
                    let xd = xv.data();
                    for bi in 0..bs {
                        for ci in 0..c {
                            for y in 0..oh {
                                for xj in 0..ow {
                                    // Recompute the argmax; first maximum
                                    // wins on ties (deterministic).
                                    let mut best = f32::NEG_INFINITY;
                                    let mut best_i = 0;
                                    for ky in 0..size {
                                        for kx in 0..size {
                                            let i = idx4(
                                                bi,
                                                ci,
                                                y * size + ky,
                                                xj * size + kx,
                                                c,
                                                h,
                                                w,
                                            );
                                            if xd[i] > best {
                                                best = xd[i];
                                                best_i = i;
                                            }
                                        }
                                    }
                                    dx.data_mut()[best_i] += gd[idx4(bi, ci, y, xj, c, oh, ow)];
                                }
                            }
                        }
                    }
                    accum_owned(grads, nodes, pool, x, dx);
                }
            }
            grads[id] = Some(gout);
        }

        for (node, g) in nodes.iter_mut().zip(grads.drain(..)) {
            node.grad = g;
        }
    }
}

// --------------------------------------------------------- pooled helpers

/// Take a cleared buffer with capacity ≥ `len` from the pool (best fit,
/// newest first) or grow one.
fn pool_take(pool: &mut Vec<Vec<f32>>, len: usize) -> Vec<f32> {
    let found = pool.iter().rposition(|b| b.capacity() >= len);
    let mut b = match found {
        Some(i) => pool.swap_remove(i),
        None => pool.pop().unwrap_or_default(),
    };
    b.clear();
    b.reserve(len);
    b
}

/// Return a buffer to the pool (dropped when the pool is full).
fn pool_put(pool: &mut Vec<Vec<f32>>, buf: Vec<f32>) {
    if pool.len() < POOL_CAP {
        pool.push(buf);
    }
}

/// A pooled tensor filled with `value`.
fn pooled_full(pool: &mut Vec<Vec<f32>>, shape: &[usize], value: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let mut buf = pool_take(pool, n);
    buf.resize(n, value);
    Tensor::from_vec(buf, shape)
}

/// A pooled elementwise map of `src`.
fn pooled_map(pool: &mut Vec<Vec<f32>>, src: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let mut buf = pool_take(pool, src.len());
    buf.extend(src.data().iter().map(|&x| f(x)));
    Tensor::from_vec(buf, src.shape())
}

/// A pooled three-way elementwise combine (volumes must match; the
/// result carries `x`'s shape).
fn pooled_zip3(
    pool: &mut Vec<Vec<f32>>,
    g: &Tensor,
    x: &Tensor,
    y: &Tensor,
    f: impl Fn(f32, f32, f32) -> f32,
) -> Tensor {
    assert_eq!(g.len(), x.len());
    assert_eq!(g.len(), y.len());
    let mut buf = pool_take(pool, g.len());
    buf.extend(
        g.data()
            .iter()
            .zip(x.data())
            .zip(y.data())
            .map(|((&a, &b), &c)| f(a, b, c)),
    );
    Tensor::from_vec(buf, x.shape())
}

/// A pooled elementwise combine of `g` and `x` (volumes must match; the
/// result carries `x`'s shape).
fn pooled_zip(
    pool: &mut Vec<Vec<f32>>,
    g: &Tensor,
    x: &Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Tensor {
    assert_eq!(g.len(), x.len());
    let mut buf = pool_take(pool, g.len());
    buf.extend(g.data().iter().zip(x.data()).map(|(&a, &b)| f(a, b)));
    Tensor::from_vec(buf, x.shape())
}

/// Accumulate an owned gradient `delta` into node `id`'s slot: moved in
/// when the slot is empty (reshaping in place to the node's shape),
/// added-and-recycled otherwise.
fn accum_owned(
    grads: &mut [Option<Tensor>],
    nodes: &[Node],
    pool: &mut Vec<Vec<f32>>,
    id: usize,
    mut delta: Tensor,
) {
    match &mut grads[id] {
        Some(g) => {
            assert_eq!(g.len(), delta.len(), "gradient volume mismatch");
            for (gd, &dd) in g.data_mut().iter_mut().zip(delta.data()) {
                *gd += dd;
            }
            pool_put(pool, delta.into_data());
        }
        slot => {
            if delta.shape() != nodes[id].value.shape() {
                delta.set_shape(nodes[id].value.shape());
            }
            *slot = Some(delta);
        }
    }
}

/// Accumulate a borrowed gradient into node `id`'s slot, copying through
/// the pool when the slot is empty.
fn accum_ref(
    grads: &mut [Option<Tensor>],
    nodes: &[Node],
    pool: &mut Vec<Vec<f32>>,
    id: usize,
    delta: &Tensor,
) {
    match &mut grads[id] {
        Some(g) => {
            assert_eq!(g.len(), delta.len(), "gradient volume mismatch");
            for (gd, &dd) in g.data_mut().iter_mut().zip(delta.data()) {
                *gd += dd;
            }
        }
        slot => {
            let mut buf = pool_take(pool, delta.len());
            buf.extend_from_slice(delta.data());
            *slot = Some(Tensor::from_vec(buf, nodes[id].value.shape()));
        }
    }
}

fn dims4(shape: &[usize]) -> (usize, usize, usize, usize) {
    assert_eq!(shape.len(), 4, "expected a 4-D tensor, got {shape:?}");
    (shape[0], shape[1], shape[2], shape[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of `d loss / d input` for every
    /// element of the chosen leaf.
    fn gradcheck<F>(input: Tensor, build: F, tol: f32)
    where
        F: Fn(&mut Graph, Var) -> Var,
    {
        let mut g = Graph::new();
        let x = g.param(input.clone());
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad_or_zeros(x);

        let eps = 1e-3f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f = |t: Tensor| {
                let mut g = Graph::new();
                let x = g.param(t);
                let l = build(&mut g, x);
                g.value(l).item()
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn demo_input() -> Tensor {
        Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.05, -1.4, 0.9], &[2, 3])
    }

    #[test]
    fn gradcheck_matmul_bias_relu_mean() {
        let w = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.7, -0.3, 0.4], &[3, 2]);
        let b = Tensor::from_vec(vec![0.1, -0.1], &[2]);
        gradcheck(
            demo_input(),
            move |g, x| {
                let wv = g.input(w.clone());
                let bv = g.input(b.clone());
                let h = g.matmul(x, wv);
                let h = g.add_bias(h, bv);
                let h = g.relu(h);
                g.mean(h)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_matmul_weight_side() {
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.05, -1.4, 0.9], &[2, 3]);
        gradcheck(
            Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.7, -0.3, 0.4], &[3, 2]),
            move |g, w| {
                let xv = g.input(x.clone());
                let h = g.matmul(xv, w);
                let h = g.tanh(h);
                g.mean(h)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_fused_linear_all_activations() {
        // The fused node must agree with finite differences through every
        // activation, on both the input and the weight side.
        let w = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.7, -0.3, 0.4], &[3, 2]);
        let b = Tensor::from_vec(vec![0.15, -0.4], &[2]);
        for act in [Act::Identity, Act::Relu, Act::Tanh, Act::Sigmoid] {
            let (w2, b2) = (w.clone(), b.clone());
            gradcheck(
                demo_input(),
                move |g, x| {
                    let wv = g.input(w2.clone());
                    let bv = g.input(b2.clone());
                    let h = g.linear(x, wv, bv, act);
                    g.mean(h)
                },
                2e-2,
            );
        }
        let x = demo_input();
        for act in [Act::Identity, Act::Relu, Act::Tanh, Act::Sigmoid] {
            let x2 = x.clone();
            gradcheck(
                Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.7, -0.3, 0.4], &[3, 2]),
                move |g, w| {
                    let xv = g.input(x2.clone());
                    let bv = g.input(Tensor::from_vec(vec![0.15, -0.4], &[2]));
                    let h = g.linear(xv, w, bv, act);
                    g.mean(h)
                },
                2e-2,
            );
        }
    }

    #[test]
    fn fused_linear_matches_unfused_pipeline() {
        let x = demo_input();
        let w = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.7, -0.3, 0.4], &[3, 2]);
        let b = Tensor::from_vec(vec![0.15, -0.4], &[2]);

        let mut g1 = Graph::new();
        let xv = g1.input(x.clone());
        let wv = g1.input(w.clone());
        let bv = g1.input(b.clone());
        let fused = g1.linear(xv, wv, bv, Act::Tanh);

        let mut g2 = Graph::new();
        let xv2 = g2.input(x);
        let wv2 = g2.input(w);
        let bv2 = g2.input(b);
        let mm = g2.matmul(xv2, wv2);
        let ab = g2.add_bias(mm, bv2);
        let t = g2.tanh(ab);

        // Bias-seeded accumulation reorders float additions vs the
        // unfused pipeline, so compare within an ulp-scale tolerance.
        for (a, b) in g1.value(fused).data().iter().zip(g2.value(t).data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert_eq!(g1.len(), 4, "fused pipeline: 3 leaves + 1 node");
        assert_eq!(g2.len(), 6, "unfused pipeline: 3 leaves + 3 nodes");
    }

    #[test]
    fn gradcheck_tanh_sigmoid_exp() {
        gradcheck(
            demo_input(),
            |g, x| {
                let a = g.tanh(x);
                let b = g.sigmoid(a);
                let c = g.exp(b);
                g.mean(c)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_log_softmax_select() {
        gradcheck(
            demo_input(),
            |g, x| {
                let ls = g.log_softmax(x);
                let picked = g.select_cols(ls, &[2, 0]);
                g.mean(picked)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_clamp_min_mul() {
        let other = Tensor::from_vec(vec![0.2, -0.3, 0.8, -0.9, 0.4, 1.1], &[2, 3]);
        gradcheck(
            demo_input(),
            move |g, x| {
                let o = g.input(other.clone());
                let c = g.clamp(x, -1.0, 1.0);
                let m = g.min_elem(c, o);
                let p = g.mul(m, o);
                g.mean(p)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_sum_rows_and_arith() {
        gradcheck(
            demo_input(),
            |g, x| {
                let s = g.scale(x, 1.7);
                let s = g.add_scalar(s, 0.3);
                let r = g.sum_rows(s);
                let sq = g.mul(r, r);
                g.sum(sq)
            },
            5e-2,
        );
    }

    #[test]
    fn gradcheck_sub_add() {
        let other = Tensor::from_vec(vec![0.2, -0.3, 0.8, -0.9, 0.4, 1.1], &[2, 3]);
        gradcheck(
            demo_input(),
            move |g, x| {
                let o = g.input(other.clone());
                let d = g.sub(x, o);
                let e = g.add(d, x);
                let f = g.mul(e, e);
                g.mean(f)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_reshape_pipeline() {
        gradcheck(
            demo_input(),
            |g, x| {
                let r = g.reshape(x, &[3, 2]);
                let t = g.tanh(r);
                g.mean(t)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_conv_and_pool() {
        // 1 batch, 1 channel, 4x4 input; 1 output channel, 2x2 kernel.
        let x = Tensor::from_vec(
            (0..16).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[1, 1, 4, 4],
        );
        gradcheck(
            x,
            |g, xin| {
                let w = g.param(Tensor::from_vec(vec![0.4, -0.2, 0.3, 0.1], &[1, 1, 2, 2]));
                let b = g.param(Tensor::from_vec(vec![0.05], &[1]));
                let c = g.conv2d(xin, w, b, 1); // [1,1,3,3]
                let t = g.tanh(c);
                g.mean(t)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_conv_weights() {
        let x = Tensor::from_vec(
            (0..32).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.2).collect(),
            &[1, 2, 4, 4],
        );
        gradcheck(
            Tensor::from_vec(
                (0..16).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.1).collect(),
                &[2, 2, 2, 2],
            ),
            move |g, w| {
                let xin = g.input(x.clone());
                let b = g.input(Tensor::from_vec(vec![0.0, 0.1], &[2]));
                let c = g.conv2d(xin, w, b, 2); // [1,2,2,2]
                let p = g.max_pool2d(c, 2); // [1,2,1,1]
                let r = g.reshape(p, &[1, 2]);
                let s = g.sum_rows(r);
                g.sum(s)
            },
            2e-2,
        );
    }

    #[test]
    fn log_softmax_rows_are_normalized() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0],
            &[2, 3],
        ));
        let ls = g.log_softmax(x);
        for i in 0..2 {
            let s: f32 = (0..3).map(|j| g.value(ls).at(i, j).exp()).sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn log_softmax_handles_extreme_logits() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1000.0, -1000.0, 0.0], &[1, 3]));
        let ls = g.log_softmax(x);
        assert!(g.value(ls).data().iter().all(|v| v.is_finite()));
        assert!(
            (g.value(ls).at(0, 0)).abs() < 1e-5,
            "dominant logit has logprob ~0"
        );
    }

    #[test]
    fn gradients_accumulate_over_reused_nodes() {
        // loss = mean(x * x): d/dx = 2x/len, uses x twice via Mul(a,a).
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![3.0, -2.0], &[2]));
        let sq = g.mul(x, x);
        let loss = g.mean(sq);
        g.backward(loss);
        let gr = g.grad(x).expect("touched");
        assert!((gr.data()[0] - 3.0).abs() < 1e-5);
        assert!((gr.data()[1] + 2.0).abs() < 1e-5);
    }

    #[test]
    fn conv_output_shape_and_value() {
        // Uniform input, unit kernel: every output equals k*k*mean + bias.
        let mut g = Graph::new();
        let x = g.input(Tensor::full(&[1, 1, 4, 4], 2.0));
        let w = g.input(Tensor::full(&[1, 1, 2, 2], 1.0));
        let b = g.input(Tensor::from_vec(vec![0.5], &[1]));
        let c = g.conv2d(x, w, b, 2);
        assert_eq!(g.value(c).shape(), &[1, 1, 2, 2]);
        assert!(g.value(c).data().iter().all(|&v| (v - 8.5).abs() < 1e-6));
    }

    #[test]
    fn max_pool_takes_window_max() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        ));
        let p = g.max_pool2d(x, 2);
        assert_eq!(g.value(p).data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.param(Tensor::zeros(&[2, 2]));
        let y = g.relu(x);
        g.backward(y);
    }

    #[test]
    fn is_param_distinguishes_leaves() {
        let mut g = Graph::new();
        let p = g.param(Tensor::zeros(&[1]));
        let i = g.input(Tensor::zeros(&[1]));
        let s = g.add(p, i);
        assert!(g.is_param(p));
        assert!(!g.is_param(i));
        assert!(!g.is_param(s));
    }

    #[test]
    fn grad_of_untouched_node_is_none_and_zeros() {
        let mut g = Graph::new();
        let x = g.param(Tensor::zeros(&[3]));
        let y = g.param(Tensor::from_vec(vec![1.0], &[1]));
        let loss = g.mean(y);
        g.backward(loss);
        assert!(g.grad(x).is_none());
        assert_eq!(g.grad_or_zeros(x).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(g.grad(y).expect("touched").data(), &[1.0]);
    }

    #[test]
    fn take_grad_moves_out_once() {
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![2.0], &[1]));
        let sq = g.mul(x, x);
        let loss = g.mean(sq);
        g.backward(loss);
        let taken = g.take_grad(x);
        assert!((taken.data()[0] - 4.0).abs() < 1e-6);
        // A second take sees no gradient and falls back to zeros.
        assert_eq!(g.take_grad(x).data(), &[0.0]);
    }

    /// The tentpole regression test: a reused (reset) graph must produce
    /// bit-identical values and gradients to a fresh one.
    #[test]
    fn reset_reuse_is_bit_identical() {
        let x = demo_input();
        let w = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.7, -0.3, 0.4], &[3, 2]);
        let b = Tensor::from_vec(vec![0.15, -0.4], &[2]);

        let run = |g: &mut Graph| -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
            let xv = g.param(x.clone());
            let wv = g.param(w.clone());
            let bv = g.param(b.clone());
            let h = g.linear(xv, wv, bv, Act::Tanh);
            let ls = g.log_softmax(h);
            let sel = g.select_cols(ls, &[1, 0]);
            let loss = g.mean(sel);
            g.backward(loss);
            (
                g.value(loss).data().to_vec(),
                g.grad_or_zeros(xv).data().to_vec(),
                g.grad_or_zeros(wv).data().to_vec(),
                g.grad_or_zeros(bv).data().to_vec(),
            )
        };

        let mut fresh = Graph::new();
        let expect = run(&mut fresh);

        let mut reused = Graph::new();
        let _ = run(&mut reused);
        for _ in 0..3 {
            reused.reset();
            assert!(reused.is_empty());
            let got = run(&mut reused);
            assert_eq!(got, expect, "reset graph diverged from fresh graph");
        }
    }

    #[test]
    fn reset_recycles_buffers() {
        let mut g = Graph::new();
        let x = g.input_from(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = g.relu(x);
        let _ = g.mean(y);
        assert_eq!(g.pool_len(), 0);
        g.reset();
        assert!(g.pool_len() >= 3, "node buffers returned to the pool");
        // Re-running the same shape of work drains the pool again.
        let x = g.input_from(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = g.relu(x);
        let _ = g.mean(y);
        assert!(g.pool_len() < 3);
    }

    #[test]
    fn input_from_matches_input() {
        let data = [0.5f32, -1.5, 2.5, 0.0];
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(data.to_vec(), &[2, 2]));
        let b = g.input_from(&data, &[2, 2]);
        assert_eq!(g.value(a), g.value(b));
        assert!(!g.is_param(b));
        let t = g.value(a).clone();
        let p = g.param_from(&t);
        assert!(g.is_param(p));
        assert_eq!(g.value(p), &t);
    }
}
