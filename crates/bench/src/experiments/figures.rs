//! Figure generators: Figs 3, 7, 8, 9, 10, 11, 12, 13 of the paper.
//! Figures print as aligned series (epoch → value) plus JSON for plotting.

use serde_json::json;

use rlsched_sched::{HeuristicKind, PriorityScheduler};
use rlsched_sim::{run_episode, MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{FilterMode, PolicyKind, TrainingCurve, TrajectoryFilter};

use crate::profile::Profile;
use crate::report::{fmt_metric, Report};

/// Fig 3: average bounded slowdown of SJF over consecutive 256-job windows
/// of the PIK-IPLEX trace — the variance motivation (§III-2).
pub fn fig3(p: &Profile, report: &mut Report) {
    report.section("Fig 3: SJF bsld across the PIK-IPLEX timeline (256-job windows)");
    let trace = p.trace(NamedWorkload::PikIplex);
    let win = 256.min(trace.len() / 4);
    let stride = win / 2;
    let mut series = Vec::new();
    let mut start = 0;
    while start + win <= trace.len() {
        let w = trace.window(start, win).expect("window in range");
        let mut sjf = PriorityScheduler::new(HeuristicKind::Sjf);
        let m = run_episode(&w, SimConfig::default(), &mut sjf).expect("schedulable");
        series.push((start, m.avg_bounded_slowdown()));
        start += stride;
    }
    let max = series
        .iter()
        .cloned()
        .fold((0, 0.0), |a, b| if b.1 > a.1 { b } else { a });
    let min = series
        .iter()
        .cloned()
        .fold((0, f64::MAX), |a, b| if b.1 < a.1 { b } else { a });
    let near_one = series.iter().filter(|(_, v)| *v < 2.0).count();
    println!(
        "windows: {}   min bsld: {}   max bsld: {} (at job {})   windows with bsld<2: {}%",
        series.len(),
        fmt_metric(min.1),
        fmt_metric(max.1),
        max.0,
        100 * near_one / series.len().max(1)
    );
    let rows: Vec<Vec<String>> = series
        .iter()
        .step_by((series.len() / 24).max(1))
        .map(|(s, v)| vec![s.to_string(), fmt_metric(*v), bar(*v, max.1)])
        .collect();
    report.table(&["job-offset", "bsld", ""], &rows);
    report.record(
        "series",
        json!(series
            .iter()
            .map(|(s, v)| json!([s, v]))
            .collect::<Vec<_>>()),
    );
    report.record("max", json!({"offset": max.0, "bsld": max.1}));
}

/// Fig 7: distribution of per-sequence SJF bsld on PIK-IPLEX with the
/// median / mean / 2·mean markers that define the filter range R.
pub fn fig7(p: &Profile, report: &mut Report) {
    report.section("Fig 7: distribution of 256-job SJF bsld on PIK-IPLEX");
    let trace = p.trace(NamedWorkload::PikIplex);
    let seq = 256.min(trace.len() / 4);
    let f = TrajectoryFilter::fit(
        &trace,
        seq,
        p.filter_fit,
        MetricKind::BoundedSlowdown,
        SimConfig::default(),
        p.seed ^ 0xF17,
    );
    println!(
        "samples: {}   median: {}   mean: {}   2*mean: {}   accept-rate in R: {:.0}%",
        f.samples().len(),
        fmt_metric(f.median()),
        fmt_metric(f.mean()),
        fmt_metric(2.0 * f.mean()),
        100.0 * f.acceptance_rate()
    );
    // Log-scale histogram.
    let max = f.samples().last().copied().unwrap_or(1.0).max(2.0);
    let buckets = 12usize;
    let edges: Vec<f64> = (0..=buckets)
        .map(|i| (max.ln() * i as f64 / buckets as f64).exp())
        .collect();
    let mut counts = vec![0usize; buckets];
    for &v in f.samples() {
        let mut b = buckets - 1;
        for i in 0..buckets {
            if v <= edges[i + 1] {
                b = i;
                break;
            }
        }
        counts[b] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let rows: Vec<Vec<String>> = (0..buckets)
        .map(|i| {
            vec![
                format!("{}..{}", fmt_metric(edges[i]), fmt_metric(edges[i + 1])),
                counts[i].to_string(),
                "#".repeat(40 * counts[i] / peak),
            ]
        })
        .collect();
    report.table(&["bsld range", "sequences", ""], &rows);
    report.record(
        "stats",
        json!({"median": f.median(), "mean": f.mean(), "range": f.range(), "samples": f.samples()}),
    );
}

/// Fig 8: training-efficiency comparison of the Table IV policy networks
/// on Lublin-1 and SDSC-SP2.
pub fn fig8(p: &Profile, report: &mut Report) {
    report.section("Fig 8: policy-network architectures (Table IV) on Lublin-1 / SDSC-SP2");
    for workload in [NamedWorkload::Lublin1, NamedWorkload::SdscSp2] {
        println!("\n-- {} --", workload.name());
        let mut curves: Vec<(String, TrainingCurve)> = Vec::new();
        for (i, kind) in PolicyKind::all().into_iter().enumerate() {
            let (_agent, curve) = p.train_agent(
                workload,
                kind,
                MetricKind::BoundedSlowdown,
                SimConfig::default(),
                FilterMode::Off,
                0xF18 ^ (i as u64) << 6,
            );
            curves.push((kind.name().to_string(), curve));
        }
        print_curves(report, &curves, "bsld");
        report.record(
            workload.name(),
            json!(curves
                .iter()
                .map(|(n, c)| json!({
                    "arch": n,
                    "curve": c.iter().map(|e| e.mean_metric).collect::<Vec<_>>()
                }))
                .collect::<Vec<_>>()),
        );
    }
}

/// Fig 9: training on PIK-IPLEX with vs without trajectory filtering.
pub fn fig9(p: &Profile, report: &mut Report) {
    report.section("Fig 9: trajectory filtering on PIK-IPLEX (bsld)");
    let phase1 = (p.epochs * 2 / 3).max(1);
    let configs = [
        ("without filtering", FilterMode::Off),
        (
            "with filtering",
            FilterMode::two_phase(phase1, p.filter_fit),
        ),
    ];
    let mut curves = Vec::new();
    for (i, (name, filter)) in configs.into_iter().enumerate() {
        let (_agent, curve) = p.train_agent(
            NamedWorkload::PikIplex,
            PolicyKind::Kernel,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            filter,
            0xF19 ^ (i as u64) << 5,
        );
        curves.push((name.to_string(), curve));
    }
    print_curves(report, &curves, "bsld");
    // Tail-stability comparison: variance of the last third of each curve.
    let tail_cv = |c: &TrainingCurve| {
        let tail: Vec<f64> = c[c.len() * 2 / 3..].iter().map(|e| e.mean_metric).collect();
        let m = tail.iter().sum::<f64>() / tail.len() as f64;
        let v = tail.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / tail.len() as f64;
        (m, v.sqrt() / m.max(1e-9))
    };
    let (m0, cv0) = tail_cv(&curves[0].1);
    let (m1, cv1) = tail_cv(&curves[1].1);
    println!(
        "tail mean/cv  without: {} / {:.2}   with: {} / {:.2}",
        fmt_metric(m0),
        cv0,
        fmt_metric(m1),
        cv1
    );
    report.record(
        "curves",
        json!(curves
            .iter()
            .map(|(n, c)| json!({"mode": n, "curve": c.iter().map(|e| e.mean_metric).collect::<Vec<_>>()}))
            .collect::<Vec<_>>()),
    );
    report.record(
        "tail",
        json!({"without": {"mean": m0, "cv": cv0}, "with": {"mean": m1, "cv": cv1}}),
    );
}

/// Figs 10–13: RLScheduler training curves on the four workloads for one
/// metric (bsld / util / slowdown / wait).
pub fn training_curves(p: &Profile, metric: MetricKind, fig_name: &str, report: &mut Report) {
    report.section(&format!(
        "{fig_name}: training curves toward {}",
        metric.name()
    ));
    let mut curves = Vec::new();
    for (i, w) in NamedWorkload::training_four().into_iter().enumerate() {
        let (_agent, curve) = p.train_agent(
            w,
            PolicyKind::Kernel,
            metric,
            SimConfig::default(),
            FilterMode::Off,
            0xF1A ^ (i as u64) << 7 ^ metric.name().len() as u64,
        );
        curves.push((w.name().to_string(), curve));
    }
    print_curves(report, &curves, metric.name());
    for (n, c) in &curves {
        report.record(
            n,
            json!(c.iter().map(|e| e.mean_metric).collect::<Vec<_>>()),
        );
    }
}

/// Print per-epoch series side by side.
fn print_curves(report: &Report, curves: &[(String, TrainingCurve)], unit: &str) {
    let epochs = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    let mut headers: Vec<String> = vec![format!("epoch ({unit})")];
    headers.extend(curves.iter().map(|(n, _)| n.clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    let step = (epochs / 25).max(1);
    for e in (0..epochs).step_by(step) {
        let mut row = vec![e.to_string()];
        for (_, c) in curves {
            row.push(
                c.get(e)
                    .map(|s| fmt_metric(s.mean_metric))
                    .unwrap_or_default(),
            );
        }
        rows.push(row);
    }
    report.table(&header_refs, &rows);
}

/// ASCII bar for quick visual scanning of series.
fn bar(v: f64, max: f64) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((v / max) * 30.0).round() as usize;
    "#".repeat(n.min(30))
}
