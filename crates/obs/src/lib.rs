//! `rlsched-obs` — the repo's unified telemetry layer: a metrics
//! registry, span tracing, and a text exposition encoder, shared by the
//! serve tier, the trainer, and the replay engine.
//!
//! Design contract, same discipline as the rest of the stack:
//!
//! * **Recording is free-ish.** Counter/gauge/histogram recording is
//!   one or two relaxed atomic RMWs; a disabled span is a cached load
//!   and a branch. Zero steady-state allocations on every recording
//!   path — pinned by the workspace alloc-regression suite — and the
//!   `obs_overhead` bench bounds the instrumented serve engine cycle
//!   within 2% of the uninstrumented baseline.
//! * **Telemetry never steers.** Clock reads happen only inside span
//!   guards (and only when `RLSCHED_TRACE` is set) and latency
//!   recording; no decision path consumes them. All parity suites run
//!   bit-identical with tracing on.
//! * **Scrapes never stop writers.** [`Registry::snapshot`] reads
//!   atomics; a histogram's reported total is derived from its bucket
//!   reads so `sum(buckets) == count` holds mid-race.
//!
//! # Metric naming
//!
//! `rlsched_<subsystem>_<what>[_total]` with snake_case names and
//! lowercase label keys: `rlsched_serve_served_total{shard="0"}`,
//! `rlsched_train_update_ns_total{phase="forward"}`,
//! `rlsched_replay_ticks_total{head="SJF"}`. Counters end in
//! `_total`; nanosecond histograms end in `_ns`. See
//! `crates/obs/README.md` for the full scheme and the exposition
//! grammar.
//!
//! # Pieces
//!
//! * [`Registry`] + [`Counter`]/[`Gauge`]/[`Histogram`] handles, and
//!   [`RegistrySnapshot`] — the scrape value that crosses the wire as
//!   `serve::Request::Metrics` and renders via [`encode_text`].
//! * [`LatencyHistogram`] — the single-owner log-linear histogram that
//!   grew up in `rlsched-serve` (still re-exported there) and now
//!   shares its bucket axis with the registry histograms.
//! * [`span!`] / [`trace`] — RAII spans, `RLSCHED_TRACE`-gated, drained
//!   as JSONL from a bounded ring.

pub mod histogram;
pub mod registry;
pub mod trace;

pub use histogram::{bucket_of, bucket_upper, LatencyHistogram};
pub use registry::{
    encode_text, global, Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue,
    Registry, RegistrySnapshot,
};
