//! # RLScheduler
//!
//! A from-scratch Rust reproduction of *RLScheduler: An Automated HPC
//! Batch Job Scheduler Using Reinforcement Learning* (Zhang, Dai, He,
//! Bao, Xie — SC 2020).
//!
//! RLScheduler learns batch-job scheduling policies by trial and error in
//! a simulated HPC cluster, instead of relying on hand-tuned priority
//! functions. This crate is the paper's contribution layer; the substrates
//! live in sibling crates (`rlsched-sim` — the SchedGym simulator,
//! `rlsched-nn` — autodiff, `rlsched-rl` — PPO, `rlsched-sched` — the
//! heuristic baselines, `rlsched-workload` — trace generators).
//!
//! The two key ideas of the paper, and where they live here:
//!
//! * **Kernel-based policy network** (§IV-B): [`nets::KernelPolicy`]
//!   scores every waiting job with one small shared MLP, making the
//!   policy insensitive to job ordering in the queue.
//! * **Trajectory filtering** (§IV-C): [`filter::TrajectoryFilter`]
//!   controls training variance on bursty workloads by restricting early
//!   epochs to sequences whose SJF metric falls in `(median, 2·mean)`.
//!
//! ## Quickstart
//!
//! ```
//! use rlscheduler::prelude::*;
//!
//! // A synthetic workload (Lublin model, calibrated to the paper's Table II).
//! let trace = rlsched_workload::NamedWorkload::Lublin1.generate(600, 42);
//!
//! // A small agent (paper defaults shrunk for doc-test speed).
//! let mut cfg = AgentConfig::paper_default();
//! cfg.obs.max_obsv = 16;
//! cfg.ppo.train_pi_iters = 5;
//! cfg.ppo.train_v_iters = 5;
//! let mut agent = Agent::new(cfg);
//!
//! // Train for a couple of epochs…
//! let train_cfg = TrainConfig {
//!     epochs: 2,
//!     trajectories_per_epoch: 4,
//!     seq_len: 32,
//!     ..TrainConfig::default()
//! };
//! let curve = train(&mut agent, &trace, &train_cfg);
//! assert_eq!(curve.len(), 2);
//!
//! // …then schedule like any other policy and compare with SJF.
//! let windows = sample_eval_windows(&trace, 3, 64, 7);
//! let rl = evaluate_policy(&windows, SimConfig::default(), &mut agent.as_policy());
//! let sjf = evaluate_policy(
//!     &windows,
//!     SimConfig::default(),
//!     &mut rlsched_sched::PriorityScheduler::new(rlsched_sched::HeuristicKind::Sjf),
//! );
//! assert_eq!(rl.len(), sjf.len());
//! ```

pub mod agent;
pub mod canary;
pub mod env;
pub mod eval;
pub mod filter;
pub mod nets;
pub mod obs;
pub mod reward;
pub mod train;

pub use agent::{Agent, AgentConfig, RlPolicy, StreamDecider};
pub use canary::{CanaryBatch, CanaryError};
pub use env::SchedulingEnv;
pub use eval::{evaluate_agent, evaluate_policy, mean_metric, sample_eval_windows};
pub use filter::TrajectoryFilter;
pub use nets::{
    FlatMlpPolicy, KernelPolicy, LeNetPolicy, PackedScorer, PolicyKind, PolicyNet, ScorerSnapshot,
    ValueNet,
};
pub use obs::{ObsConfig, ObsEncoder, QueueSnapshot, SnapshotJob, JOB_FEATURES};
pub use reward::Objective;
pub use train::{train, EpochStats, FilterMode, TrainConfig, TrainingCurve};

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::agent::{Agent, AgentConfig};
    pub use crate::eval::{evaluate_agent, evaluate_policy, mean_metric, sample_eval_windows};
    pub use crate::filter::TrajectoryFilter;
    pub use crate::nets::PolicyKind;
    pub use crate::obs::ObsConfig;
    pub use crate::reward::Objective;
    pub use crate::train::{train, FilterMode, TrainConfig};
    pub use rlsched_sim::{BackfillMode, MetricKind, SimConfig};
}
