//! Scheduling metrics (§II-A3 of the paper): average waiting time, average
//! turnaround (response) time, average slowdown, average *bounded* slowdown,
//! resource utilization, and the per-user aggregations behind the fairness
//! experiments (§V-F).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// The interactive threshold of the bounded-slowdown metric: 10 seconds,
/// exactly as §II-A3 defines `max((w+e)/max(e, 10), 1)`.
pub const BSLD_THRESHOLD: f64 = 10.0;

/// What happened to one job in a simulated episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Index of the job in the episode trace (trace order).
    pub job_index: usize,
    /// Submit time (seconds from episode start).
    pub submit: f64,
    /// Time the job started running.
    pub start: f64,
    /// Time the job finished (start + actual runtime).
    pub end: f64,
    /// Processors the job occupied.
    pub procs: u32,
    /// User that submitted the job (SWF user id; -1 when unknown).
    pub user: i64,
}

impl JobOutcome {
    /// Waiting time `w = start - submit`.
    pub fn wait(&self) -> f64 {
        self.start - self.submit
    }

    /// Execution time `e = end - start`.
    pub fn exec(&self) -> f64 {
        self.end - self.start
    }

    /// Turnaround (response) time `w + e`.
    pub fn turnaround(&self) -> f64 {
        self.end - self.submit
    }

    /// Raw slowdown `(w + e) / e`, with the execution time floored at one
    /// second (zero-length jobs exist in archives and would divide by zero).
    pub fn slowdown(&self) -> f64 {
        let e = self.exec().max(1.0);
        (self.wait() + e) / e
    }

    /// Bounded slowdown `max((w + e) / max(e, 10), 1)` per §II-A3.
    pub fn bounded_slowdown(&self) -> f64 {
        let e = self.exec();
        ((self.wait() + e) / e.max(BSLD_THRESHOLD)).max(1.0)
    }
}

/// The optimization goals of the paper (§II-A3). All but `Utilization` are
/// minimized; `Utilization` is maximized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Average waiting time (`wait`).
    WaitTime,
    /// Average response/turnaround time (`resp`).
    Turnaround,
    /// Average raw slowdown (appendix A of the paper).
    Slowdown,
    /// Average bounded slowdown (`bsld`), the headline metric.
    BoundedSlowdown,
    /// Resource utilization (`util`).
    Utilization,
    /// Maximal per-user average bounded slowdown (the `Maximal` fairness
    /// aggregator of §V-F applied to bsld).
    FairMaxBoundedSlowdown,
}

impl MetricKind {
    /// True when a larger value is better (only utilization).
    pub fn maximize(self) -> bool {
        matches!(self, MetricKind::Utilization)
    }

    /// Short machine-friendly name used by the repro harness.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::WaitTime => "wait",
            MetricKind::Turnaround => "resp",
            MetricKind::Slowdown => "sld",
            MetricKind::BoundedSlowdown => "bsld",
            MetricKind::Utilization => "util",
            MetricKind::FairMaxBoundedSlowdown => "fair-max-bsld",
        }
    }
}

/// Complete result of one scheduled episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeMetrics {
    outcomes: Vec<JobOutcome>,
    total_procs: u32,
}

impl EpisodeMetrics {
    /// Assemble metrics from per-job outcomes and the cluster size.
    pub fn new(outcomes: Vec<JobOutcome>, total_procs: u32) -> Self {
        EpisodeMetrics {
            outcomes,
            total_procs,
        }
    }

    /// Per-job outcomes, in trace order.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Cluster size used for the utilization integral.
    pub fn total_procs(&self) -> u32 {
        self.total_procs
    }

    fn avg<F: Fn(&JobOutcome) -> f64>(&self, f: F) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(f).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Average waiting time over all jobs.
    pub fn avg_waiting_time(&self) -> f64 {
        self.avg(JobOutcome::wait)
    }

    /// Average turnaround time over all jobs.
    pub fn avg_turnaround(&self) -> f64 {
        self.avg(JobOutcome::turnaround)
    }

    /// Average raw slowdown over all jobs.
    pub fn avg_slowdown(&self) -> f64 {
        self.avg(JobOutcome::slowdown)
    }

    /// Average bounded slowdown over all jobs — the paper's primary metric.
    pub fn avg_bounded_slowdown(&self) -> f64 {
        self.avg(JobOutcome::bounded_slowdown)
    }

    /// Resource utilization: busy processor-seconds divided by the cluster
    /// capacity over the interval from first submission to last completion
    /// (§II-A3 "average percentage of compute nodes allocated … over a given
    /// period of time").
    pub fn utilization(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let t0 = self
            .outcomes
            .iter()
            .map(|o| o.submit)
            .fold(f64::INFINITY, f64::min);
        let t1 = self.outcomes.iter().map(|o| o.end).fold(0.0, f64::max);
        let span = t1 - t0;
        if span <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .outcomes
            .iter()
            .map(|o| o.exec() * o.procs as f64)
            .sum();
        busy / (span * self.total_procs as f64)
    }

    /// Average bounded slowdown of each user's jobs (fairness building
    /// block, §V-F). Jobs with unknown user (-1) form their own group.
    pub fn per_user_bounded_slowdown(&self) -> HashMap<i64, f64> {
        let mut sums: HashMap<i64, (f64, usize)> = HashMap::new();
        for o in &self.outcomes {
            let e = sums.entry(o.user).or_insert((0.0, 0));
            e.0 += o.bounded_slowdown();
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(u, (s, n))| (u, s / n as f64))
            .collect()
    }

    /// The `Maximal` fairness aggregator of §V-F: the worst per-user average
    /// bounded slowdown.
    pub fn max_user_bounded_slowdown(&self) -> f64 {
        self.per_user_bounded_slowdown()
            .values()
            .copied()
            .fold(0.0, f64::max)
    }

    /// Evaluate a named metric.
    pub fn metric(&self, kind: MetricKind) -> f64 {
        match kind {
            MetricKind::WaitTime => self.avg_waiting_time(),
            MetricKind::Turnaround => self.avg_turnaround(),
            MetricKind::Slowdown => self.avg_slowdown(),
            MetricKind::BoundedSlowdown => self.avg_bounded_slowdown(),
            MetricKind::Utilization => self.utilization(),
            MetricKind::FairMaxBoundedSlowdown => self.max_user_bounded_slowdown(),
        }
    }

    /// Makespan: last completion minus first submission.
    pub fn makespan(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let t0 = self
            .outcomes
            .iter()
            .map(|o| o.submit)
            .fold(f64::INFINITY, f64::min);
        let t1 = self.outcomes.iter().map(|o| o.end).fold(0.0, f64::max);
        t1 - t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(submit: f64, start: f64, end: f64, procs: u32, user: i64) -> JobOutcome {
        JobOutcome {
            job_index: 0,
            submit,
            start,
            end,
            procs,
            user,
        }
    }

    #[test]
    fn wait_exec_turnaround() {
        let o = outcome(10.0, 25.0, 125.0, 4, 1);
        assert_eq!(o.wait(), 15.0);
        assert_eq!(o.exec(), 100.0);
        assert_eq!(o.turnaround(), 115.0);
    }

    #[test]
    fn slowdown_matches_definition() {
        let o = outcome(0.0, 100.0, 200.0, 1, 1);
        assert_eq!(o.slowdown(), 2.0);
    }

    #[test]
    fn bounded_slowdown_clamps_short_jobs() {
        // 1-second job waiting 9 seconds: raw slowdown is 10, but bounded
        // slowdown is (9 + 1)/max(1, 10) = 1.
        let o = outcome(0.0, 9.0, 10.0, 1, 1);
        assert_eq!(o.slowdown(), 10.0);
        assert_eq!(o.bounded_slowdown(), 1.0);
    }

    #[test]
    fn bounded_slowdown_floors_at_one() {
        let o = outcome(0.0, 0.0, 1000.0, 1, 1);
        assert_eq!(o.bounded_slowdown(), 1.0);
    }

    #[test]
    fn bounded_slowdown_long_job() {
        // 100-second job waiting 100 seconds: (100+100)/max(100,10) = 2.
        let o = outcome(0.0, 100.0, 200.0, 1, 1);
        assert_eq!(o.bounded_slowdown(), 2.0);
    }

    #[test]
    fn utilization_full_cluster() {
        // Two jobs back to back occupying the whole 4-proc cluster.
        let m = EpisodeMetrics::new(
            vec![
                outcome(0.0, 0.0, 50.0, 4, 1),
                outcome(0.0, 50.0, 100.0, 4, 1),
            ],
            4,
        );
        assert!((m.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_half_cluster() {
        let m = EpisodeMetrics::new(vec![outcome(0.0, 0.0, 100.0, 2, 1)], 4);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_user_aggregation_and_max() {
        let m = EpisodeMetrics::new(
            vec![
                outcome(0.0, 0.0, 100.0, 1, 1),   // bsld 1
                outcome(0.0, 100.0, 200.0, 1, 2), // bsld 2
                outcome(0.0, 300.0, 400.0, 1, 2), // bsld 4
            ],
            4,
        );
        let per = m.per_user_bounded_slowdown();
        assert!((per[&1] - 1.0).abs() < 1e-12);
        assert!((per[&2] - 3.0).abs() < 1e-12);
        assert!((m.max_user_bounded_slowdown() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn metric_dispatch_matches_direct_calls() {
        let m = EpisodeMetrics::new(vec![outcome(0.0, 10.0, 110.0, 2, 1)], 4);
        assert_eq!(m.metric(MetricKind::WaitTime), m.avg_waiting_time());
        assert_eq!(m.metric(MetricKind::Turnaround), m.avg_turnaround());
        assert_eq!(m.metric(MetricKind::Slowdown), m.avg_slowdown());
        assert_eq!(
            m.metric(MetricKind::BoundedSlowdown),
            m.avg_bounded_slowdown()
        );
        assert_eq!(m.metric(MetricKind::Utilization), m.utilization());
        assert_eq!(
            m.metric(MetricKind::FairMaxBoundedSlowdown),
            m.max_user_bounded_slowdown()
        );
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = EpisodeMetrics::new(vec![], 4);
        assert_eq!(m.avg_waiting_time(), 0.0);
        assert_eq!(m.utilization(), 0.0);
        assert_eq!(m.makespan(), 0.0);
        assert_eq!(m.max_user_bounded_slowdown(), 0.0);
    }

    #[test]
    fn only_utilization_maximizes() {
        assert!(MetricKind::Utilization.maximize());
        assert!(!MetricKind::BoundedSlowdown.maximize());
        assert!(!MetricKind::FairMaxBoundedSlowdown.maximize());
    }

    #[test]
    fn metric_names_are_stable() {
        assert_eq!(MetricKind::BoundedSlowdown.name(), "bsld");
        assert_eq!(MetricKind::Utilization.name(), "util");
    }
}
