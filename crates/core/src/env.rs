//! The RL environment: SchedGym (§IV-D) wrapped for the agent.
//!
//! Each episode schedules one window of `seq_len` consecutive jobs drawn
//! at a random offset from the base trace (the paper trains on 256-job
//! sequences, §V-A). Intermediate rewards are 0; the final action receives
//! the full signed metric (§IV-A). With a [`TrajectoryFilter`] installed,
//! candidate windows are re-drawn until their SJF metric falls inside the
//! filter range — the phase-1 regime of §IV-C.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rlsched_rl::{Env, StepOutcome};
use rlsched_sim::{SchedSession, SimConfig};
use rlsched_swf::{JobTrace, SequenceSampler};

use crate::filter::{sjf_metric, TrajectoryFilter};
use crate::obs::ObsEncoder;
use crate::reward::Objective;

/// How many candidate windows `reset` may draw before giving up on the
/// filter and accepting the last candidate (prevents livelock when the
/// range is very narrow).
const MAX_FILTER_TRIES: usize = 200;

/// The scheduling environment.
#[derive(Debug, Clone)]
pub struct SchedulingEnv {
    trace: Arc<JobTrace>,
    seq_len: usize,
    sim_cfg: SimConfig,
    encoder: ObsEncoder,
    objective: Objective,
    filter: Option<Arc<TrajectoryFilter>>,
    session: Option<SchedSession>,
}

impl SchedulingEnv {
    /// Build an environment over `trace`.
    pub fn new(
        trace: Arc<JobTrace>,
        seq_len: usize,
        sim_cfg: SimConfig,
        encoder: ObsEncoder,
        objective: Objective,
    ) -> Self {
        assert!(trace.len() >= seq_len, "trace shorter than one episode");
        SchedulingEnv {
            trace,
            seq_len,
            sim_cfg,
            encoder,
            objective,
            filter: None,
            session: None,
        }
    }

    /// Install (or remove) a trajectory filter for subsequent resets.
    pub fn set_filter(&mut self, filter: Option<Arc<TrajectoryFilter>>) {
        self.filter = filter;
    }

    /// The active objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Full episode metrics of the finished episode, if the current
    /// session has run to completion (the session survives until the
    /// next `reset`, so lockstep drivers — e.g. batched greedy evaluation
    /// over a `VecEnv` — can pull the whole metric table after the env's
    /// slot retires).
    pub fn metrics(&self) -> Option<rlsched_sim::EpisodeMetrics> {
        self.session
            .as_ref()
            .filter(|s| s.done())
            .and_then(|s| s.metrics().ok())
    }

    fn draw_window(&self, seed: u64) -> JobTrace {
        let sampler =
            SequenceSampler::new(self.trace.len(), self.seq_len).expect("validated in constructor");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
        match &self.filter {
            None => {
                let off = sampler.offset_from_draw(rng.gen());
                self.trace.window(off, self.seq_len).expect("offset valid")
            }
            Some(f) => {
                let mut last = None;
                for _ in 0..MAX_FILTER_TRIES {
                    let off = sampler.offset_from_draw(rng.gen());
                    let w = self.trace.window(off, self.seq_len).expect("offset valid");
                    let m = sjf_metric(&w, f.metric(), self.sim_cfg);
                    if f.accepts(m) {
                        return w;
                    }
                    last = Some(w);
                }
                last.expect("at least one candidate drawn")
            }
        }
    }

    /// Encode the current decision point straight from the session,
    /// **appending** one observation row and one mask row to the caller
    /// buffers (the [`Env`] append contract — a `VecEnv` passes its
    /// stacked matrix here directly): the waiting jobs stream through
    /// [`rlsched_sim::SchedSession::waiting_jobs`] without materializing
    /// a `QueueView`, so a steady-state step allocates nothing.
    fn observe_into(&self, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
        let session = self.session.as_ref().expect("reset before observe");
        self.encoder.encode_jobs_extend(
            session.free_procs(),
            session.total_procs(),
            session.queue_len(),
            session.waiting_jobs(),
            obs,
            mask,
        );
    }
}

impl Env for SchedulingEnv {
    fn obs_dim(&self) -> usize {
        self.encoder.obs_dim()
    }

    fn n_actions(&self) -> usize {
        self.encoder.n_actions()
    }

    fn reset(&mut self, seed: u64, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
        let window = self.draw_window(seed);
        self.session = Some(SchedSession::new(&window, self.sim_cfg).expect("non-empty window"));
        self.observe_into(obs, mask);
    }

    fn step(&mut self, action: usize, obs: &mut Vec<f32>, mask: &mut Vec<f32>) -> StepOutcome {
        let session = self.session.as_mut().expect("reset before step");
        session
            .step(action)
            .expect("masked policy emitted an invalid queue position");
        if session.done() {
            let metrics = session.metrics().expect("done");
            let reward = self.objective.reward(&metrics);
            let raw = self.objective.raw(&metrics);
            StepOutcome {
                reward,
                done: true,
                episode_metric: Some(raw),
            }
        } else {
            self.observe_into(obs, mask);
            StepOutcome {
                reward: 0.0,
                done: false,
                episode_metric: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{ObsConfig, JOB_FEATURES};
    use rlsched_sim::MetricKind;
    use rlsched_swf::Job;

    fn base_trace(n: usize) -> Arc<JobTrace> {
        let jobs = (0..n as u32)
            .map(|i| {
                Job::new(
                    i + 1,
                    i as f64 * 50.0,
                    60.0 + (i % 5) as f64 * 100.0,
                    1 + (i % 3),
                    400.0,
                )
            })
            .collect();
        Arc::new(JobTrace::new(jobs, 4))
    }

    fn env(seq_len: usize) -> SchedulingEnv {
        SchedulingEnv::new(
            base_trace(100),
            seq_len,
            SimConfig::default(),
            ObsEncoder::new(ObsConfig {
                max_obsv: 8,
                ..ObsConfig::default()
            }),
            Objective::new(MetricKind::BoundedSlowdown),
        )
    }

    /// Drive an episode with a fixed "always head of queue" policy
    /// (manual single-env driving: buffers cleared before each append).
    fn run_episode_fcfs(env: &mut SchedulingEnv, seed: u64) -> (usize, f64) {
        let (mut obs, mut mask) = (Vec::new(), Vec::new());
        env.reset(seed, &mut obs, &mut mask);
        let mut steps = 0;
        loop {
            obs.clear();
            mask.clear();
            let out = env.step(0, &mut obs, &mut mask);
            steps += 1;
            if out.done {
                return (steps, out.episode_metric.unwrap());
            }
        }
    }

    #[test]
    fn episode_has_seq_len_steps() {
        let mut e = env(16);
        let (steps, metric) = run_episode_fcfs(&mut e, 3);
        assert_eq!(steps, 16, "one decision per job");
        assert!(metric >= 1.0, "bounded slowdown is at least 1");
    }

    #[test]
    fn dims_come_from_encoder() {
        let e = env(16);
        assert_eq!(e.obs_dim(), 8 * JOB_FEATURES);
        assert_eq!(e.n_actions(), 8);
    }

    #[test]
    fn reset_is_reproducible_and_seed_sensitive() {
        let mut e = env(16);
        let reset = |e: &mut SchedulingEnv, seed| {
            let (mut o, mut m) = (Vec::new(), Vec::new());
            e.reset(seed, &mut o, &mut m);
            (o, m)
        };
        let (o1, m1) = reset(&mut e, 42);
        let (o2, m2) = reset(&mut e, 42);
        assert_eq!(o1, o2);
        assert_eq!(m1, m2);
        // Different seeds usually pick different windows.
        let (o3, _) = reset(&mut e, 43);
        assert_ne!(o1, o3);
    }

    #[test]
    fn rewards_are_zero_until_done() {
        let mut e = env(12);
        let (mut obs, mut mask) = (Vec::new(), Vec::new());
        e.reset(1, &mut obs, &mut mask);
        for i in 0..12 {
            obs.clear();
            mask.clear();
            let out = e.step(0, &mut obs, &mut mask);
            if i < 11 {
                assert_eq!(out.reward, 0.0, "intermediate step {i}");
                assert!(!out.done);
            } else {
                assert!(out.done);
                assert!(out.reward < 0.0, "final reward is −scaled metric");
                let expect = -out.episode_metric.unwrap() * e.objective().scale;
                assert!((out.reward - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn filter_restricts_sampled_windows() {
        // Build a filter, then check every accepted reset window would
        // pass the filter's own test.
        let trace = base_trace(200);
        let f = Arc::new(TrajectoryFilter::fit(
            &trace,
            16,
            40,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            9,
        ));
        let mut e = SchedulingEnv::new(
            trace.clone(),
            16,
            SimConfig::default(),
            ObsEncoder::new(ObsConfig {
                max_obsv: 8,
                ..ObsConfig::default()
            }),
            Objective::new(MetricKind::BoundedSlowdown),
        );
        e.set_filter(Some(f.clone()));
        // If the filter accepts nothing (degenerate distribution), reset
        // still terminates thanks to MAX_FILTER_TRIES.
        let (mut o, mut m) = (Vec::new(), Vec::new());
        e.reset(5, &mut o, &mut m);
    }

    #[test]
    fn utilization_objective_gives_positive_reward() {
        let trace = base_trace(60);
        let mut e = SchedulingEnv::new(
            trace,
            12,
            SimConfig::default(),
            ObsEncoder::new(ObsConfig {
                max_obsv: 8,
                ..ObsConfig::default()
            }),
            Objective::new(MetricKind::Utilization),
        );
        let (mut obs, mut mask) = (Vec::new(), Vec::new());
        e.reset(2, &mut obs, &mut mask);
        let mut last = None;
        for _ in 0..12 {
            obs.clear();
            mask.clear();
            let out = e.step(0, &mut obs, &mut mask);
            if out.done {
                last = Some(out);
                break;
            }
        }
        let out = last.expect("episode finished");
        assert!(out.reward > 0.0, "utilization reward is positive");
        let m = out.episode_metric.unwrap();
        assert!((0.0..=1.0).contains(&m));
    }
}
