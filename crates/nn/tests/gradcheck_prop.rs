//! Property-based gradient checks: for random tensors and random op
//! pipelines, the tape's analytic gradients must match central finite
//! differences. This is the load-bearing correctness test for everything
//! PPO-side.

use proptest::prelude::*;

use rlsched_nn::{Graph, Tensor, Var};

fn finite_diff_check<F>(input: Tensor, build: F, tol: f32) -> Result<(), TestCaseError>
where
    F: Fn(&mut Graph, Var) -> Var,
{
    let mut g = Graph::new();
    let x = g.param(input.clone());
    let loss = build(&mut g, x);
    g.backward(loss);
    let analytic = g.grad_or_zeros(x);

    let eps = 1e-2f32;
    for i in 0..input.len() {
        let f = |delta: f32| {
            let mut t = input.clone();
            t.data_mut()[i] += delta;
            let mut g = Graph::new();
            let x = g.param(t);
            let l = build(&mut g, x);
            g.value(l).item()
        };
        let numeric = (f(eps) - f(-eps)) / (2.0 * eps);
        let a = analytic.data()[i];
        prop_assert!(
            (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
            "grad[{}]: analytic {} vs numeric {}",
            i,
            a,
            numeric
        );
    }
    Ok(())
}

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_relu_pipeline_grads(x in arb_matrix(3, 4), w in arb_matrix(4, 2)) {
        finite_diff_check(
            x,
            move |g, xv| {
                let wv = g.input(w.clone());
                let h = g.matmul(xv, wv);
                let r = g.tanh(h); // tanh: smooth, no kink issues at random points
                g.mean(r)
            },
            0.05,
        )?;
    }

    #[test]
    fn weight_side_grads(x in arb_matrix(3, 4), w in arb_matrix(4, 2)) {
        finite_diff_check(
            w,
            move |g, wv| {
                let xv = g.input(x.clone());
                let h = g.matmul(xv, wv);
                let s = g.sigmoid(h);
                g.sum(s)
            },
            0.05,
        )?;
    }

    #[test]
    fn log_softmax_select_grads(x in arb_matrix(3, 5), picks in prop::collection::vec(0usize..5, 3)) {
        finite_diff_check(
            x,
            move |g, xv| {
                let ls = g.log_softmax(xv);
                let sel = g.select_cols(ls, &picks);
                g.mean(sel)
            },
            0.05,
        )?;
    }

    #[test]
    fn ppo_objective_grads(
        x in arb_matrix(4, 3),
        adv in prop::collection::vec(-2.0f32..2.0, 4),
        old in prop::collection::vec(-2.0f32..-0.1, 4),
        picks in prop::collection::vec(0usize..3, 4),
    ) {
        // The exact loss PPO builds: masked log-softmax, selected actions,
        // ratio, clip, min, negated mean — with the clip boundaries taken
        // from the real agent configuration, so changing the clip radius
        // changes this test in lockstep.
        let eps_clip = rlsched_rl::PpoConfig::default().clip_ratio;
        let (clip_lo, clip_hi) = (1.0 - eps_clip, 1.0 + eps_clip);
        // clamp/min are piecewise-linear: central differences straddling a
        // kink (a ratio at a clip boundary) disagree with the one-sided
        // analytic gradient by construction, so draws near a boundary are
        // skipped — the standard gradcheck treatment of non-differentiable
        // points. The skip band scales with the clip radius (half of it),
        // which keeps the two bands disjoint for any radius and reproduces
        // the historical 0.1 band at the default ε = 0.2.
        let band = 0.5 * eps_clip;
        for (i, &pick) in picks.iter().enumerate() {
            let row: Vec<f32> = (0..3).map(|j| x.at(i, j)).collect();
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = mx + row.iter().map(|&v| (v - mx).exp()).sum::<f32>().ln();
            let ratio = (row[pick] - lse - old[i]).exp();
            if (ratio - clip_lo).abs() < band || (ratio - clip_hi).abs() < band {
                return Ok(());
            }
        }
        finite_diff_check(
            x,
            move |g, xv| {
                let ls = g.log_softmax(xv);
                let logp = g.select_cols(ls, &picks);
                let oldv = g.input(Tensor::from_vec(old.clone(), &[4]));
                let diff = g.sub(logp, oldv);
                let ratio = g.exp(diff);
                let advv = g.input(Tensor::from_vec(adv.clone(), &[4]));
                let s1 = g.mul(ratio, advv);
                let clipped = g.clamp(ratio, clip_lo, clip_hi);
                let s2 = g.mul(clipped, advv);
                let obj = g.min_elem(s1, s2);
                let m = g.mean(obj);
                g.scale(m, -1.0)
            },
            0.08,
        )?;
    }

    #[test]
    fn exp_sub_mul_grads(a in arb_matrix(2, 3), b in arb_matrix(2, 3)) {
        finite_diff_check(
            a,
            move |g, av| {
                let bv = g.input(b.clone());
                let d = g.sub(av, bv);
                let e = g.exp(d);
                let p = g.mul(e, bv);
                g.mean(p)
            },
            0.05,
        )?;
    }

    #[test]
    fn log_softmax_is_shift_invariant(x in arb_matrix(2, 4), shift in -5.0f32..5.0) {
        let mut g = Graph::new();
        let a = g.input(x.clone());
        let la = g.log_softmax(a);
        let shifted = g.add_scalar(a, shift);
        let lb = g.log_softmax(shifted);
        for (p, q) in g.value(la).data().iter().zip(g.value(lb).data()) {
            prop_assert!((p - q).abs() < 1e-4, "{} vs {}", p, q);
        }
    }

    #[test]
    fn matmul_distributes_over_add(a in arb_matrix(2, 3), b in arb_matrix(2, 3), w in arb_matrix(3, 2)) {
        // (A + B) W == A W + B W on the tape's forward values.
        let mut g = Graph::new();
        let av = g.input(a);
        let bv = g.input(b);
        let wv = g.input(w);
        let sum_first = {
            let s = g.add(av, bv);
            g.matmul(s, wv)
        };
        let mul_first = {
            let x = g.matmul(av, wv);
            let y = g.matmul(bv, wv);
            g.add(x, y)
        };
        for (p, q) in g.value(sum_first).data().iter().zip(g.value(mul_first).data()) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }
}
