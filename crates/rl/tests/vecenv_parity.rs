//! Batched ≡ sequential rollout parity at the substrate level: a
//! `VecEnv(n)` rollout must produce **bit-identical** trajectories
//! (observations, masks, actions, rewards/returns, advantages, sampled
//! log-probs) to n sequential single-env rollouts — a `VecEnv` of size 1
//! being exactly the old per-env stepping. CI runs this suite on both
//! the SIMD and the `RLSCHED_FORCE_SCALAR=1` dispatch arms.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlsched_nn::{Activation, Graph, Mlp, Network, ParamBinds, Tensor, Var};
use rlsched_rl::{
    collect_episodes, Batch, Env, PolicyModel, Ppo, PpoConfig, RolloutBuffer, StepOutcome,
    ValueModel, VecEnv,
};

/// A small bandit-style environment (mirrors the crate's internal test
/// env): fixed episode length, reward = chosen arm / n at the end, with
/// an optionally masked arm and a seed-dependent observation so
/// different episodes genuinely see different states.
struct BanditEnv {
    n_actions: usize,
    episode_len: usize,
    t: usize,
    seed_obs: f32,
    masked: Vec<usize>,
    acc: f64,
}

impl BanditEnv {
    fn new(n_actions: usize, episode_len: usize, masked: Vec<usize>) -> Self {
        BanditEnv {
            n_actions,
            episode_len,
            t: 0,
            seed_obs: 0.0,
            masked,
            acc: 0.0,
        }
    }

    // Append contract: one row appended per reset/non-terminal step.
    fn write_obs(&self, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
        obs.push(self.t as f32 / self.episode_len as f32);
        obs.push(self.seed_obs);
        mask.extend((0..self.n_actions).map(|i| {
            if self.masked.contains(&i) {
                -1.0e9
            } else {
                0.0
            }
        }));
    }
}

impl Env for BanditEnv {
    fn obs_dim(&self) -> usize {
        2
    }
    fn n_actions(&self) -> usize {
        self.n_actions
    }
    fn reset(&mut self, seed: u64, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
        self.t = 0;
        self.acc = 0.0;
        self.seed_obs = (seed % 17) as f32 / 17.0;
        self.write_obs(obs, mask);
    }
    fn step(&mut self, action: usize, obs: &mut Vec<f32>, mask: &mut Vec<f32>) -> StepOutcome {
        assert!(!self.masked.contains(&action), "masked action selected");
        self.t += 1;
        self.acc += action as f64 / self.n_actions as f64;
        let done = self.t >= self.episode_len;
        if !done {
            self.write_obs(obs, mask);
        }
        StepOutcome {
            reward: if done { self.acc } else { 0.0 },
            done,
            episode_metric: if done { Some(self.acc) } else { None },
        }
    }
}

struct P(Mlp);
impl PolicyModel for P {
    fn log_probs(&self, g: &mut Graph, obs: Var, mask: Var, binds: &mut ParamBinds) -> Var {
        let logits = self.0.forward(g, obs, binds);
        let masked = g.add(logits, mask);
        g.log_softmax(masked)
    }
    fn params(&self) -> Vec<&Tensor> {
        self.0.params()
    }
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.0.params_mut()
    }
}

struct C(Mlp);
impl ValueModel for C {
    fn values(&self, g: &mut Graph, obs: Var, binds: &mut ParamBinds) -> Var {
        self.0.forward(g, obs, binds)
    }
    fn params(&self) -> Vec<&Tensor> {
        self.0.params()
    }
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.0.params_mut()
    }
}

fn make_ppo(n_actions: usize) -> Ppo<P, C> {
    let mut rng = StdRng::seed_from_u64(11);
    Ppo::new(
        P(Mlp::new(
            &[2, 16, n_actions],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        )),
        C(Mlp::new(
            &[2, 16, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        )),
        PpoConfig::default(),
    )
}

fn assert_batches_identical(a: &Batch, b: &Batch, what: &str) {
    assert_eq!(a.obs.data(), b.obs.data(), "{what}: observations");
    assert_eq!(a.masks.data(), b.masks.data(), "{what}: masks");
    assert_eq!(a.actions, b.actions, "{what}: actions");
    assert_eq!(a.advantages, b.advantages, "{what}: advantages");
    assert_eq!(a.returns, b.returns, "{what}: returns");
    assert_eq!(a.logp_old, b.logp_old, "{what}: sampled log-probs");
}

/// The headline parity property: one batched rollout vs n sequential
/// single-env rollouts, merged into one batch in the same episode order
/// (so advantage normalization sees identical inputs).
#[test]
fn batched_rollout_is_bit_identical_to_sequential() {
    let n = 6;
    let ppo = make_ppo(4);
    let seeds: Vec<u64> = (100..100 + n as u64).collect();

    // Batched: one VecEnv over n envs, all stepped in lockstep.
    let mut venv = VecEnv::new(
        (0..n)
            .map(|_| BanditEnv::new(4, 7, vec![1]))
            .collect::<Vec<_>>(),
    );
    let (batched_bufs, batched_stats) = collect_episodes(&ppo, &mut venv, &seeds);

    // Sequential: n separate single-env rollouts (VecEnv of size 1 — the
    // old per-env stepping), one per seed.
    let mut seq_bufs = Vec::new();
    let mut seq_metrics = Vec::new();
    for &seed in &seeds {
        let mut single = VecEnv::new(vec![BanditEnv::new(4, 7, vec![1])]);
        let (mut bufs, stats) = collect_episodes(&ppo, &mut single, &[seed]);
        seq_bufs.append(&mut bufs);
        seq_metrics.extend(stats.metrics);
    }

    assert_eq!(batched_stats.metrics, seq_metrics, "episode metrics");
    let batched = RolloutBuffer::into_batch(batched_bufs);
    let sequential = RolloutBuffer::into_batch(seq_bufs);
    assert_batches_identical(&batched, &sequential, "VecEnv(6) vs 6 x VecEnv(1)");
}

/// Auto-reset must not change anything: a narrow VecEnv pipelining many
/// episodes through few slots produces the same bits as one-slot-per-
/// episode collection.
#[test]
fn autoreset_pipelining_is_bit_identical() {
    let ppo = make_ppo(3);
    let seeds: Vec<u64> = (500..509).collect();
    let run = |slots: usize| {
        let mut venv = VecEnv::new(
            (0..slots)
                .map(|_| BanditEnv::new(3, 5, vec![]))
                .collect::<Vec<_>>(),
        );
        let (bufs, stats) = collect_episodes(&ppo, &mut venv, &seeds);
        (RolloutBuffer::into_batch(bufs), stats)
    };
    let (wide, ws) = run(9);
    let (narrow, ns) = run(2);
    let (single, ss) = run(1);
    assert_batches_identical(&wide, &narrow, "9 slots vs 2 slots");
    assert_batches_identical(&wide, &single, "9 slots vs 1 slot");
    assert_eq!(ws.metrics, ns.metrics);
    assert_eq!(ws.metrics, ss.metrics);
    assert_eq!(ws.steps, ss.steps);
}
