//! A minimal blocking client, plus [`RemotePolicy`]: a
//! [`rlsched_sim::Policy`] whose every decision goes over the wire —
//! plug it into `run_episode` and the simulator schedules through the
//! serving tier exactly as it would through `Agent::as_policy` (the
//! parity suite pins that the decisions are bit-identical).

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use rlsched_sim::{Policy, QueueView};
use rlscheduler::QueueSnapshot;

use crate::protocol::{read_frame, write_frame, Request, Response, ServeStats};

/// Outcome of one scoring round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreOutcome {
    /// The chosen queue position.
    Action(usize),
    /// The server shed the request (backpressure); fall back locally.
    Shed,
}

/// A synchronous, single-in-flight client over one TCP connection.
///
/// Request ids increment from `id_base`, so a client's requests route
/// deterministically (and distinct `id_base`s spread clients across
/// shards).
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Connect to a serving tier.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        })
    }

    /// Start the request-id stream at `base` (shard-routing key).
    pub fn with_id_base(mut self, base: u64) -> Self {
        self.next_id = base;
        self
    }

    fn round_trip(&mut self, req: Request) -> std::io::Result<Response> {
        let want = req.id();
        write_frame(&mut self.writer, &req)?;
        loop {
            let resp: Response = read_frame(&mut self.reader)?.ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
            })?;
            // Single in-flight per client: the next frame is ours (id 0
            // frames are parse-error reports for garbage we never sent).
            if resp.id() == want {
                return Ok(resp);
            }
        }
    }

    fn expect_score(resp: Response) -> std::io::Result<ScoreOutcome> {
        match resp {
            Response::Action { action, .. } => Ok(ScoreOutcome::Action(action as usize)),
            Response::Shed { .. } => Ok(ScoreOutcome::Shed),
            Response::Error { message, .. } => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                message,
            )),
            Response::Stats { .. } => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stats response to a score request",
            )),
        }
    }

    /// Score a queue snapshot (the server runs the encoder).
    pub fn score_snapshot(&mut self, snapshot: &QueueSnapshot) -> std::io::Result<ScoreOutcome> {
        let id = self.next_id;
        self.next_id += 1;
        let resp = self.round_trip(Request::Score {
            id,
            snapshot: snapshot.clone(),
        })?;
        Self::expect_score(resp)
    }

    /// Score a pre-encoded observation row.
    pub fn score_raw(
        &mut self,
        obs: &[f32],
        mask: &[f32],
        queue_len: usize,
    ) -> std::io::Result<ScoreOutcome> {
        let id = self.next_id;
        self.next_id += 1;
        let resp = self.round_trip(Request::ScoreRaw {
            id,
            obs: obs.to_vec(),
            mask: mask.to_vec(),
            queue_len: queue_len as u64,
        })?;
        Self::expect_score(resp)
    }

    /// Fetch the server's aggregate statistics.
    pub fn stats(&mut self) -> std::io::Result<ServeStats> {
        let id = self.next_id;
        self.next_id += 1;
        match self.round_trip(Request::Stats { id })? {
            Response::Stats { stats, .. } => Ok(stats),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected response: {other:?}"),
            )),
        }
    }
}

/// A simulator policy that asks the serving tier for every decision.
///
/// When the server sheds a request the policy falls back to FCFS (head
/// of queue) and counts the event — what a production dispatcher does
/// when its decision service is saturated. Transport errors panic: a
/// scheduling loop cannot silently skip decisions.
pub struct RemotePolicy {
    client: ServeClient,
    /// Snapshot truncation window (the encoder's `max_obsv`).
    window: usize,
    name: String,
    sheds: u64,
}

impl RemotePolicy {
    /// Wrap a connected client. `window` must equal the serving agent's
    /// observation window.
    pub fn new(client: ServeClient, window: usize) -> Self {
        RemotePolicy {
            client,
            window,
            name: "RL-remote".to_string(),
            sheds: 0,
        }
    }

    /// Decisions answered by FCFS fallback because the server shed.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Recover the client (e.g. to query stats after an episode).
    pub fn into_client(self) -> ServeClient {
        self.client
    }
}

impl Policy for RemotePolicy {
    fn select(&mut self, view: &QueueView<'_>) -> usize {
        let snap = QueueSnapshot::from_view(view, self.window);
        match self
            .client
            .score_snapshot(&snap)
            .expect("serving tier unreachable mid-episode")
        {
            ScoreOutcome::Action(a) => a.min(view.waiting.len().saturating_sub(1)),
            ScoreOutcome::Shed => {
                self.sheds += 1;
                0 // FCFS: schedule the head of the queue
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}
