//! Cross-crate integration: workload generation → SWF round trip →
//! simulation → heuristic scheduling, over all six named workloads.

use rlsched_repro::sched::{HeuristicKind, PriorityScheduler, RandomPolicy};
use rlsched_repro::sim::{run_episode, MetricKind, SimConfig};
use rlsched_repro::swf::{parse_str, write_string, TraceStats};
use rlsched_repro::workload::NamedWorkload;

#[test]
fn every_workload_round_trips_through_swf() {
    for w in NamedWorkload::all() {
        let t = w.generate(300, 5);
        let parsed = parse_str(&write_string(&t)).expect("own SWF parses");
        assert_eq!(parsed.jobs(), t.jobs(), "{}", w.name());
        assert_eq!(parsed.max_procs(), t.max_procs());
    }
}

#[test]
fn every_workload_schedules_under_every_heuristic() {
    for w in NamedWorkload::all() {
        let t = w.generate(250, 6);
        for kind in HeuristicKind::table3() {
            for sim in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
                let mut sched = PriorityScheduler::new(kind);
                let m = run_episode(&t, sim, &mut sched)
                    .unwrap_or_else(|e| panic!("{} / {}: {e}", w.name(), kind.name()));
                assert_eq!(m.outcomes().len(), t.sanitized().len());
                for o in m.outcomes() {
                    assert!(o.start >= o.submit, "{}: job started early", w.name());
                    assert!(o.end > o.start);
                }
                assert!(m.avg_bounded_slowdown() >= 1.0);
                let u = m.utilization();
                assert!((0.0..=1.0 + 1e-9).contains(&u), "{}: util {u}", w.name());
            }
        }
    }
}

#[test]
fn generated_moments_match_table2_targets() {
    for w in NamedWorkload::all() {
        let t = w.generate(2000, 7);
        let s = TraceStats::from_trace(&t);
        let tg = w.targets();
        assert!(
            (s.mean_interarrival - tg.it).abs() / tg.it < 1e-6,
            "{} it",
            w.name()
        );
        assert!(
            (s.mean_run_time - tg.rt).abs() / tg.rt < 1e-6,
            "{} rt",
            w.name()
        );
        assert_eq!(s.max_procs, tg.size, "{} size", w.name());
    }
}

#[test]
fn backfilling_helps_fcfs_on_congested_traces() {
    // EASY backfilling exists to fill reservation holes; on a congested
    // small machine it must not hurt FCFS's bounded slowdown materially,
    // and across several seeds it should win on average.
    let mut wins = 0;
    let mut total_no = 0.0;
    let mut total_bf = 0.0;
    for seed in 0..5 {
        let t = NamedWorkload::SdscSp2.generate(400, 100 + seed);
        let mut fcfs = PriorityScheduler::new(HeuristicKind::Fcfs);
        let no = run_episode(&t, SimConfig::no_backfill(), &mut fcfs).unwrap();
        let bf = run_episode(&t, SimConfig::with_backfill(), &mut fcfs).unwrap();
        let (n, b) = (no.avg_bounded_slowdown(), bf.avg_bounded_slowdown());
        total_no += n;
        total_bf += b;
        if b <= n {
            wins += 1;
        }
    }
    assert!(wins >= 3, "backfilling won only {wins}/5 runs");
    assert!(
        total_bf < total_no,
        "backfilling should reduce mean bsld: {total_bf} vs {total_no}"
    );
}

#[test]
fn informed_heuristics_beat_random_on_average() {
    let t = NamedWorkload::Lublin1.generate(600, 8);
    let windows: Vec<_> = (0..4).map(|i| t.window(i * 120, 150).unwrap()).collect();
    let mean_of = |policy: &mut dyn rlsched_repro::sim::Policy| -> f64 {
        windows
            .iter()
            .map(|w| {
                run_episode(w, SimConfig::default(), policy)
                    .unwrap()
                    .metric(MetricKind::BoundedSlowdown)
            })
            .sum::<f64>()
            / windows.len() as f64
    };
    let mut sjf = PriorityScheduler::new(HeuristicKind::Sjf);
    let mut rnd = RandomPolicy::new(3);
    let sjf_score = mean_of(&mut sjf);
    let rnd_score = mean_of(&mut rnd);
    assert!(
        sjf_score < rnd_score,
        "SJF ({sjf_score:.2}) should beat Random ({rnd_score:.2}) on bsld"
    );
}
