//! The batch-job record: the 18 fields of the Standard Workload Format,
//! with the semantics the scheduler and simulator rely on.
//!
//! Two fields deserve special care because the whole paper hinges on the
//! distinction:
//!
//! * [`Job::run_time`] — the *actual* runtime, known only to the simulator
//!   (SchedGym replays it when a job finishes).
//! * [`Job::requested_time`] — the user's runtime estimate / upper bound.
//!   This is the only runtime information a scheduler may look at; SJF, F1
//!   and the RL observation encoder all consume `requested_time`.

use serde::{Deserialize, Serialize};

/// Completion status of a job as recorded in an SWF trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Job failed.
    Failed,
    /// Job completed normally.
    Completed,
    /// Partial execution, will be continued (status 2/3 in SWF).
    Partial,
    /// Job was cancelled.
    Cancelled,
    /// Status not recorded (-1 in SWF).
    Unknown,
}

impl JobStatus {
    /// Decode the SWF status field.
    pub fn from_swf(v: i64) -> Self {
        match v {
            0 => JobStatus::Failed,
            1 => JobStatus::Completed,
            2 | 3 => JobStatus::Partial,
            5 => JobStatus::Cancelled,
            _ => JobStatus::Unknown,
        }
    }

    /// Encode back to the SWF status field.
    pub fn to_swf(self) -> i64 {
        match self {
            JobStatus::Failed => 0,
            JobStatus::Completed => 1,
            JobStatus::Partial => 2,
            JobStatus::Cancelled => 5,
            JobStatus::Unknown => -1,
        }
    }
}

/// A single batch job (one SWF record).
///
/// Times are in seconds relative to the trace start; `-1` ("unknown") values
/// from SWF are normalized by [`Job::sanitized`] before the simulator uses
/// them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// SWF field 1: job number (1-based in archives; we keep it verbatim).
    pub id: u32,
    /// SWF field 2: submit time in seconds since trace start.
    pub submit_time: f64,
    /// SWF field 3: wait time recorded in the original trace (informational;
    /// the simulator recomputes waits from its own schedule).
    pub trace_wait_time: f64,
    /// SWF field 4: actual runtime in seconds. Simulator-only knowledge.
    pub run_time: f64,
    /// SWF field 5: number of allocated processors in the original run.
    pub used_procs: i64,
    /// SWF field 6: average CPU time used per processor.
    pub avg_cpu_time: f64,
    /// SWF field 7: used memory per processor (KB).
    pub used_memory: f64,
    /// SWF field 8: requested number of processors.
    pub requested_procs: i64,
    /// SWF field 9: requested (estimated upper bound) runtime in seconds.
    pub requested_time: f64,
    /// SWF field 10: requested memory per processor (KB).
    pub requested_memory: f64,
    /// SWF field 11: completion status.
    pub status: JobStatus,
    /// SWF field 12: user id.
    pub user_id: i64,
    /// SWF field 13: group id.
    pub group_id: i64,
    /// SWF field 14: executable (application) number.
    pub executable_id: i64,
    /// SWF field 15: queue number.
    pub queue_id: i64,
    /// SWF field 16: partition number.
    pub partition_id: i64,
    /// SWF field 17: preceding job number (-1 if none).
    pub preceding_job: i64,
    /// SWF field 18: think time from preceding job.
    pub think_time: f64,
}

impl Job {
    /// A minimal job for tests and synthetic generation: everything else is
    /// "unknown" per SWF conventions.
    pub fn new(id: u32, submit_time: f64, run_time: f64, procs: u32, requested_time: f64) -> Self {
        Job {
            id,
            submit_time,
            trace_wait_time: -1.0,
            run_time,
            used_procs: procs as i64,
            avg_cpu_time: -1.0,
            used_memory: -1.0,
            requested_procs: procs as i64,
            requested_time,
            requested_memory: -1.0,
            status: JobStatus::Completed,
            user_id: -1,
            group_id: -1,
            executable_id: -1,
            queue_id: -1,
            partition_id: -1,
            preceding_job: -1,
            think_time: -1.0,
        }
    }

    /// Set the user id (builder style; used by generators with user models).
    pub fn with_user(mut self, user: u32) -> Self {
        self.user_id = user as i64;
        self
    }

    /// The processor count the *scheduler* must provision: requested procs,
    /// falling back to allocated procs when the request is unrecorded.
    /// Always at least 1.
    pub fn procs(&self) -> u32 {
        let p = if self.requested_procs > 0 {
            self.requested_procs
        } else {
            self.used_procs
        };
        p.max(1) as u32
    }

    /// The runtime bound the *scheduler* may use: the user estimate, falling
    /// back to the actual runtime when no estimate was recorded (standard
    /// practice when replaying archive traces). Always at least 1 second so
    /// that priority functions dividing by it are well defined.
    pub fn time_bound(&self) -> f64 {
        let t = if self.requested_time > 0.0 {
            self.requested_time
        } else {
            self.run_time
        };
        t.max(1.0)
    }

    /// Actual runtime clamped to at least one second (SWF records zero-length
    /// jobs; a zero runtime breaks slowdown metrics and event ordering).
    pub fn actual_runtime(&self) -> f64 {
        self.run_time.max(1.0)
    }

    /// Normalize "unknown" (-1) markers into usable values and clamp
    /// non-positive runtimes, returning a record safe for simulation.
    pub fn sanitized(&self) -> Job {
        let mut j = self.clone();
        j.requested_procs = self.procs() as i64;
        if j.used_procs <= 0 {
            j.used_procs = j.requested_procs;
        }
        j.requested_time = self.time_bound();
        j.run_time = self.actual_runtime();
        if j.submit_time < 0.0 {
            j.submit_time = 0.0;
        }
        j
    }

    /// True when the record can be scheduled at all (positive runtime and
    /// processor request after sanitization).
    pub fn is_schedulable(&self) -> bool {
        self.run_time >= 0.0 && (self.requested_procs > 0 || self.used_procs > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trip() {
        for s in [
            JobStatus::Failed,
            JobStatus::Completed,
            JobStatus::Partial,
            JobStatus::Cancelled,
            JobStatus::Unknown,
        ] {
            assert_eq!(JobStatus::from_swf(s.to_swf()), s);
        }
    }

    #[test]
    fn status_decodes_3_as_partial() {
        assert_eq!(JobStatus::from_swf(3), JobStatus::Partial);
    }

    #[test]
    fn procs_prefers_requested() {
        let mut j = Job::new(1, 0.0, 10.0, 4, 20.0);
        j.used_procs = 8;
        assert_eq!(j.procs(), 4);
    }

    #[test]
    fn procs_falls_back_to_used() {
        let mut j = Job::new(1, 0.0, 10.0, 4, 20.0);
        j.requested_procs = -1;
        j.used_procs = 8;
        assert_eq!(j.procs(), 8);
    }

    #[test]
    fn procs_is_at_least_one() {
        let mut j = Job::new(1, 0.0, 10.0, 1, 20.0);
        j.requested_procs = -1;
        j.used_procs = -1;
        assert_eq!(j.procs(), 1);
    }

    #[test]
    fn time_bound_prefers_estimate_and_clamps() {
        let j = Job::new(1, 0.0, 10.0, 1, 20.0);
        assert_eq!(j.time_bound(), 20.0);
        let mut j = Job::new(1, 0.0, 10.0, 1, -1.0);
        assert_eq!(j.time_bound(), 10.0);
        j.run_time = 0.0;
        assert_eq!(j.time_bound(), 1.0);
    }

    #[test]
    fn sanitized_fixes_unknowns() {
        let mut j = Job::new(7, -5.0, 0.0, 2, -1.0);
        j.used_procs = -1;
        let s = j.sanitized();
        assert_eq!(s.submit_time, 0.0);
        assert_eq!(s.run_time, 1.0);
        assert_eq!(s.requested_procs, 2);
        assert_eq!(s.used_procs, 2);
        assert_eq!(s.requested_time, 1.0);
    }

    #[test]
    fn with_user_sets_user() {
        let j = Job::new(1, 0.0, 1.0, 1, 1.0).with_user(42);
        assert_eq!(j.user_id, 42);
    }
}
