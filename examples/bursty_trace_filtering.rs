//! Domain scenario: taming a bursty production trace with trajectory
//! filtering (§IV-C of the paper).
//!
//! The PIK-IPLEX-2009-alike workload is calm most of the time but has
//! arrival bursts that overload the machine by an order of magnitude.
//! Randomly sampled training sequences are therefore either "easy"
//! (nothing to learn) or "hard" (destroy what was learned). This example
//! fits the SJF-metric distribution, shows the paper's Fig 7 statistics,
//! and trains with the two-phase filter schedule.
//!
//! ```text
//! cargo run --release --example bursty_trace_filtering
//! ```

use rlsched_repro::core::prelude::*;
use rlsched_repro::workload::NamedWorkload;

fn main() {
    let trace = NamedWorkload::PikIplex.generate(2500, 3);

    // 1. Fit the filter: schedule sampled 128-job sequences with SJF and
    //    look at the metric distribution (Fig 7).
    let filter = TrajectoryFilter::fit(
        &trace,
        128,
        120,
        MetricKind::BoundedSlowdown,
        SimConfig::default(),
        17,
    );
    let (lo, hi) = filter.range();
    println!("SJF bsld over 120 sampled sequences:");
    println!(
        "  median       {:>10.2}   <- 'easy' sequences below this teach nothing",
        filter.median()
    );
    println!(
        "  mean         {:>10.2}   <- dragged up by rare catastrophic sequences",
        filter.mean()
    );
    println!("  range R      ({lo:.2}, {hi:.2})");
    println!("  acceptance   {:>9.0}%", filter.acceptance_rate() * 100.0);

    // 2. Train with the two-phase schedule: phase 1 samples only sequences
    //    whose SJF metric falls inside R; phase 2 opens up.
    let mut cfg = AgentConfig::paper_default();
    cfg.obs.max_obsv = 32;
    cfg.ppo.train_pi_iters = 12;
    cfg.ppo.train_v_iters = 12;
    cfg.ppo.minibatch = Some(512);
    let mut agent = Agent::new(cfg);
    let train_cfg = TrainConfig {
        epochs: 9,
        trajectories_per_epoch: 10,
        seq_len: 128,
        sim: SimConfig::default(),
        filter: FilterMode::two_phase(6, 120),
        seed: 23,
        n_envs: 8,
        n_threads: 1,
    };
    println!("\ntraining with two-phase trajectory filtering:");
    let curve = train(&mut agent, &trace, &train_cfg);
    for e in &curve {
        println!(
            "  epoch {:>2} [{}] mean bsld {:>12.2}",
            e.epoch,
            if e.filtered { "filtered" } else { "  open  " },
            e.mean_metric
        );
    }

    // 3. The filtered epochs see controlled variance; the open phase then
    //    exposes the full distribution to an already-converged agent.
    let filtered_max = curve
        .iter()
        .filter(|e| e.filtered)
        .map(|e| e.mean_metric)
        .fold(0.0, f64::max);
    println!(
        "\nmax per-epoch mean bsld during the filtered phase: {filtered_max:.2} \
         (the filter caps sequence difficulty at {hi:.2})"
    );
}
