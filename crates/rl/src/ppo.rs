//! Proximal Policy Optimization with the clipped surrogate objective —
//! the algorithm of Schulman et al. [30] as packaged by OpenAI Spinning Up,
//! which the paper builds RLScheduler on (§V-A).
//!
//! One [`Ppo`] owns an actor (any [`PolicyModel`]) and a critic (any
//! [`ValueModel`]) with separate Adam optimizers. Per §V-A, each epoch runs
//! up to 80 policy-gradient iterations (early-stopped on approximate KL)
//! and 80 value iterations at learning rate 1e-3.

use std::time::{Duration, Instant};

use rand::Rng;

use rlsched_nn::{clip_global_norm, fused, Adam, Graph, Mlp, ParamBinds, Scratch, Tensor, Var};

use crate::buffer::Batch;
use crate::categorical::MaskedCategorical;

/// True when `RLSCHED_FORCE_TAPE` pins [`Ppo::update`] to the autodiff
/// tape even for fused-eligible architectures (read once, cached — CI
/// runs the whole suite once with it set so the fallback stays green).
fn force_tape() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var_os("RLSCHED_FORCE_TAPE").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

/// The actor: maps observations + additive masks to per-action
/// log-probabilities.
pub trait PolicyModel {
    /// Build the forward pass on the tape. `obs` is `[batch, obs_dim]`,
    /// `mask` is `[batch, n_actions]` additive (0 valid / ~-1e9 invalid);
    /// the result must be `[batch, n_actions]` log-probabilities.
    fn log_probs(&self, g: &mut Graph, obs: Var, mask: Var, binds: &mut ParamBinds) -> Var;

    /// Inference fast path: write the masked log-prob row for one
    /// observation into `out`, with no tape bookkeeping.
    ///
    /// The default falls back to building a throwaway tape, so existing
    /// policies keep working; models that matter override it with an
    /// allocation-free forward over `scratch` (see `rlscheduler`'s
    /// `PolicyNet`). Implementations must produce the same numbers as
    /// [`PolicyModel::log_probs`] on a 1-row batch.
    fn log_probs_fast(&self, obs: &[f32], mask: &[f32], scratch: &mut Scratch, out: &mut Vec<f32>) {
        let _ = scratch;
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let o = g.input_from(obs, &[1, obs.len()]);
        let m = g.input_from(mask, &[1, mask.len()]);
        let lp = self.log_probs(&mut g, o, m, &mut binds);
        out.clear();
        out.extend_from_slice(g.value(lp).data());
    }

    /// Batched inference fast path: write `rows` masked log-prob rows
    /// (`[rows, n_actions]` row-major) into `out`, with no tape
    /// bookkeeping. `obs` is `[rows, obs_dim]` row-major and `masks`
    /// `[rows, n_actions]`.
    ///
    /// The default loops over rows through [`PolicyModel::log_probs_fast`]
    /// (correct for any policy, but pays the weight stream per row);
    /// models that serve concurrent requests override it with one batched
    /// forward — the dense kernels already take a `rows` parameter — so
    /// weight traffic is amortized across the batch. Row `i` of the
    /// result must match `log_probs_fast` on row `i` alone up to float
    /// reassociation (SIMD row-blocking can differ between batched and
    /// single rows), so argmax decisions agree except on floating-point
    /// near-ties.
    fn log_probs_fast_batch(
        &self,
        obs: &[f32],
        masks: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        assert!(rows > 0, "batched forward needs at least one row");
        assert_eq!(obs.len() % rows, 0, "obs volume must divide into rows");
        assert_eq!(masks.len() % rows, 0, "mask volume must divide into rows");
        let obs_dim = obs.len() / rows;
        let n_actions = masks.len() / rows;
        out.clear();
        let mut row = Vec::new();
        for i in 0..rows {
            self.log_probs_fast(
                &obs[i * obs_dim..(i + 1) * obs_dim],
                &masks[i * n_actions..(i + 1) * n_actions],
                scratch,
                &mut row,
            );
            out.extend_from_slice(&row);
        }
    }

    /// Parameter tensors in bind order.
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable parameter access in the same order.
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|t| t.len()).sum()
    }

    /// Describe this policy for the tape-free fused update
    /// ([`Ppo::update`]'s fast path) when its architecture is an MLP
    /// chain the analytic backward supports. The default (`None`) keeps
    /// the policy on the autodiff tape; implementations returning
    /// `Some` must also override [`PolicyModel::fused_mut`], and the
    /// described network must compute exactly what
    /// [`PolicyModel::log_probs`] builds on the tape.
    fn fused(&self) -> Option<fused::FusedPolicy<'_>> {
        None
    }

    /// Mutable access to the trainable MLP behind
    /// [`PolicyModel::fused`] (the optimizer walks its layers in place,
    /// keeping the fused update allocation-free). Must be `Some` exactly
    /// when `fused` is.
    fn fused_mut(&mut self) -> Option<&mut Mlp> {
        None
    }
}

/// The critic: maps observations to scalar state values.
pub trait ValueModel {
    /// Build the forward pass; result must be `[batch, 1]`.
    fn values(&self, g: &mut Graph, obs: Var, binds: &mut ParamBinds) -> Var;

    /// Inference fast path: the state value of one observation with no
    /// tape bookkeeping. Default falls back to a throwaway tape; override
    /// with an allocation-free forward (must match [`ValueModel::values`]
    /// on a 1-row batch).
    fn value_fast(&self, obs: &[f32], scratch: &mut Scratch) -> f64 {
        let _ = scratch;
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let o = g.input_from(obs, &[1, obs.len()]);
        let v = self.values(&mut g, o, &mut binds);
        g.value(v).data()[0] as f64
    }

    /// Batched inference fast path: write `rows` state values into `out`
    /// for stacked observations (`[rows, obs_dim]` row-major), with no
    /// tape bookkeeping. The default loops over rows through
    /// [`ValueModel::value_fast`]; critics on the vectorized rollout path
    /// override it with one stacked forward. Element `i` must be
    /// bit-identical to `value_fast` on row `i` alone — the lockstep
    /// sampler's batched≡sequential parity depends on it.
    fn value_fast_batch(
        &self,
        obs: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f64>,
    ) {
        assert!(rows > 0, "batched value forward needs at least one row");
        assert_eq!(obs.len() % rows, 0, "obs volume must divide into rows");
        let obs_dim = obs.len() / rows;
        out.clear();
        for i in 0..rows {
            out.push(self.value_fast(&obs[i * obs_dim..(i + 1) * obs_dim], scratch));
        }
    }

    /// Parameter tensors in bind order.
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable parameter access in the same order.
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// The critic's plain-MLP chain, when it has one, for the tape-free
    /// fused update (default `None` = tape). Must compute exactly what
    /// [`ValueModel::values`] builds on the tape, and pair with
    /// [`ValueModel::fused_mut`].
    fn fused(&self) -> Option<&Mlp> {
        None
    }

    /// Mutable counterpart of [`ValueModel::fused`] for the in-place
    /// optimizer walk.
    fn fused_mut(&mut self) -> Option<&mut Mlp> {
        None
    }
}

/// Per-worker reusable buffers for the inference fast path: network
/// scratch plus the log-prob row. One per rollout worker; reused across
/// every step of every episode.
#[derive(Debug, Default)]
pub struct ActorScratch {
    /// Layer scratch for the underlying networks.
    pub nn: Scratch,
    pub(crate) logp: Vec<f32>,
}

impl ActorScratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently computed log-prob row.
    pub fn logp(&self) -> &[f32] {
        &self.logp
    }
}

/// PPO hyperparameters. Defaults follow §V-A of the paper (lr 1e-3, 80
/// update iterations per epoch) and Spinning Up conventions elsewhere.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct PpoConfig {
    /// Clipping radius ε of the surrogate objective.
    pub clip_ratio: f32,
    /// Policy learning rate.
    pub pi_lr: f32,
    /// Value-function learning rate.
    pub vf_lr: f32,
    /// Max policy iterations per update.
    pub train_pi_iters: usize,
    /// Value iterations per update.
    pub train_v_iters: usize,
    /// Discount γ (1.0: episodic scheduling with terminal reward).
    pub gamma: f64,
    /// GAE λ.
    pub lam: f64,
    /// Early-stop threshold: stop policy iterations when approximate KL
    /// exceeds 1.5× this.
    pub target_kl: f64,
    /// Entropy bonus coefficient.
    pub ent_coef: f32,
    /// Optional global-norm gradient clip.
    pub max_grad_norm: Option<f32>,
    /// When set, each update iteration works on a random minibatch of this
    /// size instead of the full batch (PPO-style minibatching; keeps the
    /// 80-iteration schedule affordable on large rollouts).
    pub minibatch: Option<usize>,
    /// Seed for minibatch shuffling (updates stay reproducible).
    pub update_seed: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            clip_ratio: 0.2,
            pi_lr: 1e-3,
            vf_lr: 1e-3,
            train_pi_iters: 80,
            train_v_iters: 80,
            gamma: 1.0,
            lam: 0.97,
            target_kl: 0.01,
            ent_coef: 0.0,
            max_grad_norm: None,
            minibatch: None,
            update_seed: 0,
        }
    }
}

/// Diagnostics of one [`Ppo::update`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UpdateStats {
    /// Surrogate loss before the first policy step.
    pub pi_loss_before: f32,
    /// Surrogate loss after the last policy step.
    pub pi_loss_after: f32,
    /// Value loss before the first value step.
    pub v_loss_before: f32,
    /// Value loss after the last value step.
    pub v_loss_after: f32,
    /// Final approximate KL(old ‖ new).
    pub approx_kl: f64,
    /// Mean policy entropy over the batch (at the first iteration).
    pub entropy: f32,
    /// Policy iterations actually executed before KL early stop.
    pub pi_iters: usize,
}

/// Wall-clock attribution of one [`Ppo::update`], accumulated across its
/// policy and value iterations: minibatch gather, network forwards,
/// backward/gradient work, and the optimizer step. Filled by
/// [`Ppo::update_profiled`] on either dispatch arm (the phases map 1:1
/// between the fused and tape paths, so regressions are attributable).
#[derive(Debug, Default, Clone, Copy)]
pub struct UpdateProfile {
    /// Minibatch row gather into the reusable staging buffers.
    pub gather: Duration,
    /// Actor/critic forward passes (tape: graph build + eager eval).
    pub forward: Duration,
    /// Loss tail + backward gradient computation (tape: `backward` +
    /// gradient extraction).
    pub backward: Duration,
    /// Gradient clipping + Adam step.
    pub optimizer: Duration,
}

impl UpdateProfile {
    /// Total attributed time.
    pub fn total(&self) -> Duration {
        self.gather + self.forward + self.backward + self.optimizer
    }
}

/// The PPO agent: actor, critic, optimizers, config.
pub struct Ppo<P: PolicyModel, V: ValueModel> {
    /// The actor network.
    pub policy: P,
    /// The critic network.
    pub value: V,
    /// Hyperparameters.
    pub cfg: PpoConfig,
    pi_opt: Adam,
    vf_opt: Adam,
    update_rng: rand::rngs::StdRng,
    /// Fused-update scratch for the actor (persists across updates so
    /// the fast path allocates nothing at steady state).
    pi_fused: fused::FusedScratch,
    /// Fused-update scratch for the critic.
    vf_fused: fused::FusedScratch,
    /// Sharded-update scratch for the actor (the multi-core arm).
    pi_shard: fused::ShardedScratch,
    /// Sharded-update scratch for the critic.
    vf_shard: fused::ShardedScratch,
    /// Worker-count hint for [`Ppo::update`]: `>= 2` routes the fused
    /// update through the sharded arm. Not serialized — a runtime knob,
    /// not part of the agent's state.
    update_threads: usize,
    /// Reusable minibatch gather buffers, shared by both update arms.
    mb: MiniBuf,
}

impl<P: PolicyModel, V: ValueModel> Ppo<P, V> {
    /// Assemble an agent.
    pub fn new(policy: P, value: V, cfg: PpoConfig) -> Self {
        use rand::SeedableRng;
        let pi_opt = Adam::new(cfg.pi_lr);
        let vf_opt = Adam::new(cfg.vf_lr);
        let update_rng = rand::rngs::StdRng::seed_from_u64(cfg.update_seed);
        Ppo {
            policy,
            value,
            cfg,
            pi_opt,
            vf_opt,
            update_rng,
            pi_fused: fused::FusedScratch::new(),
            vf_fused: fused::FusedScratch::new(),
            pi_shard: fused::ShardedScratch::new(),
            vf_shard: fused::ShardedScratch::new(),
            update_threads: 0,
            mb: MiniBuf::default(),
        }
    }

    /// Route [`Ppo::update`] through the sharded multi-core fused arm
    /// when `n >= 2` (and the architecture is fused-eligible); `0` or
    /// `1` keeps the monolithic dispatch byte-for-byte unchanged. The
    /// sharded arm is deterministic at any worker count (see
    /// [`rlsched_nn::fused::ShardedScratch`] for the contract) but is a
    /// *different* deterministic arm from the monolithic one for batches
    /// over [`fused::SHARD_ROWS`] rows — toggle it per training run, not
    /// mid-stream.
    pub fn set_update_threads(&mut self, n: usize) {
        self.update_threads = n;
    }

    /// Forward the policy on a single observation via the inference fast
    /// path; returns the log-prob row (allocates — prefer
    /// [`Ppo::select_with`]/[`Ppo::greedy_with`] in loops).
    pub fn logp_row(&self, obs: &[f32], mask: &[f32]) -> Vec<f32> {
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        self.policy
            .log_probs_fast(obs, mask, &mut scratch, &mut out);
        out
    }

    /// Forward the policy through the full autodiff tape (the training
    /// graph). Kept for gradient work and as the benchmark baseline the
    /// fast path is measured against.
    pub fn logp_row_tape(&self, obs: &[f32], mask: &[f32]) -> Vec<f32> {
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let o = g.input(Tensor::from_vec(obs.to_vec(), &[1, obs.len()]));
        let m = g.input(Tensor::from_vec(mask.to_vec(), &[1, mask.len()]));
        let lp = self.policy.log_probs(&mut g, o, m, &mut binds);
        g.value(lp).data().to_vec()
    }

    /// Forward the critic on a single observation (fast path).
    pub fn value_of(&self, obs: &[f32]) -> f64 {
        self.value.value_fast(obs, &mut Scratch::new())
    }

    /// Sample an action (training path). Returns `(action, logp, value)`.
    /// Allocates per call; rollout loops should hold an [`ActorScratch`]
    /// and use [`Ppo::select_with`].
    pub fn select<R: Rng + ?Sized>(
        &self,
        obs: &[f32],
        mask: &[f32],
        rng: &mut R,
    ) -> (usize, f32, f64) {
        self.select_with(obs, mask, &mut ActorScratch::new(), rng)
    }

    /// Sample an action through caller-owned scratch: zero allocation at
    /// steady state. Returns `(action, logp, value)`.
    pub fn select_with<R: Rng + ?Sized>(
        &self,
        obs: &[f32],
        mask: &[f32],
        scratch: &mut ActorScratch,
        rng: &mut R,
    ) -> (usize, f32, f64) {
        self.policy
            .log_probs_fast(obs, mask, &mut scratch.nn, &mut scratch.logp);
        let dist = MaskedCategorical::new(&scratch.logp);
        let a = dist.sample(rng);
        let logp = dist.log_prob(a);
        let v = self.value.value_fast(obs, &mut scratch.nn);
        (a, logp, v)
    }

    /// Deterministic argmax action (testing path, §IV-B1).
    pub fn greedy(&self, obs: &[f32], mask: &[f32]) -> usize {
        self.greedy_with(obs, mask, &mut ActorScratch::new())
    }

    /// Argmax action through caller-owned scratch (zero allocation at
    /// steady state) — the scheduling-decision hot path of Table IX.
    pub fn greedy_with(&self, obs: &[f32], mask: &[f32], scratch: &mut ActorScratch) -> usize {
        self.policy
            .log_probs_fast(obs, mask, &mut scratch.nn, &mut scratch.logp);
        MaskedCategorical::new(&scratch.logp).argmax()
    }

    /// Argmax actions for a whole batch of observations through one
    /// batched forward: `obs` is `[rows, obs_dim]` row-major, `masks`
    /// `[rows, n_actions]`. Delegates to [`crate::vecenv::greedy_batch`]
    /// over the policy's [`crate::vecenv::BatchPolicy`] impl — the same
    /// scoring path the vectorized rollout sampler uses. Amortizes the
    /// policy's weight stream across concurrent decisions;
    /// allocation-free at steady state when the policy overrides
    /// [`PolicyModel::log_probs_fast_batch`] (the default falls back to a
    /// per-row loop with a temporary buffer).
    pub fn greedy_batch_with(
        &self,
        obs: &[f32],
        masks: &[f32],
        rows: usize,
        scratch: &mut ActorScratch,
        actions: &mut Vec<usize>,
    ) {
        crate::vecenv::greedy_batch(&self.policy, obs, masks, rows, scratch, actions);
    }

    /// Argmax action through the full tape (benchmark baseline).
    pub fn greedy_tape(&self, obs: &[f32], mask: &[f32]) -> usize {
        let logp = self.logp_row_tape(obs, mask);
        MaskedCategorical::new(&logp).argmax()
    }

    /// True when both networks expose fused-eligible architectures, so
    /// [`Ppo::update`] takes the tape-free fast path (unless
    /// `RLSCHED_FORCE_TAPE` pins the fallback).
    pub fn fused_supported(&self) -> bool {
        self.policy.fused().is_some() && self.value.fused().is_some()
    }

    /// One PPO update over a collected batch.
    ///
    /// Dispatches to the tape-free fused forward+backward
    /// ([`rlsched_nn::fused`]) when both networks support it — no graph
    /// nodes, no buffer-pool bookkeeping, zero heap allocation at steady
    /// state — and otherwise (or under `RLSCHED_FORCE_TAPE=1`) to the
    /// reusable-[`Graph`] tape path. The two arms are bit-identical:
    /// gradients, Adam state, diagnostics and the minibatch RNG stream
    /// all match exactly, so checkpoints are interchangeable and a
    /// training run may switch arms mid-stream without perturbing a bit
    /// (pinned by the fused-parity suites).
    pub fn update(&mut self, batch: &Batch) -> UpdateStats {
        self.update_profiled(batch, &mut UpdateProfile::default())
    }

    /// [`Ppo::update`] with wall-clock phase attribution (gather /
    /// forward / backward / optimizer) accumulated into `prof`.
    pub fn update_profiled(&mut self, batch: &Batch, prof: &mut UpdateProfile) -> UpdateStats {
        rlsched_obs::span!("ppo.update");
        if self.fused_supported() && !force_tape() {
            if self.update_threads >= 2 {
                self.update_fused_sharded_profiled(batch, prof)
                    .expect("fused_supported() checked")
            } else {
                self.update_fused_profiled(batch, prof)
                    .expect("fused_supported() checked")
            }
        } else {
            self.update_tape_profiled(batch, prof)
        }
    }

    /// The tape arm of [`Ppo::update`], pinned regardless of
    /// architecture support or `RLSCHED_FORCE_TAPE` — the parity
    /// baseline the fused arm is tested and benchmarked against.
    pub fn update_tape(&mut self, batch: &Batch) -> UpdateStats {
        self.update_tape_profiled(batch, &mut UpdateProfile::default())
    }

    /// The fused arm of [`Ppo::update`], pinned regardless of
    /// `RLSCHED_FORCE_TAPE`; `None` when either network has no fused
    /// description (e.g. the LeNet CNN baseline).
    pub fn update_fused(&mut self, batch: &Batch) -> Option<UpdateStats> {
        self.update_fused_profiled(batch, &mut UpdateProfile::default())
    }

    /// [`Ppo::update_tape`] with phase attribution.
    ///
    /// One [`Graph`] arena serves every iteration: [`Graph::reset`]
    /// recycles all tape buffers between iterations, minibatch rows are
    /// gathered into reusable buffers, and gradients are moved (not
    /// cloned) out of the tape — at steady state the loop performs no
    /// per-iteration heap allocation beyond the op metadata.
    pub fn update_tape_profiled(&mut self, batch: &Batch, prof: &mut UpdateProfile) -> UpdateStats {
        assert!(!batch.is_empty(), "cannot update on an empty batch");
        let obs_dim = batch.obs.cols();
        let n_actions = batch.masks.cols();

        let mut pi_loss_before = 0.0;
        let mut pi_loss_after = 0.0;
        let mut entropy = 0.0;
        let mut approx_kl = 0.0;
        let mut pi_iters = 0;

        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let Ppo {
            policy,
            value,
            cfg,
            pi_opt,
            vf_opt,
            update_rng,
            mb,
            ..
        } = self;

        let eps = cfg.clip_ratio;
        for it in 0..cfg.train_pi_iters {
            let t0 = Instant::now();
            let view = iteration_view(cfg, update_rng, batch, mb);
            let n = view.actions.len();
            let t1 = Instant::now();
            prof.gather += t1 - t0;
            g.reset();
            binds.clear();
            let o = g.input_from(view.obs, &[n, obs_dim]);
            let m = g.input_from(view.masks, &[n, n_actions]);
            let logp_all = policy.log_probs(&mut g, o, m, &mut binds);
            let logp = g.select_cols(logp_all, view.actions);

            // ratio = exp(logp − logp_old)
            let old = g.input_from(view.logp_old, &[n]);
            let diff = g.sub(logp, old);
            let ratio = g.exp(diff);
            let advv = g.input_from(view.advantages, &[n]);
            let surr1 = g.mul(ratio, advv);
            let clipped = g.clamp(ratio, 1.0 - eps, 1.0 + eps);
            let surr2 = g.mul(clipped, advv);
            let obj = g.min_elem(surr1, surr2);
            let mean_obj = g.mean(obj);
            let mut loss = g.scale(mean_obj, -1.0);

            if cfg.ent_coef != 0.0 {
                // entropy = −Σ p·logp per row; masked slots contribute 0.
                let p = g.exp(logp_all);
                let plogp = g.mul(p, logp_all);
                let row = g.sum_rows(plogp);
                let ent = g.mean(row); // = −entropy
                let weighted = g.scale(ent, cfg.ent_coef);
                loss = g.add(loss, weighted);
            }
            let t2 = Instant::now();
            prof.forward += t2 - t1;

            // Diagnostics before stepping.
            let kl: f64 = view
                .logp_old
                .iter()
                .zip(g.value(logp).data())
                .map(|(&o, &nw)| (o - nw) as f64)
                .sum::<f64>()
                / n as f64;
            approx_kl = kl;
            if it == 0 {
                pi_loss_before = g.value(loss).item();
                let lp = g.value(logp_all);
                entropy = mean_entropy(lp.data(), lp.cols());
            }
            if kl > 1.5 * cfg.target_kl && it > 0 {
                break;
            }
            g.backward(loss);
            pi_loss_after = g.value(loss).item();
            let mut grads = binds.take_grads(&mut g);
            let t3 = Instant::now();
            prof.backward += t3 - t2;
            if let Some(mx) = cfg.max_grad_norm {
                clip_global_norm(&mut grads, mx);
            }
            pi_opt.step(&mut policy.params_mut(), &grads);
            prof.optimizer += t3.elapsed();
            pi_iters = it + 1;
        }

        let mut v_loss_before = 0.0;
        let mut v_loss_after = 0.0;
        for it in 0..cfg.train_v_iters {
            let t0 = Instant::now();
            let view = iteration_view(cfg, update_rng, batch, mb);
            let n = view.actions.len();
            let t1 = Instant::now();
            prof.gather += t1 - t0;
            g.reset();
            binds.clear();
            let o = g.input_from(view.obs, &[n, obs_dim]);
            let v = value.values(&mut g, o, &mut binds);
            let r = g.input_from(view.returns, &[n, 1]);
            let d = g.sub(v, r);
            let sq = g.mul(d, d);
            let loss = g.mean(sq);
            let t2 = Instant::now();
            prof.forward += t2 - t1;
            if it == 0 {
                v_loss_before = g.value(loss).item();
            }
            g.backward(loss);
            v_loss_after = g.value(loss).item();
            let mut grads = binds.take_grads(&mut g);
            let t3 = Instant::now();
            prof.backward += t3 - t2;
            if let Some(mx) = cfg.max_grad_norm {
                clip_global_norm(&mut grads, mx);
            }
            vf_opt.step(&mut value.params_mut(), &grads);
            prof.optimizer += t3.elapsed();
        }

        UpdateStats {
            pi_loss_before,
            pi_loss_after,
            v_loss_before,
            v_loss_after,
            approx_kl,
            entropy,
            pi_iters,
        }
    }

    /// [`Ppo::update_fused`] with phase attribution: the tape-free fast
    /// path. Forward passes run the same SIMD kernels as the tape but
    /// stash only the per-layer activations the analytic backward needs;
    /// the backward is one fused dlogits pass plus the layer walk; the
    /// optimizer steps the network's layers in place. Zero heap
    /// allocation at steady state (pinned by `alloc_regression`).
    pub fn update_fused_profiled(
        &mut self,
        batch: &Batch,
        prof: &mut UpdateProfile,
    ) -> Option<UpdateStats> {
        if !self.fused_supported() {
            return None;
        }
        assert!(!batch.is_empty(), "cannot update on an empty batch");
        let n_actions = batch.masks.cols();

        let mut pi_loss_before = 0.0;
        let mut pi_loss_after = 0.0;
        let mut entropy = 0.0;
        let mut approx_kl = 0.0;
        let mut pi_iters = 0;

        let Ppo {
            policy,
            value,
            cfg,
            pi_opt,
            vf_opt,
            update_rng,
            pi_fused,
            vf_fused,
            mb,
            ..
        } = self;

        for it in 0..cfg.train_pi_iters {
            let t0 = Instant::now();
            let view = iteration_view(cfg, update_rng, batch, mb);
            let n = view.actions.len();
            let t1 = Instant::now();
            prof.gather += t1 - t0;
            {
                let fp = policy.fused().expect("fused_supported checked");
                fused::policy_forward(&fp, view.obs, view.masks, view.actions, n, pi_fused);
                let t2 = Instant::now();
                prof.forward += t2 - t1;

                // Diagnostics before committing to a backward pass.
                let kl: f64 = view
                    .logp_old
                    .iter()
                    .zip(pi_fused.selected_logp())
                    .map(|(&o, &nw)| (o - nw) as f64)
                    .sum::<f64>()
                    / n as f64;
                approx_kl = kl;
                if kl > 1.5 * cfg.target_kl && it > 0 {
                    break;
                }
                let loss = fused::policy_loss_and_grads(
                    &fp,
                    view.obs,
                    view.actions,
                    view.advantages,
                    view.logp_old,
                    cfg.clip_ratio,
                    cfg.ent_coef,
                    n,
                    pi_fused,
                );
                prof.backward += t2.elapsed();
                if it == 0 {
                    pi_loss_before = loss;
                    entropy = mean_entropy(pi_fused.logp_all(), n_actions);
                }
                pi_loss_after = loss;
            }
            let t3 = Instant::now();
            if let Some(mx) = cfg.max_grad_norm {
                clip_global_norm(pi_fused.grads_mut(), mx);
            }
            let mlp = policy.fused_mut().expect("fused_mut must pair with fused");
            pi_opt.step_params(
                mlp.layers.iter_mut().flat_map(|l| [&mut l.w, &mut l.b]),
                pi_fused.grads(),
            );
            prof.optimizer += t3.elapsed();
            pi_iters = it + 1;
        }

        let mut v_loss_before = 0.0;
        let mut v_loss_after = 0.0;
        for it in 0..cfg.train_v_iters {
            let t0 = Instant::now();
            let view = iteration_view(cfg, update_rng, batch, mb);
            let n = view.actions.len();
            let t1 = Instant::now();
            prof.gather += t1 - t0;
            {
                let vm = value.fused().expect("fused_supported checked");
                fused::value_forward(vm, view.obs, n, vf_fused);
                let t2 = Instant::now();
                prof.forward += t2 - t1;
                let loss = fused::value_loss_and_grads(vm, view.obs, view.returns, n, vf_fused);
                prof.backward += t2.elapsed();
                if it == 0 {
                    v_loss_before = loss;
                }
                v_loss_after = loss;
            }
            let t3 = Instant::now();
            if let Some(mx) = cfg.max_grad_norm {
                clip_global_norm(vf_fused.grads_mut(), mx);
            }
            let mlp = value.fused_mut().expect("fused_mut must pair with fused");
            vf_opt.step_params(
                mlp.layers.iter_mut().flat_map(|l| [&mut l.w, &mut l.b]),
                vf_fused.grads(),
            );
            prof.optimizer += t3.elapsed();
        }

        Some(UpdateStats {
            pi_loss_before,
            pi_loss_after,
            v_loss_before,
            v_loss_after,
            approx_kl,
            entropy,
            pi_iters,
        })
    }

    /// The sharded multi-core arm of the fused update, pinned regardless
    /// of the [`Ppo::set_update_threads`] knob; `None` when either
    /// network has no fused description.
    pub fn update_fused_sharded(&mut self, batch: &Batch) -> Option<UpdateStats> {
        self.update_fused_sharded_profiled(batch, &mut UpdateProfile::default())
    }

    /// [`Ppo::update_fused_sharded`] with phase attribution: the fused
    /// update with forward/backward split over fixed
    /// [`fused::SHARD_ROWS`]-row chunks running on the rayon shim's
    /// workers. Bit-identical at any worker count (chunk boundaries and
    /// the gradient-merge order depend only on the minibatch size — see
    /// [`rlsched_nn::fused::ShardedScratch`]); per-row forward
    /// diagnostics (KL, entropy) are bit-equal to the monolithic arm,
    /// and single-chunk batches reproduce it exactly. Gather, clipping,
    /// Adam steps and the minibatch RNG stream are shared with the other
    /// arms unchanged.
    pub fn update_fused_sharded_profiled(
        &mut self,
        batch: &Batch,
        prof: &mut UpdateProfile,
    ) -> Option<UpdateStats> {
        if !self.fused_supported() {
            return None;
        }
        assert!(!batch.is_empty(), "cannot update on an empty batch");
        let n_actions = batch.masks.cols();

        let mut pi_loss_before = 0.0;
        let mut pi_loss_after = 0.0;
        let mut entropy = 0.0;
        let mut approx_kl = 0.0;
        let mut pi_iters = 0;

        let Ppo {
            policy,
            value,
            cfg,
            pi_opt,
            vf_opt,
            update_rng,
            pi_shard,
            vf_shard,
            mb,
            ..
        } = self;

        for it in 0..cfg.train_pi_iters {
            let t0 = Instant::now();
            let view = iteration_view(cfg, update_rng, batch, mb);
            let n = view.actions.len();
            let t1 = Instant::now();
            prof.gather += t1 - t0;
            {
                let fp = policy.fused().expect("fused_supported checked");
                fused::policy_forward_sharded(&fp, view.obs, view.masks, view.actions, n, pi_shard);
                let t2 = Instant::now();
                prof.forward += t2 - t1;

                // Diagnostics before committing to a backward pass — the
                // stitched per-row outputs are bit-equal to the
                // monolithic forward, so this fold matches it exactly.
                let kl: f64 = view
                    .logp_old
                    .iter()
                    .zip(pi_shard.selected_logp())
                    .map(|(&o, &nw)| (o - nw) as f64)
                    .sum::<f64>()
                    / n as f64;
                approx_kl = kl;
                if kl > 1.5 * cfg.target_kl && it > 0 {
                    break;
                }
                let loss = fused::policy_loss_and_grads_sharded(
                    &fp,
                    view.obs,
                    view.actions,
                    view.advantages,
                    view.logp_old,
                    cfg.clip_ratio,
                    cfg.ent_coef,
                    n,
                    pi_shard,
                );
                prof.backward += t2.elapsed();
                if it == 0 {
                    pi_loss_before = loss;
                    entropy = mean_entropy(pi_shard.logp_all(), n_actions);
                }
                pi_loss_after = loss;
            }
            let t3 = Instant::now();
            if let Some(mx) = cfg.max_grad_norm {
                clip_global_norm(pi_shard.grads_mut(), mx);
            }
            let mlp = policy.fused_mut().expect("fused_mut must pair with fused");
            pi_opt.step_params(
                mlp.layers.iter_mut().flat_map(|l| [&mut l.w, &mut l.b]),
                pi_shard.grads(),
            );
            prof.optimizer += t3.elapsed();
            pi_iters = it + 1;
        }

        let mut v_loss_before = 0.0;
        let mut v_loss_after = 0.0;
        for it in 0..cfg.train_v_iters {
            let t0 = Instant::now();
            let view = iteration_view(cfg, update_rng, batch, mb);
            let n = view.actions.len();
            let t1 = Instant::now();
            prof.gather += t1 - t0;
            {
                let vm = value.fused().expect("fused_supported checked");
                fused::value_forward_sharded(vm, view.obs, n, vf_shard);
                let t2 = Instant::now();
                prof.forward += t2 - t1;
                let loss =
                    fused::value_loss_and_grads_sharded(vm, view.obs, view.returns, n, vf_shard);
                prof.backward += t2.elapsed();
                if it == 0 {
                    v_loss_before = loss;
                }
                v_loss_after = loss;
            }
            let t3 = Instant::now();
            if let Some(mx) = cfg.max_grad_norm {
                clip_global_norm(vf_shard.grads_mut(), mx);
            }
            let mlp = value.fused_mut().expect("fused_mut must pair with fused");
            vf_opt.step_params(
                mlp.layers.iter_mut().flat_map(|l| [&mut l.w, &mut l.b]),
                vf_shard.grads(),
            );
            prof.optimizer += t3.elapsed();
        }

        Some(UpdateStats {
            pi_loss_before,
            pi_loss_after,
            v_loss_before,
            v_loss_after,
            approx_kl,
            entropy,
            pi_iters,
        })
    }
}

/// Pick the working set for one update iteration: borrowed slices of
/// the whole batch, or a random minibatch refilled into `mb`'s
/// reusable buffers when configured and the batch is larger. Free
/// function so both update arms share it (and the RNG stream) without
/// borrowing the whole trainer.
fn iteration_view<'a>(
    cfg: &PpoConfig,
    rng: &mut rand::rngs::StdRng,
    batch: &'a Batch,
    mb: &'a mut MiniBuf,
) -> ViewRef<'a> {
    let n = batch.len();
    match cfg.minibatch {
        Some(size) if size < n => {
            mb.fill(batch, size, |hi| rng.gen_range(0..hi));
            ViewRef {
                obs: &mb.obs,
                masks: &mb.masks,
                actions: &mb.actions,
                advantages: &mb.advantages,
                returns: &mb.returns,
                logp_old: &mb.logp_old,
            }
        }
        _ => ViewRef {
            obs: batch.obs.data(),
            masks: batch.masks.data(),
            actions: &batch.actions,
            advantages: &batch.advantages,
            returns: &batch.returns,
            logp_old: &batch.logp_old,
        },
    }
}

/// Borrowed view of one update iteration's working set.
struct ViewRef<'a> {
    obs: &'a [f32],
    masks: &'a [f32],
    actions: &'a [usize],
    advantages: &'a [f32],
    returns: &'a [f32],
    logp_old: &'a [f32],
}

/// Reusable minibatch gather buffers (filled once per iteration, never
/// reallocated at steady state).
#[derive(Default)]
struct MiniBuf {
    obs: Vec<f32>,
    masks: Vec<f32>,
    actions: Vec<usize>,
    advantages: Vec<f32>,
    returns: Vec<f32>,
    logp_old: Vec<f32>,
}

impl MiniBuf {
    /// Gather `size` random rows of `batch` (with replacement, drawn via
    /// `draw(n)`) into the buffers.
    fn fill(&mut self, batch: &Batch, size: usize, mut draw: impl FnMut(usize) -> usize) {
        let obs_dim = batch.obs.cols();
        let n_actions = batch.masks.cols();
        let n = batch.len();
        self.obs.clear();
        self.masks.clear();
        self.actions.clear();
        self.advantages.clear();
        self.returns.clear();
        self.logp_old.clear();
        for _ in 0..size {
            let i = draw(n);
            self.obs
                .extend_from_slice(&batch.obs.data()[i * obs_dim..(i + 1) * obs_dim]);
            self.masks
                .extend_from_slice(&batch.masks.data()[i * n_actions..(i + 1) * n_actions]);
            self.actions.push(batch.actions[i]);
            self.advantages.push(batch.advantages[i]);
            self.returns.push(batch.returns[i]);
            self.logp_old.push(batch.logp_old[i]);
        }
    }
}

/// Mean per-row entropy of a `[m, n]` row-major log-prob matrix (shared
/// by both update arms' diagnostics).
fn mean_entropy(logp_all: &[f32], n: usize) -> f32 {
    let m = logp_all.len() / n;
    let mut total = 0.0;
    for row in logp_all.chunks_exact(n) {
        total += MaskedCategorical::new(row).entropy();
    }
    total / m as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::RolloutBuffer;
    use crate::categorical::MASK_OFF;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlsched_nn::{Activation, Mlp, Network};

    /// A plain MLP policy over flat observations (the "MLP v2" baseline of
    /// Table IV in miniature).
    struct MlpPolicy {
        net: Mlp,
    }

    impl MlpPolicy {
        fn new(obs_dim: usize, n_actions: usize, seed: u64) -> Self {
            let mut rng = StdRng::seed_from_u64(seed);
            MlpPolicy {
                net: Mlp::new(
                    &[obs_dim, 16, n_actions],
                    Activation::Tanh,
                    Activation::Identity,
                    &mut rng,
                ),
            }
        }
    }

    impl PolicyModel for MlpPolicy {
        fn log_probs(&self, g: &mut Graph, obs: Var, mask: Var, binds: &mut ParamBinds) -> Var {
            let logits = self.net.forward(g, obs, binds);
            let masked = g.add(logits, mask);
            g.log_softmax(masked)
        }
        fn params(&self) -> Vec<&Tensor> {
            self.net.params()
        }
        fn params_mut(&mut self) -> Vec<&mut Tensor> {
            self.net.params_mut()
        }
    }

    struct MlpValue {
        net: Mlp,
    }

    impl MlpValue {
        fn new(obs_dim: usize, seed: u64) -> Self {
            let mut rng = StdRng::seed_from_u64(seed);
            MlpValue {
                net: Mlp::new(
                    &[obs_dim, 16, 1],
                    Activation::Tanh,
                    Activation::Identity,
                    &mut rng,
                ),
            }
        }
    }

    impl ValueModel for MlpValue {
        fn values(&self, g: &mut Graph, obs: Var, binds: &mut ParamBinds) -> Var {
            self.net.forward(g, obs, binds)
        }
        fn params(&self) -> Vec<&Tensor> {
            self.net.params()
        }
        fn params_mut(&mut self) -> Vec<&mut Tensor> {
            self.net.params_mut()
        }
    }

    fn agent(n_actions: usize) -> Ppo<MlpPolicy, MlpValue> {
        let cfg = PpoConfig {
            train_pi_iters: 20,
            train_v_iters: 20,
            ..PpoConfig::default()
        };
        Ppo::new(MlpPolicy::new(2, n_actions, 1), MlpValue::new(2, 2), cfg)
    }

    #[test]
    fn logp_rows_are_normalized_and_masked() {
        let ppo = agent(4);
        let mask = vec![0.0, MASK_OFF, 0.0, 0.0];
        let logp = ppo.logp_row(&[0.5, 1.0], &mask);
        let sum: f32 = logp.iter().map(|l| l.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        assert!(logp[1] < -1e8, "masked slot has ~zero probability");
    }

    #[test]
    fn select_never_picks_masked() {
        let ppo = agent(4);
        let mask = vec![MASK_OFF, 0.0, MASK_OFF, 0.0];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let (a, logp, _v) = ppo.select(&[0.1, 0.2], &mask, &mut rng);
            assert!(a == 1 || a == 3);
            assert!(logp.is_finite());
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let ppo = agent(4);
        let mask = vec![0.0; 4];
        let a = ppo.greedy(&[0.3, -0.2], &mask);
        for _ in 0..10 {
            assert_eq!(ppo.greedy(&[0.3, -0.2], &mask), a);
        }
    }

    /// The contextual-bandit learning test: rewards favor action
    /// `n_actions-1`; after a few updates the policy should, too.
    #[test]
    fn ppo_learns_a_bandit() {
        use crate::env::test_env::BanditEnv;
        use crate::env::Env;
        let n_actions = 4;
        let mut ppo = agent(n_actions);
        let mut env = BanditEnv::new(n_actions, 8, vec![]);
        let mut rng = StdRng::seed_from_u64(3);

        let mut last_mean = 0.0;
        for _epoch in 0..30 {
            let mut buf = RolloutBuffer::new(2, n_actions, ppo.cfg.gamma, ppo.cfg.lam);
            let mut metrics = Vec::new();
            let (mut obs, mut mask) = (Vec::new(), Vec::new());
            let (mut next_obs, mut next_mask) = (Vec::new(), Vec::new());
            for ep in 0..8 {
                // Manual single-env driving: clear the append-contract
                // buffers before each env write.
                obs.clear();
                mask.clear();
                env.reset(ep, &mut obs, &mut mask);
                loop {
                    let (a, logp, v) = ppo.select(&obs, &mask, &mut rng);
                    next_obs.clear();
                    next_mask.clear();
                    let out = env.step(a, &mut next_obs, &mut next_mask);
                    buf.store(&obs, &mask, a, out.reward, v, logp);
                    if out.done {
                        buf.finish_path(0.0);
                        metrics.push(out.episode_metric.unwrap());
                        break;
                    }
                    std::mem::swap(&mut obs, &mut next_obs);
                    std::mem::swap(&mut mask, &mut next_mask);
                }
            }
            last_mean = metrics.iter().sum::<f64>() / metrics.len() as f64;
            let batch = RolloutBuffer::into_batch(vec![buf]);
            ppo.update(&batch);
        }
        // Max achievable per episode is 8 * 3/4 = 6; random is ~3.
        assert!(last_mean > 4.5, "bandit mean reward {last_mean}");
        // And greedy should pick the best arm.
        let a = ppo.greedy(&[0.0, 1.0], &vec![0.0; n_actions]);
        assert_eq!(a, n_actions - 1, "greedy should pick the best arm");
    }

    #[test]
    fn update_reports_sane_stats() {
        let mut ppo = agent(3);
        let mut buf = RolloutBuffer::new(2, 3, 1.0, 0.97);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..32 {
            let obs = [i as f32 / 32.0, 0.5];
            let mask = vec![0.0, 0.0, 0.0];
            let (a, logp, v) = ppo.select(&obs, &mask, &mut rng);
            let r = if i % 8 == 7 { -(i as f64) } else { 0.0 };
            buf.store(&obs, &mask, a, r, v, logp);
            if i % 8 == 7 {
                buf.finish_path(0.0);
            }
        }
        let batch = RolloutBuffer::into_batch(vec![buf]);
        let stats = ppo.update(&batch);
        assert!(stats.pi_iters >= 1);
        assert!(stats.entropy > 0.0 && stats.entropy <= (3.0f32).ln() + 1e-4);
        assert!(
            stats.v_loss_after <= stats.v_loss_before,
            "value net must improve on its batch"
        );
        assert!(stats.approx_kl.is_finite());
    }

    #[test]
    fn value_function_fits_constant_returns() {
        let cfg = PpoConfig {
            train_pi_iters: 5,
            train_v_iters: 40,
            vf_lr: 0.05,
            ..PpoConfig::default()
        };
        let mut ppo = Ppo::new(MlpPolicy::new(2, 3, 1), MlpValue::new(2, 2), cfg);
        let mut buf = RolloutBuffer::new(2, 3, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..16 {
            let obs = [0.5, 0.5];
            let (a, logp, v) = ppo.select(&obs, &[0.0, 0.0, 0.0], &mut rng);
            buf.store(&obs, &[0.0, 0.0, 0.0], a, -7.0, v, logp);
            buf.finish_path(0.0);
        }
        let batch = RolloutBuffer::into_batch(vec![buf]);
        for _ in 0..5 {
            ppo.update(&batch);
        }
        let v = ppo.value_of(&[0.5, 0.5]);
        assert!((v + 7.0).abs() < 1.5, "value {v} should approach -7");
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn update_rejects_empty_batch() {
        let mut ppo = agent(3);
        let batch = Batch {
            obs: Tensor::zeros(&[0, 2]),
            masks: Tensor::zeros(&[0, 3]),
            actions: vec![],
            advantages: vec![],
            returns: vec![],
            logp_old: vec![],
        };
        ppo.update(&batch);
    }
}
