//! Workload substrates for the RLScheduler reproduction.
//!
//! The paper evaluates on six traces (Table II): four real traces from the
//! Parallel Workloads Archive (SDSC-SP2, HPC2N, PIK-IPLEX-2009, ANL
//! Intrepid) and two synthetic traces generated with the Lublin–Feitelson
//! model [18] (Lublin-1, Lublin-2). The real archives are not redistributed
//! here; instead this crate provides *trace-alike* generators calibrated to
//! the Table II statistics and to the qualitative properties the paper's
//! experiments depend on:
//!
//! * **PIK-IPLEX-2009** — extreme arrival burstiness, producing the
//!   heavy-tailed per-sequence slowdown distribution of Figs 3/7 that
//!   motivates trajectory filtering (§III-2, §IV-C);
//! * **HPC2N** — a dominant user submitting a large share of all jobs,
//!   which drives the fairness results of Table VIII (§V-F);
//! * **SDSC-SP2** — a small (128-proc) machine with relatively large
//!   requests, where scheduling order matters enormously (the trace on
//!   which RL beats every heuristic by >2× in Table V);
//! * **ANL Intrepid** — Blue Gene/P scale (163 840 cores, partition-sized
//!   allocations), used in the Table VII transfer study.
//!
//! See `DESIGN.md` §3 for the substitution argument. Every generator emits
//! an ordinary [`rlsched_swf::JobTrace`], so the rest of the system cannot
//! tell synthetic jobs from parsed ones.

pub mod dist;
pub mod lublin;
pub mod named;
pub mod tracealike;
pub mod users;

pub use lublin::{LublinModel, LublinParams};
pub use named::{NamedWorkload, Table2Targets};
pub use tracealike::{TraceAlikeModel, TraceAlikeParams};
pub use users::UserModel;
