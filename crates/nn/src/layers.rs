//! Network building blocks: dense and convolutional layers, activations,
//! and the [`Network`] trait that ties parameter storage to tape bindings.
//!
//! Parameters live *outside* the tape (plain [`Tensor`]s owned by the
//! layer); each forward pass copies them onto a fresh [`Graph`] and records
//! the binding order in a [`ParamBinds`], so the optimizer can match
//! gradients back to storage. With networks of <10k parameters (Table IV of
//! the paper) the copies are negligible next to the matmuls.

use rand::Rng;

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Elementwise nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Activation {
    /// max(x, 0)
    Relu,
    /// tanh(x)
    Tanh,
    /// 1/(1+e^-x)
    Sigmoid,
    /// identity (linear output head)
    Identity,
}

impl Activation {
    /// Apply on the tape.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// The fused-op activation code for [`Graph::linear`] and the
    /// allocation-free [`crate::infer`] forwards.
    pub fn to_act(self) -> crate::graph::Act {
        match self {
            Activation::Relu => crate::graph::Act::Relu,
            Activation::Tanh => crate::graph::Act::Tanh,
            Activation::Sigmoid => crate::graph::Act::Sigmoid,
            Activation::Identity => crate::graph::Act::Identity,
        }
    }
}

/// Records, in order, the tape vars bound to each parameter tensor during
/// one forward pass.
#[derive(Debug, Default)]
pub struct ParamBinds {
    vars: Vec<Var>,
}

impl ParamBinds {
    /// Fresh empty binding list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind one parameter tensor onto the tape.
    pub fn bind(&mut self, g: &mut Graph, t: &Tensor) -> Var {
        let v = g.param(t.clone());
        self.vars.push(v);
        v
    }

    /// The bound vars, in [`Network::params`] order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Collect (clone) the gradient of every bound parameter after
    /// `backward`. Prefer [`ParamBinds::take_grads`] in hot loops.
    pub fn grads(&self, g: &Graph) -> Vec<Tensor> {
        self.vars.iter().map(|&v| g.grad_or_zeros(v)).collect()
    }

    /// Move the gradients of every bound parameter out of the tape
    /// without copying. Each gradient is consumed exactly once per
    /// backward pass; combined with [`Graph::reset`] this makes the
    /// update loop allocation-free at steady state.
    pub fn take_grads(&self, g: &mut Graph) -> Vec<Tensor> {
        self.vars.iter().map(|&v| g.take_grad(v)).collect()
    }

    /// Forget all bindings (for graph reuse across iterations).
    pub fn clear(&mut self) {
        self.vars.clear();
    }
}

/// Anything with trainable parameters and a tape-forward.
pub trait Network {
    /// Run the forward pass, binding parameters through `binds`.
    fn forward(&self, g: &mut Graph, x: Var, binds: &mut ParamBinds) -> Var;

    /// Parameter tensors, in a stable order matching `forward`'s binds.
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable access in the same order.
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|t| t.len()).sum()
    }
}

/// Fully connected layer `y = x W + b`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Dense {
    /// Weight matrix `[in, out]`.
    pub w: Tensor,
    /// Bias vector `[out]`.
    pub b: Tensor,
}

impl Dense {
    /// He-initialized layer (gain suited to ReLU nets; close enough to
    /// Xavier for the small tanh nets used here).
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let std = (2.0 / in_dim as f64).sqrt();
        let w = Tensor::from_vec(
            (0..in_dim * out_dim)
                .map(|_| (sample_normal(rng) * std) as f32)
                .collect(),
            &[in_dim, out_dim],
        );
        Dense {
            w,
            b: Tensor::zeros(&[out_dim]),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[1]
    }

    /// Tape-forward through this layer (no activation).
    pub fn forward(&self, g: &mut Graph, x: Var, binds: &mut ParamBinds) -> Var {
        self.forward_fused(g, x, binds, Activation::Identity)
    }

    /// Tape-forward with the activation fused into the dense node: one
    /// tape node and one output allocation instead of three.
    pub fn forward_fused(
        &self,
        g: &mut Graph,
        x: Var,
        binds: &mut ParamBinds,
        act: Activation,
    ) -> Var {
        let w = binds.bind(g, &self.w);
        let b = binds.bind(g, &self.b);
        g.linear(x, w, b, act.to_act())
    }
}

/// Standard-normal sample via Box–Muller (keeps the dependency surface to
/// `rand` core).
fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Multi-layer perceptron: the 3-layer MLP of the paper's value network
/// (Fig 6) and the MLP policy baselines of Table IV.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    /// Stacked dense layers.
    pub layers: Vec<Dense>,
    /// Activation between layers.
    pub hidden: Activation,
    /// Activation after the last layer.
    pub output: Activation,
}

impl Mlp {
    /// Build from a dims chain `[in, h1, h2, ..., out]`.
    pub fn new<R: Rng + ?Sized>(
        dims: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            hidden,
            output,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }
}

impl Network for Mlp {
    fn forward(&self, g: &mut Graph, x: Var, binds: &mut ParamBinds) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i == last { self.output } else { self.hidden };
            h = layer.forward_fused(g, h, binds, act);
        }
        h
    }

    fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| [&l.w, &l.b]).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| [&mut l.w, &mut l.b])
            .collect()
    }
}

/// 2-D convolution layer (valid padding), for the LeNet policy baseline.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Conv2dLayer {
    /// Kernel `[out_channels, in_channels, kh, kw]`.
    pub w: Tensor,
    /// Bias `[out_channels]`.
    pub b: Tensor,
    /// Stride in both dimensions.
    pub stride: usize,
}

impl Conv2dLayer {
    /// He-initialized convolution.
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_c * kh * kw;
        let std = (2.0 / fan_in as f64).sqrt();
        let w = Tensor::from_vec(
            (0..out_c * in_c * kh * kw)
                .map(|_| (sample_normal(rng) * std) as f32)
                .collect(),
            &[out_c, in_c, kh, kw],
        );
        Conv2dLayer {
            w,
            b: Tensor::zeros(&[out_c]),
            stride,
        }
    }

    /// Tape-forward through this layer.
    pub fn forward(&self, g: &mut Graph, x: Var, binds: &mut ParamBinds) -> Var {
        let w = binds.bind(g, &self.w);
        let b = binds.bind(g, &self.b);
        g.conv2d(x, w, b, self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn dense_shapes_and_bind_order() {
        let d = Dense::new(4, 3, &mut rng());
        assert_eq!(d.w.shape(), &[4, 3]);
        assert_eq!(d.b.shape(), &[3]);
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let x = g.input(Tensor::zeros(&[2, 4]));
        let y = d.forward(&mut g, x, &mut binds);
        assert_eq!(g.value(y).shape(), &[2, 3]);
        assert_eq!(binds.vars().len(), 2);
    }

    #[test]
    fn mlp_matches_paper_kernel_dims() {
        // The RLScheduler kernel network is a 3-layer MLP 32/16/8 with a
        // scalar head; parameter count must stay under 1 000 (§IV-B1).
        let m = Mlp::new(
            &[7, 32, 16, 8, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng(),
        );
        assert!(m.param_count() < 1000, "param count {}", m.param_count());
        assert_eq!(m.in_dim(), 7);
        assert_eq!(m.out_dim(), 1);
    }

    #[test]
    fn mlp_forward_shapes() {
        let m = Mlp::new(
            &[5, 8, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng(),
        );
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let x = g.input(Tensor::zeros(&[3, 5]));
        let y = m.forward(&mut g, x, &mut binds);
        assert_eq!(g.value(y).shape(), &[3, 2]);
        assert_eq!(binds.vars().len(), 4, "2 layers x (w, b)");
    }

    #[test]
    fn params_and_binds_align() {
        let m = Mlp::new(
            &[3, 4, 2],
            Activation::Relu,
            Activation::Identity,
            &mut rng(),
        );
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let x = g.input(Tensor::zeros(&[1, 3]));
        let _ = m.forward(&mut g, x, &mut binds);
        let params = m.params();
        assert_eq!(params.len(), binds.vars().len());
        for (p, &v) in params.iter().zip(binds.vars()) {
            assert_eq!(p.shape(), g.value(v).shape());
        }
    }

    #[test]
    fn mlp_trains_xor_with_manual_sgd() {
        // End-to-end sanity: a tiny MLP fits XOR, proving forward+backward
        // wiring through layers is correct.
        let mut r = rng();
        let mut m = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Identity, &mut r);
        let xs = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        let ys = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4, 1]);
        let mut opt = crate::optim::Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..800 {
            let mut g = Graph::new();
            let mut binds = ParamBinds::new();
            let x = g.input(xs.clone());
            let y = g.input(ys.clone());
            let pred = m.forward(&mut g, x, &mut binds);
            let d = g.sub(pred, y);
            let sq = g.mul(d, d);
            let loss = g.mean(sq);
            g.backward(loss);
            final_loss = g.value(loss).item();
            let grads = binds.grads(&g);
            opt.step(&mut m.params_mut(), &grads);
        }
        assert!(final_loss < 0.05, "XOR did not converge: loss {final_loss}");
    }

    #[test]
    fn conv_layer_shapes() {
        let c = Conv2dLayer::new(1, 2, 3, 3, 1, &mut rng());
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let x = g.input(Tensor::zeros(&[2, 1, 8, 8]));
        let y = c.forward(&mut g, x, &mut binds);
        assert_eq!(g.value(y).shape(), &[2, 2, 6, 6]);
    }

    #[test]
    fn he_init_scale_is_sane() {
        let d = Dense::new(100, 50, &mut rng());
        let std = (d.w.data().iter().map(|x| x * x).sum::<f32>() / d.w.len() as f32).sqrt();
        let expect = (2.0f32 / 100.0).sqrt();
        assert!((std - expect).abs() / expect < 0.2, "std {std} vs {expect}");
        assert!(d.b.data().iter().all(|&b| b == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_rejects_single_dim() {
        let _ = Mlp::new(&[4], Activation::Relu, Activation::Identity, &mut rng());
    }
}
