//! Masked categorical distributions over action log-probabilities.
//!
//! The RLScheduler policy network emits one probability per waiting-job
//! slot (Fig 5). Padding slots (fewer than `MAX_OBSV_SIZE` jobs waiting)
//! must never be selected; masking is expressed as an additive offset of
//! [`MASK_OFF`] on invalid logits, which drives their softmax probability
//! to exactly zero in f32.

use rand::Rng;

/// Additive logit offset for invalid actions. Large enough that
/// `exp(x + MASK_OFF)` underflows to 0.0 in f32 for any realistic logit.
pub const MASK_OFF: f32 = -1.0e9;

/// A categorical distribution given by per-action log-probabilities
/// (typically a row of a `log_softmax` output).
#[derive(Debug, Clone)]
pub struct MaskedCategorical<'a> {
    logp: &'a [f32],
}

impl<'a> MaskedCategorical<'a> {
    /// Wrap a log-probability row.
    pub fn new(logp: &'a [f32]) -> Self {
        debug_assert!(!logp.is_empty());
        MaskedCategorical { logp }
    }

    /// Sample an action index proportional to `exp(logp)` — the training
    /// path ("sampling enables us to keep exploring", §IV-B1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f32 = rng.gen();
        let mut acc = 0.0f32;
        let mut last_valid = 0;
        for (i, &lp) in self.logp.iter().enumerate() {
            let p = lp.exp();
            if p > 0.0 {
                last_valid = i;
            }
            acc += p;
            if x < acc {
                return i;
            }
        }
        // Floating-point shortfall (acc summed to slightly under 1):
        // return the last action with non-zero probability.
        last_valid
    }

    /// The most probable action — the deterministic test-time path
    /// ("during testing, it is directly used to select the job with the
    /// highest probability", §IV-B1).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &lp) in self.logp.iter().enumerate() {
            if lp > self.logp[best] {
                best = i;
            }
        }
        best
    }

    /// Log-probability of a given action.
    pub fn log_prob(&self, action: usize) -> f32 {
        self.logp[action]
    }

    /// Shannon entropy in nats. Masked entries (probability 0) contribute
    /// nothing.
    pub fn entropy(&self) -> f32 {
        -self
            .logp
            .iter()
            .map(|&lp| {
                let p = lp.exp();
                if p > 0.0 {
                    p * lp
                } else {
                    0.0
                }
            })
            .sum::<f32>()
    }
}

/// Build an additive mask row: 0.0 where valid, [`MASK_OFF`] where not.
pub fn additive_mask(valid: &[bool]) -> Vec<f32> {
    valid
        .iter()
        .map(|&v| if v { 0.0 } else { MASK_OFF })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn logp_of(probs: &[f32]) -> Vec<f32> {
        probs.iter().map(|p| p.ln()).collect()
    }

    #[test]
    fn sample_follows_probabilities() {
        let logp = logp_of(&[0.1, 0.6, 0.3]);
        let d = MaskedCategorical::new(&logp);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        assert!((counts[1] as f32 / n as f32 - 0.6).abs() < 0.02);
        assert!((counts[0] as f32 / n as f32 - 0.1).abs() < 0.02);
    }

    #[test]
    fn masked_actions_never_sampled() {
        // Action 1 is masked (log-prob MASK_OFF → probability 0);
        // the others carry probabilities 0.9 and 0.1.
        let logp = vec![(0.9f32).ln(), MASK_OFF, (0.1f32).ln()];
        let d = MaskedCategorical::new(&logp);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert_ne!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn argmax_picks_mode() {
        let logp = logp_of(&[0.2, 0.5, 0.3]);
        assert_eq!(MaskedCategorical::new(&logp).argmax(), 1);
    }

    #[test]
    fn entropy_uniform_is_ln_n() {
        let logp = logp_of(&[0.25; 4]);
        let h = MaskedCategorical::new(&logp).entropy();
        assert!((h - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn entropy_deterministic_is_zero() {
        let logp = vec![0.0, MASK_OFF, MASK_OFF];
        let h = MaskedCategorical::new(&logp).entropy();
        assert!(h.abs() < 1e-6, "h={h}");
    }

    #[test]
    fn entropy_ignores_masked_slots_without_nan() {
        let logp = vec![(0.5f32).ln(), (0.5f32).ln(), MASK_OFF];
        let h = MaskedCategorical::new(&logp).entropy();
        assert!(h.is_finite());
        assert!((h - 2.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn additive_mask_layout() {
        let m = additive_mask(&[true, false, true]);
        assert_eq!(m[0], 0.0);
        assert_eq!(m[1], MASK_OFF);
        assert_eq!(m[2], 0.0);
    }

    #[test]
    fn sample_handles_shortfall() {
        // Probabilities that sum slightly below 1 after exp still return a
        // valid (unmasked) index.
        let logp = vec![(0.3f32).ln(), (0.69999f32).ln(), MASK_OFF];
        let d = MaskedCategorical::new(&logp);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) < 2);
        }
    }
}
