//! Offline shim for `rand_distr`: the continuous distributions the
//! workload generators use (`Normal`, `LogNormal`, `Gamma`), implemented
//! over `f64` with the standard algorithms (Box–Muller polar method for
//! normals, Marsaglia–Tsang squeeze for gammas).

pub use rand::distributions::Distribution;
use rand::Rng;

/// Parameter-validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistrError(&'static str);

impl std::fmt::Display for DistrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for DistrError {}

#[inline]
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Marsaglia polar method: no trig, two uniforms per pair (one value
    // discarded for statelessness — throughput is irrelevant here).
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal(mean, std_dev).
#[derive(Debug, Clone, Copy)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistrError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(DistrError("normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// LogNormal(mu, sigma) of the underlying normal.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal<F> {
    norm: Normal<F>,
}

impl LogNormal<f64> {
    /// `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistrError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)
                .map_err(|_| DistrError("lognormal requires finite mu and sigma >= 0"))?,
        })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Gamma(shape k, scale θ).
#[derive(Debug, Clone, Copy)]
pub struct Gamma<F> {
    shape: F,
    scale: F,
}

impl Gamma<f64> {
    /// Both parameters must be finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistrError> {
        if shape <= 0.0 || scale <= 0.0 || !shape.is_finite() || !scale.is_finite() {
            return Err(DistrError("gamma requires shape > 0 and scale > 0"));
        }
        Ok(Gamma { shape, scale })
    }
}

impl Distribution<f64> for Gamma<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia & Tsang (2000). For k < 1 boost with U^(1/k).
        let (k, boost) = if self.shape < 1.0 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return boost * d * v * self.scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut r = StdRng::seed_from_u64(1);
        let d = Normal::new(5.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        let (m, v) = moments(&xs);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.1, "var {v}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut r = StdRng::seed_from_u64(2);
        let d = Gamma::new(4.0, 1.5).unwrap();
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        let (m, v) = moments(&xs);
        assert!((m - 6.0).abs() < 0.1, "mean {m}"); // k*theta
        assert!((v - 9.0).abs() < 0.4, "var {v}"); // k*theta^2
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut r = StdRng::seed_from_u64(3);
        let d = Gamma::new(0.5, 2.0).unwrap();
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut r)).collect();
        let (m, _v) = moments(&xs);
        assert!((m - 1.0).abs() < 0.05, "mean {m}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lognormal_moments() {
        let mut r = StdRng::seed_from_u64(4);
        // mu=0, sigma=0.5: mean = exp(sigma^2/2)
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        let (m, _) = moments(&xs);
        let expect = (0.125f64).exp();
        assert!((m - expect).abs() / expect < 0.02, "mean {m} vs {expect}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
    }
}
