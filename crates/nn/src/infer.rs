//! Allocation-free inference: plain forward passes over `&[f32]` scratch
//! buffers, with no tape bookkeeping at all.
//!
//! # Tape vs fast path
//!
//! The [`crate::Graph`] tape exists for *training*: every op records
//! itself so `backward` can run, every intermediate stays alive for the
//! reverse scan, and parameters are copied onto the tape each forward so
//! the optimizer can match gradients back to storage. None of that is
//! needed to *act*: scheduling decisions (RLScheduler §IV-B1's test path,
//! Table IX's latency comparison vs SJF) and rollout sampling only need
//! output values. This module touches no memory beyond a caller-owned
//! [`Scratch`].
//!
//! # Dispatch and layout rules
//!
//! Dense layers run through the runtime-dispatched microkernels in
//! [`crate::simd`] — the *same* kernels the tape's `Graph::linear` and
//! `Tensor::matmul*` use — so tape and fast path compute bit-identical
//! values on whichever dispatch arm (AVX2/FMA or scalar) is active.
//! Dispatch is per shape: ≥8 output columns vectorize on the broadcast
//! kernel, `out_dim == 1` heads take a scalar-dot specialization, and
//! everything else falls back to the tape-order portable loop. Setting
//! `RLSCHED_FORCE_SCALAR` pins every caller to the scalar arm.
//!
//! Weight layout is `[in, out]` row-major everywhere. That layout is
//! ideal with many input rows (each weight row broadcasts across the row
//! block) but wastes cache-line bandwidth for a *single* row streaming a
//! large matrix — the MLP v1 serving case. [`PackedMlp`] covers it: a
//! weight-transposed (`[out, in]`) copy of an `Mlp` whose single-row
//! forward runs each output as one contiguous dot product on the NT
//! kernel. Pack once while weights are frozen (e.g. for the lifetime of a
//! borrowed serving policy); a pack is a snapshot, not a view.
//!
//! Numerics: the SIMD kernels fuse multiply-adds and reorder the
//! accumulation, so outputs can differ from the scalar arm in the last
//! few ulps; the masked-argmax decision agrees except on floating-point
//! near-ties (see the `infer_parity` property tests in `rlscheduler`).
//!
//! The functions are free-standing and layer-shaped (dense / conv /
//! pool / log-softmax) so downstream crates can compose them for any
//! architecture — see `rlscheduler`'s five `PolicyKind`s, which all score
//! a 128-job window through these in one batched pass.

use crate::layers::{Activation, Dense, Mlp};
use crate::simd;

/// Reusable scratch buffers for inference. One per worker/thread; cheap
/// to create, free to reuse. Buffers only ever grow to the high-water
/// mark of the architectures run through them.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    /// Ping buffer for layer outputs.
    a: Vec<f32>,
    /// Pong buffer for layer outputs.
    b: Vec<f32>,
    /// Extra buffer for architectures needing a third live tensor (conv
    /// stacks).
    c: Vec<f32>,
}

impl Scratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Dense layer forward: `out = act(x @ w + b)` where `x` is `[rows, in]`
/// row-major, `w` `[in, out_dim]`, `b` `[out_dim]`.
///
/// Runs [`crate::simd::dense_any`] — the exact kernel dispatch the tape's
/// [`crate::Graph::linear`] uses — so fast path and tape agree
/// bit-for-bit on either dispatch arm.
#[allow(clippy::too_many_arguments)] // mirrors the raw (x, w, b, dims) BLAS-style signature
pub fn dense_forward(
    x: &[f32],
    rows: usize,
    w: &[f32],
    b: &[f32],
    in_dim: usize,
    out_dim: usize,
    act: Activation,
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(x.len(), rows * in_dim, "input volume");
    out.clear();
    out.resize(rows * out_dim, 0.0);
    simd::dense_any(x, rows, w, b, in_dim, out_dim, out);
    act.to_act().apply_slice(out);
}

/// Forward an [`Mlp`] over `rows` stacked input rows; the final layer's
/// activations land in `out` (`[rows, mlp.out_dim()]`).
pub fn mlp_forward(mlp: &Mlp, x: &[f32], rows: usize, scratch: &mut Scratch, out: &mut Vec<f32>) {
    // Invariant: after layer i < last, its activations live in `scratch.a`.
    let last = mlp.layers.len() - 1;
    for (i, layer) in mlp.layers.iter().enumerate() {
        let act = if i == last { mlp.output } else { mlp.hidden };
        let (w, b) = (layer.w.data(), layer.b.data());
        let (din, dout) = (layer.in_dim(), layer.out_dim());
        if i == 0 {
            let dst = if last == 0 { &mut *out } else { &mut scratch.a };
            dense_forward(x, rows, w, b, din, dout, act, dst);
        } else if i == last {
            dense_forward(&scratch.a, rows, w, b, din, dout, act, out);
        } else {
            let Scratch { a, b: pong, .. } = scratch;
            dense_forward(a, rows, w, b, din, dout, act, pong);
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
    }
}

/// One layer of a [`PackedMlp`]: weights stored transposed (`[out, in]`
/// row-major) so a single-row forward reads each output's weights as one
/// contiguous dot product.
#[derive(Debug, Clone)]
struct PackedDense {
    wt: Vec<f32>,
    b: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

/// A weight-transposed snapshot of an [`Mlp`] for single-row inference.
///
/// The standard `[in, out]` layout streams a large weight matrix with
/// partial cache-line use when there is only one input row (the flat
/// MLP v1 serving case: ~458 KB per decision). Packing the weights
/// `[out, in]` turns every output into a contiguous dot product on the
/// [`crate::simd::gemm_nt`] kernel.
///
/// A pack is a *copy*: it does not observe later weight updates. Pack
/// while the network is frozen (e.g. for the lifetime of a serving
/// policy that borrows its agent immutably) and repack after training.
#[derive(Debug, Clone)]
pub struct PackedMlp {
    layers: Vec<PackedDense>,
    hidden: Activation,
    output: Activation,
}

impl PackedMlp {
    /// Snapshot `mlp` with every weight matrix transposed.
    pub fn pack(mlp: &Mlp) -> Self {
        let layers = mlp
            .layers
            .iter()
            .map(|layer| {
                let (din, dout) = (layer.in_dim(), layer.out_dim());
                let mut wt = vec![0.0f32; din * dout];
                simd::transpose(layer.w.data(), din, dout, &mut wt);
                PackedDense {
                    wt,
                    b: layer.b.data().to_vec(),
                    in_dim: din,
                    out_dim: dout,
                }
            })
            .collect();
        PackedMlp {
            layers,
            hidden: mlp.hidden,
            output: mlp.output,
        }
    }

    /// Output width of the packed network.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// True when every packed weight and bias is a finite float — the
    /// checkpoint-validation guard a serving tier runs before installing
    /// a pack (a NaN/Inf-poisoned checkpoint must never go live).
    pub fn all_finite(&self) -> bool {
        self.layers
            .iter()
            .all(|l| l.wt.iter().chain(&l.b).all(|v| v.is_finite()))
    }

    /// Forward one input row; the final activations land in `out`.
    /// Allocation-free at steady state (scratch and `out` only grow to
    /// their high-water mark).
    pub fn forward_row(&self, x: &[f32], scratch: &mut Scratch, out: &mut Vec<f32>) {
        self.forward(x, 1, scratch, out);
    }

    /// Forward `rows` stacked input rows (`[rows, in]` row-major); the
    /// final activations land in `out` (`[rows, out_dim]`). The NT kernel
    /// computes every output as an independent contiguous dot product, so
    /// row `i` of the result is bit-identical to [`PackedMlp::forward_row`]
    /// on row `i` alone — a packed scorer can serve one request or a
    /// coalesced batch through the same arithmetic. Allocation-free at
    /// steady state.
    pub fn forward(&self, x: &[f32], rows: usize, scratch: &mut Scratch, out: &mut Vec<f32>) {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i == last { self.output } else { self.hidden };
            if i == 0 {
                let dst = if last == 0 { &mut *out } else { &mut scratch.a };
                dense_t(x, rows, layer, act, dst);
            } else if i == last {
                dense_t(&scratch.a, rows, layer, act, out);
            } else {
                let Scratch { a, b: pong, .. } = scratch;
                dense_t(a, rows, layer, act, pong);
                std::mem::swap(&mut scratch.a, &mut scratch.b);
            }
        }
    }
}

/// Dense forward over transposed (`[out, in]`) weights: each output is
/// one contiguous dot product (the NT kernel), bias added after the dot.
/// Per-row arithmetic is independent of `rows`.
fn dense_t(x: &[f32], rows: usize, layer: &PackedDense, act: Activation, out: &mut Vec<f32>) {
    debug_assert_eq!(x.len(), rows * layer.in_dim, "input volume");
    out.clear();
    out.resize(rows * layer.out_dim, 0.0);
    if !simd::gemm_nt(x, rows, layer.in_dim, &layer.wt, layer.out_dim, out) {
        simd::gemm_nt_scalar(x, rows, layer.in_dim, &layer.wt, layer.out_dim, out);
    }
    for row in out.chunks_mut(layer.out_dim) {
        for (o, &b) in row.iter_mut().zip(&layer.b) {
            *o += b;
        }
    }
    act.to_act().apply_slice(out);
}

/// Single-dense-layer convenience over a [`Dense`].
pub fn dense_layer_forward(
    layer: &Dense,
    x: &[f32],
    rows: usize,
    act: Activation,
    out: &mut Vec<f32>,
) {
    dense_forward(
        x,
        rows,
        layer.w.data(),
        layer.b.data(),
        layer.in_dim(),
        layer.out_dim(),
        act,
        out,
    );
}

/// Valid (unpadded) conv2d into a zero-filled output slice. Shared by the
/// tape op and the fast path so both compute identical values.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into(
    x: &[f32],
    w: &[f32],
    b: &[f32],
    bs: usize,
    c: usize,
    h: usize,
    wd: usize,
    o: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    out: &mut [f32],
) {
    let oh = (h - kh) / stride + 1;
    let ow = (wd - kw) / stride + 1;
    debug_assert_eq!(out.len(), bs * o * oh * ow);
    for bi in 0..bs {
        for oi in 0..o {
            for y in 0..oh {
                for xj in 0..ow {
                    let mut acc = b[oi];
                    for ci in 0..c {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let xi =
                                    x[idx4(bi, ci, y * stride + ky, xj * stride + kx, c, h, wd)];
                                let wi = w[idx4(oi, ci, ky, kx, c, kh, kw)];
                                acc += xi * wi;
                            }
                        }
                    }
                    out[idx4(bi, oi, y, xj, o, oh, ow)] = acc;
                }
            }
        }
    }
}

/// Non-overlapping max-pool into an output slice (window = stride =
/// `size`). Shared by the tape op and the fast path.
pub fn max_pool2d_into(
    x: &[f32],
    bs: usize,
    c: usize,
    h: usize,
    w: usize,
    size: usize,
    out: &mut [f32],
) {
    let (oh, ow) = (h / size, w / size);
    debug_assert_eq!(out.len(), bs * c * oh * ow);
    for bi in 0..bs {
        for ci in 0..c {
            for y in 0..oh {
                for xj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..size {
                        for kx in 0..size {
                            let v = x[idx4(bi, ci, y * size + ky, xj * size + kx, c, h, w)];
                            best = best.max(v);
                        }
                    }
                    out[idx4(bi, ci, y, xj, c, oh, ow)] = best;
                }
            }
        }
    }
}

/// Scratch-buffered conv2d: resizes `out` and runs [`conv2d_into`].
/// Returns the output spatial dims `(oh, ow)`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward(
    x: &[f32],
    w: &[f32],
    b: &[f32],
    bs: usize,
    c: usize,
    h: usize,
    wd: usize,
    o: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    out: &mut Vec<f32>,
) -> (usize, usize) {
    let oh = (h - kh) / stride + 1;
    let ow = (wd - kw) / stride + 1;
    out.clear();
    out.resize(bs * o * oh * ow, 0.0);
    conv2d_into(x, w, b, bs, c, h, wd, o, kh, kw, stride, out);
    (oh, ow)
}

/// Scratch-buffered max-pool. Returns the output spatial dims.
pub fn max_pool2d_forward(
    x: &[f32],
    bs: usize,
    c: usize,
    h: usize,
    w: usize,
    size: usize,
    out: &mut Vec<f32>,
) -> (usize, usize) {
    let (oh, ow) = (h / size, w / size);
    out.clear();
    out.resize(bs * c * oh * ow, 0.0);
    max_pool2d_into(x, bs, c, h, w, size, out);
    (oh, ow)
}

/// ReLU in place (for conv stacks composed manually).
pub fn relu_inplace(xs: &mut [f32]) {
    for x in xs {
        *x = x.max(0.0);
    }
}

/// `exp(x)` underflows to exactly `0.0f32` below this, so skipping the
/// libm call for such inputs is bit-exact — and masked action slots sit
/// at ~-1e9, so a PPO batch is full of them.
pub(crate) const EXP_UNDERFLOW: f32 = -104.0;

/// `exp(x)` with the underflow short-circuit (bit-identical to
/// `x.exp()` for every input).
#[inline]
pub(crate) fn exp_or_zero(x: f32) -> f32 {
    if x <= EXP_UNDERFLOW {
        0.0
    } else {
        x.exp()
    }
}

/// Numerically-stabilized log-softmax of one row, in place. Matches the
/// tape's [`crate::Graph::log_softmax`] arithmetic exactly.
pub fn log_softmax_inplace(row: &mut [f32]) {
    let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let lse = mx + row.iter().map(|&x| exp_or_zero(x - mx)).sum::<f32>().ln();
    for x in row {
        *x -= lse;
    }
}

/// The third scratch buffer, for conv stacks that need one more live
/// tensor than the ping/pong pair provides.
pub fn scratch_extra(scratch: &mut Scratch) -> &mut Vec<f32> {
    &mut scratch.c
}

/// Borrow all three scratch buffers at once (conv pipelines rotate
/// through them).
pub fn scratch_triple(scratch: &mut Scratch) -> (&mut Vec<f32>, &mut Vec<f32>, &mut Vec<f32>) {
    (&mut scratch.a, &mut scratch.b, &mut scratch.c)
}

/// Row-major 4-D index, shared by the conv/pool forward kernels here and
/// their backward passes in [`crate::graph`] so layouts cannot diverge.
#[inline]
pub(crate) fn idx4(
    a: usize,
    b: usize,
    c: usize,
    d: usize,
    nb: usize,
    nc: usize,
    nd: usize,
) -> usize {
    ((a * nb + b) * nc + c) * nd + d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::layers::{Activation, Mlp, Network, ParamBinds};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_fast_path_matches_tape() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(
            &[7, 32, 16, 8, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let rows = 128;
        let x: Vec<f32> = (0..rows * 7)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.02)
            .collect();

        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let xin = g.input(Tensor::from_vec(x.clone(), &[rows, 7]));
        let y = mlp.forward(&mut g, xin, &mut binds);
        let tape_out = g.value(y).data().to_vec();

        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        mlp_forward(&mlp, &x, rows, &mut scratch, &mut out);
        assert_eq!(out.len(), tape_out.len());
        // The SIMD microkernel fuses multiply-adds, so allow ulp-scale
        // drift; the portable fallback is exactly the tape's order.
        for (a, b) in out.iter().zip(&tape_out) {
            assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn dispatched_kernel_matches_tape_bitwise() {
        // Tape (`Graph::linear`) and fast path (`dense_forward`) share the
        // same `simd::dense_any` dispatch, so on EITHER dispatch arm the
        // two must agree bit-for-bit — including the ragged out_dim 4
        // (portable) and SIMD-eligible out_dim 16 layers here.
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(
            &[5, 16, 4],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let rows = 6;
        let x: Vec<f32> = (0..rows * 5)
            .map(|i| ((i * 13 % 29) as f32 - 14.0) * 0.05)
            .collect();

        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let xin = g.input(Tensor::from_vec(x.clone(), &[rows, 5]));
        let y = mlp.forward(&mut g, xin, &mut binds);

        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        mlp_forward(&mlp, &x, rows, &mut scratch, &mut out);
        assert_eq!(
            out.as_slice(),
            g.value(y).data(),
            "tape and fast path share one kernel dispatch"
        );
    }

    #[test]
    fn packed_mlp_matches_unpacked_forward() {
        let mut rng = StdRng::seed_from_u64(17);
        let mlp = Mlp::new(
            &[9, 24, 13, 5],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let x: Vec<f32> = (0..9)
            .map(|i| ((i * 11 % 23) as f32 - 11.0) * 0.07)
            .collect();

        let mut scratch = Scratch::new();
        let mut plain = Vec::new();
        mlp_forward(&mlp, &x, 1, &mut scratch, &mut plain);

        let packed = PackedMlp::pack(&mlp);
        assert_eq!(packed.out_dim(), 5);
        let mut fast = Vec::new();
        packed.forward_row(&x, &mut scratch, &mut fast);
        // The NT kernel reorders the accumulation vs the broadcast kernel,
        // so compare within ulp-scale tolerance.
        assert_eq!(fast.len(), plain.len());
        for (a, b) in fast.iter().zip(&plain) {
            assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn packed_batch_forward_matches_rows() {
        let mut rng = StdRng::seed_from_u64(23);
        let mlp = Mlp::new(
            &[11, 24, 16, 6],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let packed = PackedMlp::pack(&mlp);
        let rows = 5;
        let x: Vec<f32> = (0..rows * 11)
            .map(|i| ((i * 19 % 31) as f32 - 15.0) * 0.04)
            .collect();
        let mut scratch = Scratch::new();
        let mut batched = Vec::new();
        packed.forward(&x, rows, &mut scratch, &mut batched);
        assert_eq!(batched.len(), rows * 6);
        let mut single = Vec::new();
        for r in 0..rows {
            packed.forward_row(&x[r * 11..(r + 1) * 11], &mut scratch, &mut single);
            assert_eq!(
                &batched[r * 6..(r + 1) * 6],
                single.as_slice(),
                "packed row {r} must not depend on batch size"
            );
        }
    }

    #[test]
    fn dense_forward_applies_activation() {
        // x=[1,2], w=I, b=[-5, 0] → pre = [-4, 2] → relu → [0, 2]
        let mut out = Vec::new();
        dense_forward(
            &[1.0, 2.0],
            1,
            &[1.0, 0.0, 0.0, 1.0],
            &[-5.0, 0.0],
            2,
            2,
            Activation::Relu,
            &mut out,
        );
        assert_eq!(out, vec![0.0, 2.0]);
    }

    #[test]
    fn scratch_buffers_are_reused_not_regrown() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(
            &[4, 16, 16, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let x = vec![0.25f32; 4];
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        mlp_forward(&mlp, &x, 1, &mut scratch, &mut out);
        let cap_a = scratch.a.capacity();
        let cap_b = scratch.b.capacity();
        for _ in 0..100 {
            mlp_forward(&mlp, &x, 1, &mut scratch, &mut out);
        }
        assert_eq!(scratch.a.capacity(), cap_a, "ping buffer must not regrow");
        assert_eq!(scratch.b.capacity(), cap_b, "pong buffer must not regrow");
    }

    #[test]
    fn log_softmax_inplace_matches_tape() {
        let logits = vec![1.5f32, -0.5, 3.0, 0.0];
        let mut fast = logits.clone();
        log_softmax_inplace(&mut fast);

        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(logits, &[1, 4]));
        let ls = g.log_softmax(x);
        assert_eq!(fast.as_slice(), g.value(ls).data());
    }

    #[test]
    fn conv_and_pool_match_tape() {
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.7).sin()).collect();
        let w: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).cos()).collect();
        let b = vec![0.1f32, -0.2];

        let mut g = Graph::new();
        let xv = g.input(Tensor::from_vec(x.clone(), &[1, 2, 4, 4]));
        let wv = g.input(Tensor::from_vec(w.clone(), &[2, 2, 2, 2]));
        let bv = g.input(Tensor::from_vec(b.clone(), &[2]));
        let c = g.conv2d(xv, wv, bv, 1); // [1,2,3,3]
        let p = g.max_pool2d(c, 3); // [1,2,1,1]

        let mut conv_out = Vec::new();
        let (oh, ow) = conv2d_forward(&x, &w, &b, 1, 2, 4, 4, 2, 2, 2, 1, &mut conv_out);
        assert_eq!((oh, ow), (3, 3));
        assert_eq!(conv_out.as_slice(), g.value(c).data());

        let mut pool_out = Vec::new();
        max_pool2d_forward(&conv_out, 1, 2, 3, 3, 3, &mut pool_out);
        assert_eq!(pool_out.as_slice(), g.value(p).data());
    }
}
