//! The front door and shard workers.
//!
//! ```text
//!                    ┌─ connection threads ─┐      ┌─ shard threads ──┐
//! TcpListener ──────▶│ read frame           │      │ recv (blocking)  │
//!   (accept loop)    │ validate + encode    │─────▶│ coalesce ≤ window│
//!                    │ route: fnv(id)%N ────┼──┐   │  or batch cap    │
//!                    │ full queue? ⇒ Shed   │  └──▶│ one batched fwd  │
//!                    └──────────┬───────────┘      │ reply per row    │
//!                               ▼                  └────────┬─────────┘
//!                      writer thread (per conn) ◀───────────┘
//! ```
//!
//! * **Routing** is deterministic: FNV-1a of the request id modulo the
//!   shard count, so a given id always lands on the same shard (and a
//!   client can pin itself to a shard by fixing its id stream).
//! * **Backpressure**: each shard's inbox is a bounded channel; when it
//!   is full the connection thread answers [`Response::Shed`]
//!   immediately instead of queueing unbounded work.
//! * **Coalescing**: a shard blocks for its first request, then drains
//!   arrivals until the configured window elapses or the batch cap is
//!   reached, and scores the whole stack through one forward.
//! * **Hot swap**: [`ServerHandle::swap_scorer`] installs new weights
//!   through the shared [`ScorerSlot`]; in-flight batches complete on
//!   the old weights, later batches use the new ones, nothing is
//!   dropped.
//! * **Shutdown**: [`ServerHandle::shutdown`] flips a flag, the accept
//!   loop notices it, parked connection readers are unblocked by
//!   shutting their streams down, shards drain and exit when every
//!   sender is gone, and all threads are joined before the call
//!   returns.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rlscheduler::{ObsEncoder, ScorerSnapshot};

use crate::engine::{ScorerSlot, ShardEngine};
use crate::histogram::LatencyHistogram;
use crate::protocol::{read_frame, write_frame, Request, Response, ServeStats};

/// Server tuning knobs. The defaults serve a small cluster's decision
/// traffic; benches and tests override freely.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker shards, each owning a scorer replica and scratch.
    pub shards: usize,
    /// Max rows per coalesced batch.
    pub batch_cap: usize,
    /// How long a shard holds its first request open for companions.
    pub coalesce_window: Duration,
    /// Bounded per-shard inbox depth; arrivals beyond it are shed.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            batch_cap: 32,
            coalesce_window: Duration::from_micros(100),
            queue_depth: 128,
        }
    }
}

/// One encoded request in flight to a shard.
struct ShardRequest {
    id: u64,
    obs: Vec<f32>,
    mask: Vec<f32>,
    queue_len: usize,
    enqueued: Instant,
    reply: Sender<Response>,
}

/// Counters and the merged latency histogram, shared by all threads.
struct Shared {
    shutdown: AtomicBool,
    served: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    swaps: AtomicU64,
    hist: Mutex<LatencyHistogram>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Stream clones for the *live* connections keyed by connection id,
    /// so shutdown can unblock readers parked in `read_frame` (no read
    /// timeouts — a timeout mid-frame would drop partial line data).
    /// Each connection removes its own entry on exit; leaving it there
    /// would hold the socket's fd open for the server's lifetime.
    conn_streams: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        let hist = self.hist.lock().expect("histogram poisoned");
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            p50_us: hist.quantile_ns(0.5) as f64 / 1e3,
            p99_us: hist.quantile_ns(0.99) as f64 / 1e3,
            max_us: hist.max_ns() as f64 / 1e3,
        }
    }
}

/// FNV-1a: the deterministic request→shard routing hash.
fn route(id: u64, shards: usize) -> usize {
    let mut h = 0xcbf29ce484222325u64;
    for byte in id.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards as u64) as usize
}

/// The serving tier. Construct with [`Server::spawn`]; the returned
/// [`ServerHandle`] is the only way to interact with a running server.
pub struct Server;

impl Server {
    /// Start listening and spawn the shard workers. Returns once the
    /// socket is bound (the port is immediately connectable).
    pub fn spawn(
        scorer: ScorerSnapshot,
        encoder: ObsEncoder,
        cfg: ServeConfig,
    ) -> std::io::Result<ServerHandle> {
        assert!(cfg.shards > 0, "need at least one shard");
        assert_eq!(
            encoder.obs_dim(),
            scorer.obs_dim(),
            "encoder window must match the scorer"
        );
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let slot = ScorerSlot::new(scorer.clone());
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            hist: Mutex::new(LatencyHistogram::new()),
            conns: Mutex::new(Vec::new()),
            conn_streams: Mutex::new(std::collections::HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let mut shard_txs = Vec::with_capacity(cfg.shards);
        let mut shard_threads = Vec::with_capacity(cfg.shards);
        for shard_id in 0..cfg.shards {
            let (tx, rx) = mpsc::sync_channel::<ShardRequest>(cfg.queue_depth);
            let slot = Arc::clone(&slot);
            let shared = Arc::clone(&shared);
            let window = cfg.coalesce_window;
            let cap = cfg.batch_cap;
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("rlsched-serve-shard-{shard_id}"))
                    .spawn(move || shard_loop(shard_id, rx, slot, shared, window, cap))?,
            );
            shard_txs.push(tx);
        }

        let accept = {
            let shared = Arc::clone(&shared);
            let shard_txs = shard_txs.clone();
            std::thread::Builder::new()
                .name("rlsched-serve-accept".to_string())
                .spawn(move || accept_loop(listener, encoder, shard_txs, shared))?
        };

        Ok(ServerHandle {
            addr,
            slot,
            shared,
            obs_dim: encoder.obs_dim(),
            n_actions: encoder.n_actions(),
            accept: Some(accept),
            shard_threads,
            _shard_txs: shard_txs,
        })
    }
}

/// A running server: address, stats, hot-swap, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    slot: Arc<ScorerSlot>,
    shared: Arc<Shared>,
    obs_dim: usize,
    n_actions: usize,
    accept: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    /// Keeps the shard inboxes alive until shutdown drops them.
    _shard_txs: Vec<SyncSender<ShardRequest>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Install new weights without dropping requests. The snapshot must
    /// come from an agent with the same observation window.
    pub fn swap_scorer(&self, scorer: ScorerSnapshot) {
        assert_eq!(scorer.obs_dim(), self.obs_dim, "hot-swap changed obs_dim");
        assert_eq!(
            scorer.n_actions(),
            self.n_actions,
            "hot-swap changed the action space"
        );
        self.slot.swap(scorer);
        self.shared.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregate serving statistics so far.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Stop accepting, drain the shards, join every thread. Returns the
    /// final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Unblock readers parked on idle connections; joined readers'
        // stream clones just error harmlessly.
        for s in self
            .shared
            .conn_streams
            .lock()
            .expect("stream list poisoned")
            .values()
        {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conn list poisoned"));
        for c in conns {
            let _ = c.join();
        }
        // Dropping the senders lets each shard drain and exit.
        self._shard_txs.clear();
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        self.shared.stats()
    }
}

fn accept_loop(
    listener: TcpListener,
    encoder: ObsEncoder,
    shard_txs: Vec<SyncSender<ShardRequest>>,
    shared: Arc<Shared>,
) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shard_txs = shard_txs.clone();
                let shared_c = Arc::clone(&shared);
                let conn = std::thread::Builder::new()
                    .name("rlsched-serve-conn".to_string())
                    .spawn(move || connection_loop(stream, encoder, shard_txs, shared_c));
                if let Ok(h) = conn {
                    // Reap finished connection threads while we are here
                    // so the handle list tracks live connections instead
                    // of growing with churn.
                    let mut conns = shared.conns.lock().expect("conn list poisoned");
                    let mut i = 0;
                    while i < conns.len() {
                        if conns[i].is_finished() {
                            let _ = conns.swap_remove(i).join();
                        } else {
                            i += 1;
                        }
                    }
                    conns.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept failures (ECONNABORTED from a client
                // resetting mid-handshake, EMFILE until fds free up, …)
                // must not kill the front door: back off and retry. A
                // genuinely dead listener just keeps erroring until
                // shutdown, which this loop survives too.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Per-connection reader: parse frames, validate, encode, route. A
/// sibling writer thread owns the response stream so shard replies and
/// front-door replies (shed/error/stats) interleave safely.
fn connection_loop(
    stream: TcpStream,
    encoder: ObsEncoder,
    shard_txs: Vec<SyncSender<ShardRequest>>,
    shared: Arc<Shared>,
) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        shared
            .conn_streams
            .lock()
            .expect("stream list poisoned")
            .insert(conn_id, clone);
    }
    let (reply_tx, reply_rx) = mpsc::channel::<Response>();
    let writer = std::thread::Builder::new()
        .name("rlsched-serve-write".to_string())
        .spawn(move || writer_loop(write_half, reply_rx));
    let mut reader = BufReader::new(stream);

    while !shared.shutdown.load(Ordering::Acquire) {
        let req: Request = match read_frame(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => break, // clean EOF
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Malformed frame: report and resync at the next line.
                let _ = reply_tx.send(Response::Error {
                    id: 0,
                    message: format!("bad frame: {e}"),
                });
                continue;
            }
            Err(_) => break,
        };
        handle_request(req, &encoder, &shard_txs, &shared, &reply_tx);
    }
    drop(reply_tx); // writer drains outstanding replies, then exits
    if let Ok(w) = writer {
        let _ = w.join();
    }
    // Release this connection's shutdown handle (and its fd).
    shared
        .conn_streams
        .lock()
        .expect("stream list poisoned")
        .remove(&conn_id);
}

fn handle_request(
    req: Request,
    encoder: &ObsEncoder,
    shard_txs: &[SyncSender<ShardRequest>],
    shared: &Arc<Shared>,
    reply_tx: &Sender<Response>,
) {
    let id = req.id();
    let (obs, mask, queue_len) = match req {
        Request::Stats { .. } => {
            let _ = reply_tx.send(Response::Stats {
                id,
                stats: shared.stats(),
            });
            return;
        }
        Request::Score { snapshot, .. } => {
            if snapshot.jobs.is_empty() || snapshot.queue_len() < snapshot.jobs.len() {
                let _ = reply_tx.send(Response::Error {
                    id,
                    message: "snapshot needs at least one job and queue_len >= jobs".into(),
                });
                return;
            }
            let mut obs = Vec::with_capacity(encoder.obs_dim());
            let mut mask = Vec::with_capacity(encoder.n_actions());
            encoder.encode_snapshot_extend(&snapshot, &mut obs, &mut mask);
            (obs, mask, snapshot.queue_len())
        }
        Request::ScoreRaw {
            obs,
            mask,
            queue_len,
            ..
        } => {
            if obs.len() != encoder.obs_dim() || mask.len() != encoder.n_actions() || queue_len == 0
            {
                let _ = reply_tx.send(Response::Error {
                    id,
                    message: format!(
                        "want obs[{}] mask[{}] queue_len>=1, got obs[{}] mask[{}] queue_len={}",
                        encoder.obs_dim(),
                        encoder.n_actions(),
                        obs.len(),
                        mask.len(),
                        queue_len
                    ),
                });
                return;
            }
            (obs, mask, queue_len as usize)
        }
    };
    let shard = route(id, shard_txs.len());
    let req = ShardRequest {
        id,
        obs,
        mask,
        queue_len,
        enqueued: Instant::now(),
        reply: reply_tx.clone(),
    };
    match shard_txs[shard].try_send(req) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            // Backpressure: answer immediately, drop the work.
            shared.shed.fetch_add(1, Ordering::Relaxed);
            let _ = reply_tx.send(Response::Shed { id });
        }
        Err(TrySendError::Disconnected(_)) => {
            let _ = reply_tx.send(Response::Error {
                id,
                message: "server shutting down".into(),
            });
        }
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<Response>) {
    let mut w = BufWriter::new(stream);
    while let Ok(resp) = rx.recv() {
        if write_frame(&mut w, &resp).is_err() {
            break;
        }
        use std::io::Write;
        if w.flush().is_err() {
            break;
        }
    }
}

/// One shard: block for a request, coalesce companions for up to
/// `window` (or until `cap` rows), score the stack in one forward,
/// reply per row, repeat. Exits when every sender is gone and the
/// queue is drained.
fn shard_loop(
    shard_id: usize,
    rx: Receiver<ShardRequest>,
    slot: Arc<ScorerSlot>,
    shared: Arc<Shared>,
    window: Duration,
    cap: usize,
) {
    let mut engine = ShardEngine::new(slot, cap);
    // Reply metadata for the rows currently in the engine, push order.
    let mut pending: Vec<(u64, Instant, Sender<Response>)> = Vec::with_capacity(cap);
    'serve: loop {
        let first = match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break 'serve,
        };
        let deadline = Instant::now() + window;
        engine.push_row(&first.obs, &first.mask, first.queue_len);
        pending.push((first.id, first.enqueued, first.reply));
        while !engine.is_full() {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok(r) => {
                    engine.push_row(&r.obs, &r.mask, r.queue_len);
                    pending.push((r.id, r.enqueued, r.reply));
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let rows = engine.pending() as u64;
        let actions = engine.flush();
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.max_batch.fetch_max(rows, Ordering::Relaxed);
        shared.served.fetch_add(rows, Ordering::Relaxed);
        {
            let mut hist = shared.hist.lock().expect("histogram poisoned");
            for (_, enqueued, _) in &pending {
                hist.record(enqueued.elapsed());
            }
        }
        for (&action, (id, _, reply)) in actions.iter().zip(pending.drain(..)) {
            // A dead client's writer is gone; dropping the reply is fine.
            let _ = reply.send(Response::Action {
                id,
                action: action as u64,
                shard: shard_id as u64,
            });
        }
    }
}
