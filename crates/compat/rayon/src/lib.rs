//! Offline shim for `rayon`: typed parallel-iterator combinators for the
//! patterns this workspace uses, executed with real `std::thread::scope`
//! fan-out.
//!
//! Supported shapes:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()`
//! * `slice.par_iter_mut().zip(other.par_iter()).map(f).collect::<Vec<_>>()`
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)`
//!
//! Work is partitioned into contiguous index ranges, one per worker
//! thread (`available_parallelism`, capped by item count); results are
//! stitched back in order, so `collect` preserves input order exactly
//! like rayon. Small inputs run inline to skip thread start-up cost.

use std::num::NonZeroUsize;

fn workers(n_items: usize) -> usize {
    if n_items < 2 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n_items)
}

/// Evenly split `n` items into `parts` contiguous ranges.
fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Parallel shared iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Parallel exclusive iterator over a slice.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

/// `par_iter_mut().zip(par_iter())`.
pub struct ParZip<'a, 'b, A, B> {
    left: &'a mut [A],
    right: &'b [B],
}

/// A mapped parallel iterator, ready to `collect`.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each `&T` through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { inner: self, f }
    }

    /// Zip with another shared parallel iterator of equal length.
    pub fn zip<'b, B>(self, other: ParIter<'b, B>) -> ParZipRef<'a, 'b, T, B> {
        assert_eq!(self.items.len(), other.items.len(), "zip length mismatch");
        ParZipRef {
            left: self.items,
            right: other.items,
        }
    }
}

/// `par_iter().zip(par_iter())`.
pub struct ParZipRef<'a, 'b, A, B> {
    left: &'a [A],
    right: &'b [B],
}

impl<'a, 'b, A: Sync, B: Sync> ParZipRef<'a, 'b, A, B> {
    /// Map each `(&A, &B)` pair through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn((&'a A, &'b B)) -> R + Sync,
        R: Send,
    {
        ParMap { inner: self, f }
    }
}

impl<'a, 'b, A: Send, B: Sync> ParZip<'a, 'b, A, B> {
    /// Map each `(&mut A, &B)` pair through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn((&'a mut A, &'b B)) -> R + Sync,
        R: Send,
    {
        ParMap { inner: self, f }
    }
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Zip with a shared parallel iterator of equal length.
    pub fn zip<'b, B>(self, other: ParIter<'b, B>) -> ParZip<'a, 'b, T, B> {
        assert_eq!(self.items.len(), other.items.len(), "zip length mismatch");
        ParZip {
            left: self.items,
            right: other.items,
        }
    }

    /// Map each `&mut T` through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(&'a mut T) -> R + Sync,
        R: Send,
    {
        ParMap { inner: self, f }
    }
}

/// Run `per_range` over each worker's index range on its own thread and
/// return the per-range outputs in range order.
fn fan_out<R, F>(n: usize, per_range: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let w = workers(n);
    if w <= 1 {
        return vec![per_range(0..n)];
    }
    let ranges = split_ranges(n, w);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(|| per_range(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

impl<'a, T, F, R> ParMap<ParIter<'a, T>, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Gather results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let items = self.inner.items;
        let f = &self.f;
        let parts = fan_out(items.len(), |range| {
            items[range].iter().map(f).collect::<Vec<R>>()
        });
        C::from(parts.into_iter().flatten().collect())
    }
}

impl<'a, 'b, A, B, F, R> ParMap<ParZipRef<'a, 'b, A, B>, F>
where
    A: Sync,
    B: Sync,
    F: Fn((&'a A, &'b B)) -> R + Sync,
    R: Send,
{
    /// Gather results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let (left, right) = (self.inner.left, self.inner.right);
        let f = &self.f;
        let parts = fan_out(left.len(), |range| {
            left[range.clone()]
                .iter()
                .zip(&right[range])
                .map(f)
                .collect::<Vec<R>>()
        });
        C::from(parts.into_iter().flatten().collect())
    }
}

impl<'a, 'b, A, B, F, R> ParMap<ParZip<'a, 'b, A, B>, F>
where
    A: Send,
    B: Sync,
    F: Fn((&'a mut A, &'b B)) -> R + Sync,
    R: Send,
{
    /// Gather results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let ParZip { left, right } = self.inner;
        let n = left.len();
        let f = &self.f;
        let w = workers(n);
        if w <= 1 {
            let out: Vec<R> = left.iter_mut().zip(right).map(f).collect();
            return C::from(out);
        }
        let ranges = split_ranges(n, w);
        // Split the &mut slice into disjoint chunks, one per worker.
        let mut chunks: Vec<&mut [A]> = Vec::with_capacity(w);
        let mut rest = left;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            chunks.push(head);
            rest = tail;
        }
        let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .zip(&ranges)
                .map(|(chunk, r)| {
                    let right = &right[r.clone()];
                    scope.spawn(move || chunk.iter_mut().zip(right).map(f).collect::<Vec<R>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        C::from(parts.into_iter().flatten().collect())
    }
}

/// Parallel exclusive chunk iterator.
pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    chunk: usize,
}

/// Enumerated form of [`ParChunksMut`].
pub struct EnumChunksMut<'a, T> {
    items: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attach chunk indices.
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut {
            items: self.items,
            chunk: self.chunk,
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

impl<'a, T: Send> EnumChunksMut<'a, T> {
    /// Apply `f` to every `(index, chunk)` in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk = self.chunk;
        assert!(chunk > 0, "chunk size must be positive");
        let n_chunks = self.items.len().div_ceil(chunk);
        let w = workers(n_chunks);
        if w <= 1 {
            for (i, c) in self.items.chunks_mut(chunk).enumerate() {
                f((i, c));
            }
            return;
        }
        let ranges = split_ranges(n_chunks, w);
        let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(w);
        let mut rest = self.items;
        for r in &ranges {
            let elems = (r.len() * chunk).min(rest.len());
            let (head, tail) = rest.split_at_mut(elems);
            parts.push((r.start, head));
            rest = tail;
        }
        let f = &f;
        std::thread::scope(|scope| {
            for (first_chunk, part) in parts {
                scope.spawn(move || {
                    for (i, c) in part.chunks_mut(chunk).enumerate() {
                        f((first_chunk + i, c));
                    }
                });
            }
        });
    }
}

/// Entry points, attached to slices and `Vec`s via extension traits.
pub mod prelude {
    use super::*;

    /// `par_iter` on shared slices.
    pub trait IntoParRefIterator<'a> {
        /// Shared item type.
        type Item: 'a;
        /// A parallel iterator of `&Item`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    /// `par_iter_mut` / `par_chunks_mut` on exclusive slices.
    pub trait IntoParMutIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// A parallel iterator of `&mut Item`.
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
        /// A parallel iterator of `&mut [Item]` chunks of length `chunk`
        /// (last one possibly shorter).
        fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, Self::Item>;
    }

    impl<'a, T: 'a> IntoParRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: 'a> IntoParRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: 'a> IntoParMutIterator<'a> for [T] {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { items: self }
        }
        fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, T> {
            ParChunksMut { items: self, chunk }
        }
    }

    impl<'a, T: 'a> IntoParMutIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { items: self }
        }
        fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, T> {
            ParChunksMut { items: self, chunk }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_mut_mutates_and_collects_in_order() {
        let mut xs: Vec<u64> = vec![0; 500];
        let seeds: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = xs
            .par_iter_mut()
            .zip(seeds.par_iter())
            .map(|(x, &s)| {
                *x = s + 1;
                s * 10
            })
            .collect();
        assert_eq!(out, (0..500).map(|s| s * 10).collect::<Vec<_>>());
        assert_eq!(xs, (1..=500).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_enumerated() {
        let mut xs = vec![0u32; 103];
        xs.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i as u32;
            }
        });
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(v, (i / 10) as u32);
        }
    }

    #[test]
    fn single_and_empty_inputs() {
        let xs: Vec<u32> = vec![];
        let ys: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
        let one = [7u32];
        let ys: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![8]);
    }

    #[test]
    fn zip_ref_map_collect() {
        let a: Vec<u32> = (0..64).collect();
        let b: Vec<u32> = (0..64).map(|x| x * 3).collect();
        let out: Vec<u32> = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| x + y)
            .collect();
        assert_eq!(out, (0..64).map(|x| x * 4).collect::<Vec<_>>());
    }
}
