//! Sampling helpers shared by the workload generators.

use rand::Rng;
use rand_distr::{Distribution, Gamma, LogNormal};

/// The two-stage uniform of the Lublin–Feitelson model: with probability
/// `prob` draw uniformly from `[low, med]`, otherwise from `[med, high]`.
/// Used for log2 of the job size (most jobs are small; a tail is large).
pub fn two_stage_uniform<R: Rng + ?Sized>(
    low: f64,
    med: f64,
    high: f64,
    prob: f64,
    rng: &mut R,
) -> f64 {
    debug_assert!(low <= med && med <= high && (0.0..=1.0).contains(&prob));
    if rng.gen::<f64>() < prob {
        rng.gen_range(low..=med)
    } else {
        rng.gen_range(med..=high)
    }
}

/// A hyper-gamma distribution: a two-component gamma mixture whose mixing
/// weight can depend on the job size (larger jobs run longer in the Lublin
/// model — the `p = pa·n + pb` coupling of [18]).
#[derive(Debug, Clone)]
pub struct HyperGamma {
    g1: Gamma<f64>,
    g2: Gamma<f64>,
}

impl HyperGamma {
    /// Build from the two components' (shape, scale) pairs.
    pub fn new(shape1: f64, scale1: f64, shape2: f64, scale2: f64) -> Self {
        HyperGamma {
            g1: Gamma::new(shape1, scale1).expect("valid gamma-1 parameters"),
            g2: Gamma::new(shape2, scale2).expect("valid gamma-2 parameters"),
        }
    }

    /// Sample with first-component probability `p` (clamped to [0, 1]).
    pub fn sample<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < p.clamp(0.0, 1.0) {
            self.g1.sample(rng)
        } else {
            self.g2.sample(rng)
        }
    }
}

/// A lognormal parameterized by the target mean and coefficient of
/// variation of the *resulting* distribution (not of the underlying
/// normal), which is how trace moments are naturally specified.
#[derive(Debug, Clone, Copy)]
pub struct LogNormalByMoments {
    inner: LogNormal<f64>,
}

impl LogNormalByMoments {
    /// `mean` must be positive; `cv` (σ/μ) must be non-negative.
    pub fn new(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "lognormal mean must be positive");
        assert!(cv >= 0.0, "coefficient of variation must be non-negative");
        // For X ~ LogNormal(mu, sigma): E X = exp(mu + sigma^2/2),
        // CV^2 = exp(sigma^2) - 1  =>  sigma^2 = ln(1 + CV^2).
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormalByMoments {
            inner: LogNormal::new(mu, sigma2.sqrt()).expect("finite lognormal parameters"),
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng)
    }
}

/// Round a runtime request up to a "human" figure: users ask for round
/// numbers (15-minute multiples under 4 hours, hour multiples above).
/// Quantized requests create the ragged backfilling holes real schedulers
/// see.
pub fn quantize_request(seconds: f64) -> f64 {
    let s = seconds.max(60.0);
    let step = if s <= 4.0 * 3600.0 { 900.0 } else { 3600.0 };
    (s / step).ceil() * step
}

/// Round a sampled size to an allowed allocation: with probability
/// `pow2_prob` snap to the nearest power of two (SWF traces are dominated
/// by power-of-two requests), otherwise round to the nearest integer.
pub fn round_size<R: Rng + ?Sized>(raw: f64, pow2_prob: f64, max: u32, rng: &mut R) -> u32 {
    let raw = raw.max(1.0);
    let n = if rng.gen::<f64>() < pow2_prob {
        let log = raw.log2().round().max(0.0);
        2f64.powf(log)
    } else {
        raw.round()
    };
    (n as u32).clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn two_stage_uniform_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = two_stage_uniform(1.0, 3.0, 8.0, 0.7, &mut r);
            assert!((1.0..=8.0).contains(&x));
        }
    }

    #[test]
    fn two_stage_uniform_mixes_with_prob() {
        let mut r = rng();
        let lows = (0..20000)
            .filter(|_| two_stage_uniform(0.0, 1.0, 2.0, 0.75, &mut r) <= 1.0)
            .count();
        let frac = lows as f64 / 20000.0;
        assert!((frac - 0.75).abs() < 0.02, "low-stage fraction {frac}");
    }

    #[test]
    fn hyper_gamma_interpolates_between_components() {
        let mut r = rng();
        let hg = HyperGamma::new(4.0, 1.0, 100.0, 1.0); // means 4 and 100
        let m = |p: f64, r: &mut StdRng| (0..20000).map(|_| hg.sample(p, r)).sum::<f64>() / 20000.0;
        let m1 = m(1.0, &mut r);
        let m0 = m(0.0, &mut r);
        let mh = m(0.5, &mut r);
        assert!((m1 - 4.0).abs() < 0.5, "p=1 mean {m1}");
        assert!((m0 - 100.0).abs() < 2.0, "p=0 mean {m0}");
        assert!((mh - 52.0).abs() < 4.0, "p=0.5 mean {mh}");
    }

    #[test]
    fn hyper_gamma_clamps_p() {
        let mut r = rng();
        let hg = HyperGamma::new(4.0, 1.0, 100.0, 1.0);
        // p outside [0,1] must not panic.
        let _ = hg.sample(-0.5, &mut r);
        let _ = hg.sample(1.5, &mut r);
    }

    #[test]
    fn lognormal_hits_requested_moments() {
        let mut r = rng();
        let d = LogNormalByMoments::new(500.0, 2.0);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!(
            (mean - 500.0).abs() / 500.0 < 0.05,
            "sampled mean {mean} vs target 500"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lognormal_rejects_nonpositive_mean() {
        let _ = LogNormalByMoments::new(0.0, 1.0);
    }

    #[test]
    fn quantize_request_rounds_up_to_human_figures() {
        assert_eq!(quantize_request(1.0), 900.0);
        assert_eq!(quantize_request(900.0), 900.0);
        assert_eq!(quantize_request(901.0), 1800.0);
        assert_eq!(quantize_request(5.0 * 3600.0), 5.0 * 3600.0);
        assert_eq!(quantize_request(5.0 * 3600.0 + 1.0), 6.0 * 3600.0);
    }

    #[test]
    fn quantized_request_never_shrinks() {
        let mut r = rng();
        for _ in 0..1000 {
            let t: f64 = r.gen_range(60.0..1e5);
            assert!(quantize_request(t) >= t);
        }
    }

    #[test]
    fn round_size_within_bounds_and_pow2_bias() {
        let mut r = rng();
        let mut pow2 = 0;
        for _ in 0..2000 {
            let s = round_size(11.3, 0.8, 64, &mut r);
            assert!((1..=64).contains(&s));
            if s.is_power_of_two() {
                pow2 += 1;
            }
        }
        // ~80% snap to 8 or 16; a few non-pow2 roundings of 11.3 -> 11.
        assert!(pow2 as f64 / 2000.0 > 0.7);
    }

    #[test]
    fn round_size_clamps_to_max() {
        let mut r = rng();
        assert_eq!(round_size(1e9, 0.5, 128, &mut r), 128);
        assert_eq!(round_size(0.0, 0.5, 128, &mut r), 1);
    }
}
