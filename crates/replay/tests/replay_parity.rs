//! The replay engine's decisions are bit-identical to the materialized
//! path, head for head: heuristic replays match `PriorityScheduler`
//! episodes, agent replays match `Agent::as_policy` episodes, and
//! served replays match the in-process agent (the serving tier's own
//! parity guarantee composes).

use rlsched_replay::{collect_timed_requests, RemoteDecider, ReplayEngine, ReplayPolicy};
use rlsched_sched::{HeuristicKind, PriorityScheduler};
use rlsched_serve::{LoadGen, LoadGenConfig, ServeConfig, Server};
use rlsched_sim::{run_episode, MetricKind, SimConfig};
use rlsched_workload::{LublinModel, LublinParams};
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind};

fn lublin() -> LublinModel {
    LublinModel::new(LublinParams::lublin1())
}

fn small_agent(seed: u64) -> Agent {
    Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 16,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: Default::default(),
        seed,
    })
}

#[test]
fn heuristic_replay_matches_materialized_episode() {
    let model = lublin();
    let trace = model.generate(400, 11);
    for cfg in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
        for kind in HeuristicKind::table3() {
            let want = run_episode(&trace, cfg, &mut PriorityScheduler::new(kind)).unwrap();
            let mut engine = ReplayEngine::new(model.stream(400, 11), trace.max_procs(), cfg)
                .unwrap()
                .with_outcome_log();
            let mut policy: ReplayPolicy = ReplayPolicy::Heuristic(kind);
            let report = engine.run(&mut policy).unwrap();
            assert_eq!(
                engine.log_metrics().unwrap(),
                want,
                "{} diverged under {cfg:?}",
                kind.name()
            );
            // Backfill starts jobs without consulting the policy, so
            // decisions ≤ jobs; every job must still start and finish.
            assert_eq!(report.metrics.count(), trace.len() as u64);
            assert!(report.decisions <= trace.len() as u64);
            assert_eq!(report.hist.count(), report.decisions);
            assert!(report.peak_queue < trace.len());
        }
    }
}

#[test]
fn agent_replay_matches_as_policy_episode() {
    let model = lublin();
    let trace = model.generate(250, 5);
    let agent = small_agent(5);
    let cfg = SimConfig::with_backfill();
    let want = run_episode(&trace, cfg, &mut agent.as_policy()).unwrap();
    let mut engine = ReplayEngine::new(model.stream(250, 5), trace.max_procs(), cfg)
        .unwrap()
        .with_outcome_log();
    let mut policy: ReplayPolicy = ReplayPolicy::Agent(agent.stream_decider());
    let report = engine.run(&mut policy).unwrap();
    assert_eq!(engine.log_metrics().unwrap(), want);
    assert_eq!(report.metrics.count(), trace.len() as u64);
}

#[test]
fn served_replay_matches_in_process_agent() {
    let model = lublin();
    let trace = model.generate(150, 23);
    let agent = small_agent(23);
    let cfg = SimConfig::with_backfill();
    let window = 16;

    // In-process arm.
    let mut local = ReplayEngine::new(model.stream(150, 23), trace.max_procs(), cfg)
        .unwrap()
        .with_outcome_log();
    let mut local_policy: ReplayPolicy = ReplayPolicy::Agent(agent.stream_decider());
    local.run(&mut local_policy).unwrap();

    // Over-the-wire arm against a live server with the same weights.
    let handle = Server::spawn(
        agent.scorer_snapshot(),
        *agent.encoder(),
        ServeConfig::default(),
    )
    .unwrap();
    let client = handle.connect().unwrap();
    let mut remote = ReplayEngine::new(model.stream(150, 23), trace.max_procs(), cfg)
        .unwrap()
        .with_outcome_log();
    let mut policy = ReplayPolicy::Remote(
        RemoteDecider::new(client, window).with_local_fallback(HeuristicKind::Sjf),
    );
    let report = remote.run(&mut policy).unwrap();
    handle.shutdown();

    assert_eq!(remote.log_metrics().unwrap(), local.log_metrics().unwrap());
    let ReplayPolicy::Remote(dec) = policy else {
        unreachable!()
    };
    assert_eq!(dec.local_decisions(), 0, "no decision fell back locally");
    assert_eq!(dec.remote_fallbacks(), 0);
    assert_eq!(report.metrics.count(), trace.len() as u64);
}

#[test]
fn replayed_arrivals_drive_the_load_generator() {
    let model = lublin();
    let trace = model.generate(60, 7);
    let requests = collect_timed_requests(
        model.stream(60, 7),
        trace.max_procs(),
        SimConfig::with_backfill(),
        HeuristicKind::Fcfs,
        16,
    )
    .unwrap();
    assert!(!requests.is_empty() && requests.len() <= 60);
    assert!(requests.windows(2).all(|w| w[0].offset <= w[1].offset));

    let agent = small_agent(7);
    let handle = Server::spawn(
        agent.scorer_snapshot(),
        *agent.encoder(),
        ServeConfig::default(),
    )
    .unwrap();
    let gen = LoadGen::to(
        handle.server_addr(),
        LoadGenConfig {
            workers: 2,
            time_scale: 1e-9,
            ..Default::default()
        },
    );
    let report = gen.run(&requests).unwrap();
    handle.shutdown();
    assert_eq!(report.sent(), requests.len() as u64);
    assert_eq!(report.errors, 0);
}
