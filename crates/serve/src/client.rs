//! The resilient blocking client, plus [`RemotePolicy`]: a
//! [`rlsched_sim::Policy`] whose every decision goes over the wire —
//! plug it into `run_episode` and the simulator schedules through the
//! serving tier exactly as it would through `Agent::as_policy` (the
//! parity suite pins that the decisions are bit-identical).
//!
//! The client is generic over the [`Transport`] (TCP by default, Unix
//! domain sockets via [`ServeClient::connect_uds`]) and speaks either
//! wire format ([`WireProtocol`]); the format is chosen per client —
//! the server sniffs it per frame, so no handshake exists. All frame
//! buffers (outgoing bytes, incoming payload/line, the decoded
//! response) are owned by the client and reused across requests, so a
//! binary `score_raw` round trip is allocation-free at steady state.
//!
//! ## Resilience model
//!
//! Every call returns `Result<_, `[`ClientError`]`>` — the client never
//! panics on transport trouble. A broken connection (reset, torn
//! response frame, server restart) is torn down and re-dialed with
//! capped exponential backoff and seeded jitter, and the request is
//! **resent with the same id**: scoring is deterministic and
//! side-effect-free, and the dead connection can no longer deliver a
//! duplicate response, so the retry is safe. A configured deadline
//! bounds the whole attempt train — the budget spans connects, writes,
//! reads, and backoff sleeps, not each attempt separately.
//!
//! Frame-level corruption is never resynced past mid-stream: a frame
//! that fails to parse means the reader's byte position can no longer
//! be trusted, so the connection is dropped and the request retried on
//! a fresh one.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use rlsched_obs::RegistrySnapshot;
use rlsched_sched::{select_parts, HeuristicKind};
use rlsched_sim::{Policy, QueueView};
use rlscheduler::QueueSnapshot;

use crate::protocol::{
    encode_binary_frame, encode_json_frame, encode_score_raw_frame, read_frame_any_into, Request,
    Response, ServeStats, ServedBy, WireFrame, WireProtocol,
};
use crate::transport::{wire_env, AnyStream, ServerAddr, Transport};

/// Why a client call failed. Every request resolves to exactly one of:
/// a [`Decision`], or one of these.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure that survived the retry budget.
    Io(std::io::Error),
    /// The request deadline expired (connects, retries, and backoff
    /// included).
    Deadline,
    /// The server answered, but not with something usable: a protocol
    /// violation, an unparseable frame, or a [`Response::Error`] report
    /// (whose message this carries).
    Protocol(String),
    /// The server shed the request and no fallback was configured
    /// server-side. The caller should decide locally.
    Shed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed after retries: {e}"),
            ClientError::Deadline => write!(f, "request deadline expired"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Shed => write!(f, "request shed by the server"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// One resolved scoring decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The chosen queue position (`< queue_len`).
    pub action: usize,
    /// The shard that answered.
    pub shard: u64,
    /// Whether the model or the server-side heuristic fallback decided.
    pub served_by: ServedBy,
}

/// Client resilience knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Total budget for one logical request, retries and backoff
    /// included. `None` blocks indefinitely (the pre-resilience
    /// behavior).
    pub deadline: Option<Duration>,
    /// Reconnect-and-resend attempts after the first try fails.
    pub max_retries: u32,
    /// Base reconnect backoff; doubles per retry.
    pub backoff: Duration,
    /// Upper bound on the backoff (before jitter halves it at random).
    pub backoff_cap: Duration,
    /// Jitter seed. Two clients with different seeds won't thunder in
    /// lockstep; the same seed replays the same jitter sequence.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            deadline: None,
            max_retries: 3,
            backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
            seed: 0x5eed,
        }
    }
}

struct Conn<S: Transport> {
    reader: BufReader<S>,
    writer: S,
}

/// A synchronous, single-in-flight client over one connection, with
/// transparent reconnect (see the module docs). Generic over the
/// stream type; `ServeClient` with no type argument is the TCP client.
///
/// Request ids increment from `id_base`, so a client's requests route
/// deterministically (and distinct `id_base`s spread clients across
/// shards).
pub struct ServeClient<S: Transport = TcpStream> {
    peer: S::Addr,
    conn: Option<Conn<S>>,
    next_id: u64,
    cfg: ClientConfig,
    jitter: u64,
    proto: WireProtocol,
    /// Encoded outgoing frame, reused across requests.
    wire: Vec<u8>,
    /// Incoming binary payload scratch.
    payload: Vec<u8>,
    /// Incoming JSON line scratch.
    line: String,
    /// The last decoded response; decode-into reuses its buffers.
    resp: Response,
}

impl ServeClient<TcpStream> {
    /// Connect to a serving tier over TCP (fails fast when it is
    /// unreachable; later reconnects are automatic).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = addr
            .to_socket_addrs()?
            .find_map(|a| TcpStream::connect(a).ok().map(|s| (a, s)));
        let Some((peer, stream)) = stream else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "no resolvable address accepted the connection",
            ));
        };
        Self::from_parts(peer, stream)
    }
}

#[cfg(unix)]
impl ServeClient<UnixStream> {
    /// Connect over a Unix domain socket.
    pub fn connect_uds(path: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let peer: std::path::PathBuf = path.into();
        let stream = UnixStream::connect(&peer)?;
        Self::from_parts(peer, stream)
    }
}

impl ServeClient<AnyStream> {
    /// Connect to whichever transport the server bound (see
    /// `ServerHandle::server_addr`).
    pub fn connect_any(addr: &ServerAddr) -> std::io::Result<Self> {
        let stream = AnyStream::dial(addr)?;
        Self::from_parts(addr.clone(), stream)
    }
}

impl<S: Transport> ServeClient<S> {
    /// Dial a transport-typed peer address directly.
    pub fn dial(peer: S::Addr) -> std::io::Result<Self> {
        let stream = S::dial(&peer)?;
        Self::from_parts(peer, stream)
    }

    fn from_parts(peer: S::Addr, stream: S) -> std::io::Result<Self> {
        stream.tune();
        let writer = stream.try_clone()?;
        let cfg = ClientConfig::default();
        Ok(ServeClient {
            peer,
            conn: Some(Conn {
                reader: BufReader::new(stream),
                writer,
            }),
            next_id: 0,
            jitter: cfg.seed | 1,
            cfg,
            proto: wire_env().protocol,
            wire: Vec::new(),
            payload: Vec::new(),
            line: String::new(),
            resp: Response::scratch(),
        })
    }

    /// Start the request-id stream at `base` (shard-routing key).
    pub fn with_id_base(mut self, base: u64) -> Self {
        self.next_id = base;
        self
    }

    /// Replace the resilience knobs.
    pub fn with_config(mut self, cfg: ClientConfig) -> Self {
        self.jitter = cfg.seed | 1;
        self.cfg = cfg;
        self
    }

    /// Speak this wire format (default: `RLSCHED_WIRE` env pin, else
    /// JSON). No handshake — the server sniffs every frame.
    pub fn with_protocol(mut self, proto: WireProtocol) -> Self {
        self.proto = proto;
        self
    }

    /// The wire format this client writes.
    pub fn protocol(&self) -> WireProtocol {
        self.proto
    }

    fn next_jitter(&mut self) -> u64 {
        // xorshift64: deterministic per-client jitter stream.
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        x
    }

    /// Write `self.wire` + read the matching-id response into
    /// `self.resp` on the current connection. Any error leaves the
    /// reader's byte position untrustworthy, so the caller must tear
    /// the connection down before retrying.
    fn attempt(&mut self, want: u64, io_deadline: Option<Duration>) -> std::io::Result<()> {
        if self.conn.is_none() {
            let stream = S::dial(&self.peer)?;
            stream.tune();
            let writer = stream.try_clone()?;
            self.conn = Some(Conn {
                reader: BufReader::new(stream),
                writer,
            });
        }
        let conn = self.conn.as_mut().expect("just ensured");
        // Bound each blocking read/write by the remaining budget (None
        // blocks, matching a deadline-less config).
        conn.reader.get_ref().set_read_timeout(io_deadline)?;
        conn.writer.set_write_timeout(io_deadline)?;
        conn.writer.write_all(&self.wire)?;
        loop {
            let got = read_frame_any_into(
                &mut conn.reader,
                &mut self.payload,
                &mut self.line,
                &mut self.resp,
            )?;
            if got.is_none() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed",
                ));
            }
            // Single in-flight per client: the next frame is ours (id 0
            // frames are parse-error reports for garbage we never sent).
            if self.resp.id() == want {
                return Ok(());
            }
        }
    }

    /// Run the already-encoded request in `self.wire` to resolution:
    /// attempt, and on transport failure reconnect (capped backoff +
    /// jitter) and resend **the same id** — deterministic scoring makes
    /// the replay idempotent, and the torn-down connection cannot
    /// deliver a duplicate. On success the response is in `self.resp`.
    fn roundtrip(&mut self, want: u64) -> Result<(), ClientError> {
        let start = Instant::now();
        let remaining =
            |start: Instant, cfg: &ClientConfig| -> Result<Option<Duration>, ClientError> {
                match cfg.deadline {
                    None => Ok(None),
                    Some(d) => d
                        .checked_sub(start.elapsed())
                        .filter(|r| !r.is_zero())
                        .map(Some)
                        .ok_or(ClientError::Deadline),
                }
            };
        let mut retries = 0u32;
        loop {
            let budget = remaining(start, &self.cfg)?;
            match self.attempt(want, budget) {
                Ok(()) => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // The frame parsed wrong: mid-stream resync is not
                    // safe, and a replay would hit the same bug. Drop
                    // the connection and report.
                    self.conn = None;
                    return Err(ClientError::Protocol(e.to_string()));
                }
                Err(e) => {
                    self.conn = None;
                    let timed_out = matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    );
                    if timed_out && self.cfg.deadline.is_some() {
                        return Err(ClientError::Deadline);
                    }
                    if retries >= self.cfg.max_retries {
                        return Err(ClientError::Io(e));
                    }
                    retries += 1;
                    let shift = (retries - 1).min(16);
                    let backoff = self
                        .cfg
                        .backoff
                        .saturating_mul(1u32 << shift)
                        .min(self.cfg.backoff_cap);
                    // Jitter: uniform in [backoff/2, backoff].
                    let half = backoff / 2;
                    let jit_ns = half.as_nanos() as u64;
                    let jitter = Duration::from_nanos(if jit_ns == 0 {
                        0
                    } else {
                        self.next_jitter() % (jit_ns + 1)
                    });
                    let mut sleep = half + jitter;
                    if let Some(rem) = remaining(start, &self.cfg)? {
                        sleep = sleep.min(rem);
                    }
                    std::thread::sleep(sleep);
                }
            }
        }
    }

    /// Encode `req` into `self.wire` in the configured format.
    fn encode_request(&mut self, req: &Request) -> Result<(), ClientError> {
        match self.proto {
            WireProtocol::Json => encode_json_frame(req, &mut self.wire)
                .map_err(|e| ClientError::Protocol(e.to_string())),
            WireProtocol::Binary => {
                encode_binary_frame(req, &mut self.wire);
                Ok(())
            }
        }
    }

    fn decision(&self) -> Result<Decision, ClientError> {
        match &self.resp {
            Response::Action {
                action,
                shard,
                served_by,
                ..
            } => Ok(Decision {
                action: *action as usize,
                shard: *shard,
                served_by: *served_by,
            }),
            Response::Shed { .. } => Err(ClientError::Shed),
            Response::Error { message, .. } => Err(ClientError::Protocol(message.clone())),
            Response::Stats { .. } | Response::Metrics { .. } => Err(ClientError::Protocol(
                "stats/metrics response to a score request".into(),
            )),
        }
    }

    /// Score a queue snapshot (the server runs the encoder).
    pub fn score_snapshot(&mut self, snapshot: &QueueSnapshot) -> Result<Decision, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request::Score {
            id,
            snapshot: snapshot.clone(),
        };
        self.encode_request(&req)?;
        self.roundtrip(id)?;
        self.decision()
    }

    /// Score a pre-encoded observation row. On the binary protocol the
    /// rows go onto the wire as contiguous byte slices straight from
    /// the borrowed arguments — no intermediate `Request`, no clones,
    /// no allocation once the frame buffer is warm.
    pub fn score_raw(
        &mut self,
        obs: &[f32],
        mask: &[f32],
        queue_len: usize,
    ) -> Result<Decision, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.proto {
            WireProtocol::Binary => {
                encode_score_raw_frame(&mut self.wire, id, obs, mask, queue_len as u64);
            }
            WireProtocol::Json => {
                let req = Request::ScoreRaw {
                    id,
                    obs: obs.to_vec(),
                    mask: mask.to_vec(),
                    queue_len: queue_len as u64,
                };
                self.encode_request(&req)?;
            }
        }
        self.roundtrip(id)?;
        self.decision()
    }

    /// Fetch the server's aggregate statistics.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.encode_request(&Request::Stats { id })?;
        self.roundtrip(id)?;
        match &self.resp {
            Response::Stats { stats, .. } => Ok(stats.clone()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Scrape the server's full metrics registry (every counter, gauge,
    /// and histogram — see `rlsched-obs` for the naming scheme). The
    /// returned snapshot renders as text via `rlsched_obs::encode_text`.
    pub fn metrics(&mut self) -> Result<RegistrySnapshot, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.encode_request(&Request::Metrics { id })?;
        self.roundtrip(id)?;
        match &self.resp {
            Response::Metrics { metrics, .. } => Ok(metrics.clone()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }
}

/// A simulator policy that asks the serving tier for every decision.
///
/// With a local fallback configured
/// ([`RemotePolicy::with_local_fallback`]), a shed or a transport
/// failure that survived the client's retry budget is answered by the
/// local heuristic — the same kind-for-kind decision the server-side
/// fallback arm computes — and counted. Without one, a shed schedules
/// the head of the queue (FCFS) and a transport failure panics: a
/// scheduling loop cannot silently skip decisions.
pub struct RemotePolicy<S: Transport = TcpStream> {
    client: ServeClient<S>,
    /// Snapshot truncation window (the encoder's `max_obsv`).
    window: usize,
    local_fallback: Option<HeuristicKind>,
    name: String,
    sheds: u64,
    local_decisions: u64,
    remote_decisions: u64,
    remote_fallbacks: u64,
}

impl<S: Transport> RemotePolicy<S> {
    /// Wrap a connected client. `window` must equal the serving agent's
    /// observation window.
    pub fn new(client: ServeClient<S>, window: usize) -> Self {
        RemotePolicy {
            client,
            window,
            local_fallback: None,
            name: "RL-remote".to_string(),
            sheds: 0,
            local_decisions: 0,
            remote_decisions: 0,
            remote_fallbacks: 0,
        }
    }

    /// Answer sheds *and* exhausted-retry transport failures with this
    /// local heuristic instead of panicking. Must be wire-scorable.
    pub fn with_local_fallback(mut self, kind: HeuristicKind) -> Self {
        assert!(
            kind.wire_scorable(),
            "{} is not computable from a decision-point view",
            kind.name()
        );
        self.local_fallback = Some(kind);
        self
    }

    /// Decisions the server shed (answered locally).
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Decisions answered by the local heuristic (sheds + transport
    /// failures, when a local fallback is configured).
    pub fn local_decisions(&self) -> u64 {
        self.local_decisions
    }

    /// Decisions the server answered (model or fallback arm) — the
    /// client-side count the server's `rlsched_serve_served_total` /
    /// `…_fallbacks_total` registry counters must add up to.
    pub fn remote_decisions(&self) -> u64 {
        self.remote_decisions
    }

    /// Decisions the *server* answered via its fallback arm.
    pub fn remote_fallbacks(&self) -> u64 {
        self.remote_fallbacks
    }

    /// Recover the client (e.g. to query stats after an episode).
    pub fn into_client(self) -> ServeClient<S> {
        self.client
    }

    fn decide_locally(&mut self, snap: &QueueSnapshot) -> usize {
        self.local_decisions += 1;
        match self.local_fallback {
            Some(kind) => select_parts(
                kind,
                snap.jobs.iter().map(|j| (j.wait, j.time_bound, j.procs)),
            )
            .unwrap_or(0),
            None => 0, // FCFS: schedule the head of the queue
        }
    }
}

impl<S: Transport> Policy for RemotePolicy<S> {
    fn select(&mut self, view: &QueueView<'_>) -> usize {
        let snap = QueueSnapshot::from_view(view, self.window);
        let bound = view.waiting.len().saturating_sub(1);
        match self.client.score_snapshot(&snap) {
            Ok(d) => {
                self.remote_decisions += 1;
                if d.served_by == ServedBy::Fallback {
                    self.remote_fallbacks += 1;
                }
                d.action.min(bound)
            }
            Err(ClientError::Shed) => {
                self.sheds += 1;
                self.decide_locally(&snap).min(bound)
            }
            Err(e) => {
                if self.local_fallback.is_some() {
                    self.decide_locally(&snap).min(bound)
                } else {
                    panic!("serving tier unreachable mid-episode: {e}")
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}
