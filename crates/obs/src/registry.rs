//! The metrics registry: named, labeled handles over lock-free storage.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a mutex and may
//! allocate — it happens at wiring time (server spawn, train start),
//! not on hot paths. The returned handles are `Arc`-backed and cheap to
//! clone; *recording* through them is one or two relaxed atomic RMWs
//! and never allocates, which the alloc-regression suite pins.
//!
//! Registration is idempotent: asking for the same `(name, labels)`
//! again returns a handle over the **same** storage. That is what makes
//! counters monotone across shard respawns — a revived worker re-wires
//! the same metric and keeps counting where its predecessor stopped.
//!
//! [`Registry::snapshot`] reads every metric once into a
//! [`RegistrySnapshot`] — a plain, serde-serializable value that
//! crosses the wire (`Request::Metrics` in `rlsched-serve`) and feeds
//! the text exposition encoder ([`encode_text`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::histogram::{bucket_upper, AtomicHistogramCore};

/// A monotonically increasing counter. Clones share storage.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter not attached to any registry (useful in
    /// tests and benches).
    pub fn standalone() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add 1. Never allocates.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`. Never allocates.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge. Clones share storage.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A free-standing gauge not attached to any registry.
    pub fn standalone() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Set the gauge. Never allocates.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) via CAS. Never allocates.
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raise the gauge to `v` if above the current value. Only valid
    /// for non-negative values (the IEEE-754 bit pattern of
    /// non-negative floats orders like the integers, so a single
    /// `fetch_max` suffices). Never allocates.
    #[inline]
    pub fn set_max(&self, v: f64) {
        debug_assert!(
            v >= 0.0,
            "Gauge::set_max is defined for non-negative values"
        );
        self.0.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A striped lock-free duration histogram on the shared log-linear
/// bucket axis (see [`crate::histogram`]). Clones share storage.
#[derive(Clone)]
pub struct Histogram(Arc<AtomicHistogramCore>);

impl Histogram {
    /// A free-standing histogram not attached to any registry.
    pub fn standalone() -> Self {
        Histogram(Arc::new(AtomicHistogramCore::new()))
    }

    /// Record one duration. Two relaxed RMWs; never allocates.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.0.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record a raw value on the nanosecond axis (also used for
    /// dimensionless sizes such as coalesce batch rows).
    #[inline]
    pub fn record_value(&self, v: u64) {
        self.0.record_ns(v);
    }

    /// Read the current contents without stopping writers.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("p50_ns", &snap.quantile_ns(0.5))
            .field("p99_ns", &snap.quantile_ns(0.99))
            .field("max_ns", &snap.max_ns)
            .finish()
    }
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// A metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*` (the Prometheus grammar).
fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A label key: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_key(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Registration key: metric name plus its sorted label pairs.
type SeriesKey = (String, Vec<(String, String)>);

/// An instance-scoped metrics registry. Servers own one each (so tests
/// spawning several servers in one process see isolated counters); the
/// trainer and replay engine default to the process-wide [`global`]
/// registry. See the module docs for the registration/recording cost
/// split.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<SeriesKey, Handle>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register<F>(&self, name: &str, labels: &[(&str, &str)], make: F) -> Handle
    where
        F: FnOnce() -> Handle,
    {
        assert!(valid_name(name), "invalid metric name `{name}`");
        for (k, _) in labels {
            assert!(valid_label_key(k), "invalid label key `{k}` on `{name}`");
        }
        let key = (
            name.to_string(),
            labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        );
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        map.entry(key).or_insert_with(make).clone()
    }

    /// Register (or re-attach to) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, labels, || Handle::Counter(Counter::standalone())) {
            Handle::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Register (or re-attach to) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, labels, || Handle::Gauge(Gauge::standalone())) {
            Handle::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Register (or re-attach to) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, labels, || Handle::Histogram(Histogram::standalone())) {
            Handle::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Read every metric once into a plain snapshot, sorted by
    /// `(name, labels)`. Writers are never blocked; each individual
    /// metric is read atomically (a histogram's total equals the sum of
    /// its bucket reads by construction).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        RegistrySnapshot {
            metrics: map
                .iter()
                .map(|((name, labels), handle)| MetricSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match handle {
                        Handle::Counter(c) => MetricValue::Counter(c.get()),
                        Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                        Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        f.debug_struct("Registry")
            .field("metrics", &map.len())
            .finish()
    }
}

/// The process-wide default registry (used by the trainer and the
/// replay engine; servers carry their own for isolation).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One metric's value at scrape time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

/// A sparse histogram read: only non-empty buckets, as
/// `(bucket_index, count)` pairs sorted by index. `count` always equals
/// the sum of the bucket counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub max_ns: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ [0, 1]` (bucket upper bound, capped
    /// at the observed max; 0 when empty) — same semantics as
    /// [`LatencyHistogram::quantile_ns`](crate::LatencyHistogram::quantile_ns).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_upper(i as usize).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Fold another snapshot into this one (sparse element-wise merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One named, labeled metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

/// A full registry read: every metric, sorted by `(name, labels)`.
/// Serializable over both wire formats of `rlsched-serve`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RegistrySnapshot {
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// The counter with exactly these labels, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.find(name, labels).and_then(|m| match m.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        })
    }

    /// The gauge with exactly these labels, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.find(name, labels).and_then(|m| match m.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        })
    }

    /// Sum of every counter sample sharing `name`, across label sets.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match m.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// Every histogram sample sharing `name`, merged across label sets.
    pub fn histogram_merged(&self, name: &str) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for m in self.metrics.iter().filter(|m| m.name == name) {
            if let MetricValue::Histogram(h) = &m.value {
                out.merge(h);
            }
        }
        out
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), &(lk, lv))| k == lk && v == lv)
        })
    }
}

fn escape_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn push_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(out, v);
        out.push('"');
    }
    out.push_str("} ");
}

/// Encode a snapshot in the Prometheus text exposition format.
///
/// * one `# TYPE name kind` line per distinct metric name;
/// * counters/gauges as `name{labels} value`;
/// * histograms as cumulative `name_bucket{labels,le="<ns>"}` lines
///   over the non-empty log-linear buckets plus `le="+Inf"`, with
///   `name_count` and `name_max` (exact observed max, ns) alongside.
///
/// Label values are escaped (`\\`, `\"`, `\n`); names and label keys
/// are valid by registry construction.
pub fn encode_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    let mut le = String::new();
    for m in &snap.metrics {
        if last_name != Some(m.name.as_str()) {
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            out.push_str("# TYPE ");
            out.push_str(&m.name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_name = Some(m.name.as_str());
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&m.name);
                push_labels(&mut out, &m.labels, None);
                if m.labels.is_empty() {
                    out.push(' ');
                }
                out.push_str(&v.to_string());
                out.push('\n');
            }
            MetricValue::Gauge(v) => {
                out.push_str(&m.name);
                push_labels(&mut out, &m.labels, None);
                if m.labels.is_empty() {
                    out.push(' ');
                }
                out.push_str(&format!("{v:?}"));
                out.push('\n');
            }
            MetricValue::Histogram(h) => {
                let mut cum = 0u64;
                for &(i, c) in &h.buckets {
                    cum += c;
                    le.clear();
                    le.push_str(&bucket_upper(i as usize).to_string());
                    out.push_str(&m.name);
                    out.push_str("_bucket");
                    push_labels(&mut out, &m.labels, Some(("le", &le)));
                    out.push_str(&cum.to_string());
                    out.push('\n');
                }
                out.push_str(&m.name);
                out.push_str("_bucket");
                push_labels(&mut out, &m.labels, Some(("le", "+Inf")));
                out.push_str(&h.count.to_string());
                out.push('\n');
                out.push_str(&m.name);
                out.push_str("_count");
                push_labels(&mut out, &m.labels, None);
                if m.labels.is_empty() {
                    out.push(' ');
                }
                out.push_str(&h.count.to_string());
                out.push('\n');
                out.push_str(&m.name);
                out.push_str("_max");
                push_labels(&mut out, &m.labels, None);
                if m.labels.is_empty() {
                    out.push(' ');
                }
                out.push_str(&h.max_ns.to_string());
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = Registry::new();
        let a = reg.counter("rlsched_test_total", &[("shard", "0")]);
        let b = reg.counter("rlsched_test_total", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = reg.counter("rlsched_test_total", &[("shard", "1")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("rlsched_test_total", &[]);
        let _ = reg.gauge("rlsched_test_total", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let _ = Registry::new().counter("0bad name", &[]);
    }

    #[test]
    fn gauge_add_and_set_max() {
        let g = Gauge::standalone();
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
        g.set_max(0.5);
        assert_eq!(g.get(), 1.5);
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = Registry::new();
        reg.counter("b_total", &[("shard", "1")]).add(4);
        reg.counter("b_total", &[("shard", "0")]).add(3);
        reg.gauge("a_depth", &[]).set(1.25);
        let h = reg.histogram("c_latency_ns", &[]);
        h.record_value(10);
        h.record_value(1000);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a_depth", "b_total", "b_total", "c_latency_ns"]);
        assert_eq!(snap.counter("b_total", &[("shard", "0")]), Some(3));
        assert_eq!(snap.counter_sum("b_total"), 7);
        assert_eq!(snap.gauge("a_depth", &[]), Some(1.25));
        let merged = snap.histogram_merged("c_latency_ns");
        assert_eq!(merged.count, 2);
        assert_eq!(merged.quantile_ns(1.0), 1000);
    }

    #[test]
    fn histogram_snapshot_merge_matches_plain_merge() {
        let a = Histogram::standalone();
        let b = Histogram::standalone();
        let mut pa = crate::LatencyHistogram::new();
        let mut pb = crate::LatencyHistogram::new();
        for v in [1u64, 50, 50, 7_000] {
            a.record_value(v);
            pa.record(Duration::from_nanos(v));
        }
        for v in [50u64, 900, 1 << 40] {
            b.record_value(v);
            pb.record(Duration::from_nanos(v));
        }
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        pa.merge(&pb);
        assert_eq!(sa.count, pa.count());
        assert_eq!(sa.max_ns, pa.max_ns());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(sa.quantile_ns(q), pa.quantile_ns(q));
        }
    }

    #[test]
    fn exposition_smoke() {
        let reg = Registry::new();
        reg.counter("rlsched_serve_served_total", &[("shard", "0")])
            .add(5);
        reg.gauge("rlsched_serve_inbox_depth", &[("shard", "0")])
            .set(2.0);
        let h = reg.histogram("rlsched_serve_latency_ns", &[("shard", "0")]);
        h.record_value(3);
        h.record_value(100);
        let text = encode_text(&reg.snapshot());
        assert!(text.contains("# TYPE rlsched_serve_served_total counter"));
        assert!(text.contains("rlsched_serve_served_total{shard=\"0\"} 5"));
        assert!(text.contains("rlsched_serve_inbox_depth{shard=\"0\"} 2.0"));
        assert!(text.contains("rlsched_serve_latency_ns_bucket{shard=\"0\",le=\"3\"} 1"));
        assert!(text.contains("rlsched_serve_latency_ns_bucket{shard=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("rlsched_serve_latency_ns_count{shard=\"0\"} 2"));
        assert!(text.contains("rlsched_serve_latency_ns_max{shard=\"0\"} 100"));
    }
}
