//! First-order optimizers: Adam (the paper trains with learning rate 1e-3,
//! §V-A) and plain SGD, plus global-norm gradient clipping.

use crate::tensor::Tensor;

/// Adam optimizer (Kingma & Ba) with per-parameter moment state.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999, 1e-8) moments.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update step. `params` and `grads` must be index-aligned
    /// and keep the same shapes across calls.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads must align");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| Tensor::zeros(p.shape())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.shape())).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter set changed size");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.shape(), g.shape(), "parameter/gradient shape mismatch");
            for i in 0..p.len() {
                let gi = g.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / b1t;
                let vhat = vi / b2t;
                p.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with fixed learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Apply one descent step.
    pub fn step(&self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            p.axpy(-self.lr, g);
        }
    }
}

/// Scale all gradients down so their joint L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let total: f32 = grads.iter().map(|g| g.norm().powi(2)).sum::<f32>().sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            for x in g.data_mut() {
                *x *= scale;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 elementwise with each optimizer.
    fn quadratic_grad(p: &Tensor) -> Tensor {
        p.map(|x| 2.0 * (x - 3.0))
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Tensor::from_vec(vec![-5.0, 10.0], &[2]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quadratic_grad(&p);
            opt.step(&mut [&mut p], &[g]);
        }
        for &x in p.data() {
            assert!((x - 3.0).abs() < 1e-2, "x={x}");
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Tensor::from_vec(vec![-5.0, 10.0], &[2]);
        let opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quadratic_grad(&p);
            opt.step(&mut [&mut p], &[g]);
        }
        for &x in p.data() {
            assert!((x - 3.0).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn adam_bias_correction_makes_first_step_lr_sized() {
        // With a constant gradient, the very first Adam step is ~lr.
        let mut p = Tensor::from_vec(vec![0.0], &[1]);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p], &[Tensor::from_vec(vec![42.0], &[1])]);
        assert!(
            (p.data()[0] + 0.01).abs() < 1e-4,
            "step was {}",
            p.data()[0]
        );
    }

    #[test]
    fn adam_multiple_params() {
        let mut a = Tensor::from_vec(vec![0.0], &[1]);
        let mut b = Tensor::from_vec(vec![10.0], &[1]);
        let mut opt = Adam::new(0.2);
        for _ in 0..400 {
            let ga = quadratic_grad(&a);
            let gb = quadratic_grad(&b);
            opt.step(&mut [&mut a, &mut b], &[ga, gb]);
        }
        assert!((a.data()[0] - 3.0).abs() < 1e-2);
        assert!((b.data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_rejected() {
        let mut p = Tensor::zeros(&[1]);
        Adam::new(0.1).step(&mut [&mut p], &[]);
    }

    #[test]
    fn clip_scales_down_only_when_needed() {
        let mut grads = vec![
            Tensor::from_vec(vec![3.0], &[1]),
            Tensor::from_vec(vec![4.0], &[1]),
        ];
        let norm = clip_global_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped: f32 = grads.iter().map(|g| g.norm().powi(2)).sum::<f32>().sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);

        let mut small = vec![Tensor::from_vec(vec![0.1], &[1])];
        clip_global_norm(&mut small, 1.0);
        assert_eq!(small[0].data(), &[0.1], "under-norm gradients untouched");
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut opt = Adam::new(0.1);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
    }
}
