//! The wire protocol: newline-delimited JSON frames (one request or
//! response object per line, UTF-8, `\n`-terminated) over TCP.
//!
//! JSON through the workspace's serde shims keeps the protocol
//! dependency-free and human-debuggable (`nc` into the server and type a
//! request), and the shim's shortest-round-trip float formatting means a
//! pre-encoded `f32` observation row crosses the wire bit-exactly — the
//! parity guarantee survives serialization.
//!
//! Representations are the serde-default externally-tagged enum forms,
//! e.g. `{"Score":{"id":1,"snapshot":{…}}}` and
//! `{"Action":{"id":1,"action":3,"shard":0}}`.
//!
//! Correlation ids must stay below 2^53: JSON interoperability (RFC
//! 8259 §6) only guarantees integer exactness within IEEE-double range,
//! and ids above it may come back changed. [`crate::ServeClient`]
//! allocates ids sequentially from 0, far below the limit.

use std::io::{BufRead, Write};

use rlscheduler::QueueSnapshot;
use serde::{Deserialize, Serialize};

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Score a queue snapshot: the server encodes it with the agent's
    /// observation encoder and answers with the chosen queue position.
    Score {
        /// Client-chosen correlation id, echoed in the response. Also
        /// the shard-routing key: requests with the same id always land
        /// on the same shard (deterministic routing).
        id: u64,
        /// The decision point.
        snapshot: QueueSnapshot,
    },
    /// Score a pre-encoded observation row (the client ran the encoder).
    ScoreRaw {
        /// Correlation id / routing key.
        id: u64,
        /// `[obs_dim]` observation row.
        obs: Vec<f32>,
        /// `[n_actions]` additive mask row.
        mask: Vec<f32>,
        /// Full waiting-queue length (action-clamp bound).
        queue_len: u64,
    },
    /// Fetch serving statistics.
    Stats {
        /// Correlation id.
        id: u64,
    },
}

impl Request {
    /// The correlation id of any request variant.
    pub fn id(&self) -> u64 {
        match self {
            Request::Score { id, .. } | Request::ScoreRaw { id, .. } | Request::Stats { id } => *id,
        }
    }
}

/// Which arm produced a scoring decision.
///
/// `Model` answers are bit-identical to in-process `Agent::as_policy`
/// scoring (the parity invariant); `Fallback` answers come from the
/// deterministic heuristic arm (shard down, inbox full, or in-queue
/// deadline expired) and are bit-identical to
/// `rlsched_sched::PriorityScheduler` with the server's configured kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedBy {
    /// Scored by the policy network on a shard.
    Model,
    /// Answered by the deterministic heuristic fallback.
    Fallback,
}

/// Lifecycle state of one shard worker, as reported in [`ServeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardState {
    /// Scoring normally.
    Healthy,
    /// Panicked recently; backing off before the next respawn attempt.
    Restarting,
    /// Restart budget exhausted; answering everything via fallback until
    /// a validated weight swap revives it.
    Failed,
}

/// Health snapshot of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Current lifecycle state.
    pub state: ShardState,
    /// Engine respawns after panics (lifetime total).
    pub restarts: u64,
    /// Worker panics caught by the supervisor (lifetime total).
    pub panics: u64,
}

/// Aggregated serving statistics (see [`crate::ServerHandle::stats`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Scoring requests answered by the model.
    pub served: u64,
    /// Scoring requests answered by the heuristic fallback arm.
    pub fallbacks: u64,
    /// Requests shed by backpressure (no fallback configured).
    pub shed: u64,
    /// Requests whose in-queue deadline expired (answered via fallback).
    pub deadlines: u64,
    /// Batched forwards dispatched.
    pub batches: u64,
    /// Largest coalesced batch so far.
    pub max_batch: u64,
    /// Weight hot-swaps committed (validated proposals + forced swaps).
    pub swaps: u64,
    /// Checkpoint proposals rejected or reverted by rollback.
    pub rollbacks: u64,
    /// Shard engine respawns after caught panics.
    pub restarts: u64,
    /// Accept-loop failures survived with backoff.
    pub accept_failures: u64,
    /// Median request latency (enqueue → scored), microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Maximum request latency, microseconds.
    pub max_us: f64,
    /// Per-shard health, indexed by shard id.
    pub shards: Vec<ShardHealth>,
}

impl ServeStats {
    /// Mean rows per coalesced batch (0 when nothing was served).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The scheduling decision for a scoring request.
    Action {
        /// Echoed correlation id.
        id: u64,
        /// Chosen queue position (`< queue_len`).
        action: u64,
        /// The shard that scored it (observability; deterministic per id).
        shard: u64,
        /// Which arm answered: the model or the heuristic fallback.
        served_by: ServedBy,
    },
    /// The request was shed: the shard's queue was full. The client
    /// should fall back to a local heuristic or retry after backoff.
    Shed {
        /// Echoed correlation id.
        id: u64,
    },
    /// Serving statistics.
    Stats {
        /// Echoed correlation id.
        id: u64,
        /// The aggregate counters.
        stats: ServeStats,
    },
    /// The request was malformed (bad widths, empty queue, …).
    Error {
        /// Echoed correlation id (0 when the frame didn't parse).
        id: u64,
        /// What was wrong.
        message: String,
    },
}

impl Response {
    /// The correlation id of any response variant.
    pub fn id(&self) -> u64 {
        match self {
            Response::Action { id, .. }
            | Response::Shed { id }
            | Response::Stats { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }
}

/// Serialize one frame and write it with its terminating newline.
pub fn write_frame<T: Serialize, W: Write>(w: &mut W, frame: &T) -> std::io::Result<()> {
    let mut line = serde_json::to_string(frame).map_err(std::io::Error::from)?;
    line.push('\n');
    w.write_all(line.as_bytes())
}

/// Read one newline-terminated frame. `Ok(None)` on clean EOF.
///
/// A non-empty line *without* its terminating newline means the stream
/// died mid-frame (peer crashed mid-write): that is a transport failure
/// (`UnexpectedEof`), not a protocol violation — the distinction drives
/// the client's retry-vs-report decision.
pub fn read_frame<T: Deserialize, R: BufRead>(r: &mut R) -> std::io::Result<Option<T>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if !line.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "frame truncated mid-line",
            ));
        }
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        let parsed = serde_json::from_str(line.trim()).map_err(std::io::Error::from)?;
        return Ok(Some(parsed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let reqs = vec![
            Request::Score {
                id: 7,
                snapshot: QueueSnapshot {
                    free_procs: 3,
                    total_procs: 8,
                    queue_len: 2,
                    jobs: vec![rlscheduler::SnapshotJob {
                        wait: 12.5,
                        time_bound: 3600.0,
                        procs: 2,
                        can_run_now: true,
                    }],
                },
            },
            Request::ScoreRaw {
                id: 8,
                obs: vec![0.25f32, 0.5, 1.0],
                mask: vec![0.0f32, -1e9],
                queue_len: 1,
            },
            Request::Stats { id: 9 },
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).unwrap();
        }
        let mut reader = std::io::BufReader::new(&buf[..]);
        for want in &reqs {
            let got: Request = read_frame(&mut reader).unwrap().expect("frame present");
            assert_eq!(&got, want);
        }
        assert!(read_frame::<Request, _>(&mut reader).unwrap().is_none());
    }

    #[test]
    fn f32_rows_survive_the_wire_bit_exactly() {
        // Awkward floats: subnormal, non-dyadic, huge mask offset, an
        // off-by-one-ulp neighbor of 0.3.
        let obs: Vec<f32> = vec![
            0.1,
            1.0 / 3.0,
            f32::MIN_POSITIVE / 2.0,
            -1e9,
            f32::from_bits(0.3f32.to_bits() + 1),
        ];
        let req = Request::ScoreRaw {
            id: 1,
            obs: obs.clone(),
            mask: vec![-1e9; 2],
            queue_len: 2,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let back: Request = read_frame(&mut std::io::BufReader::new(&buf[..]))
            .unwrap()
            .unwrap();
        let Request::ScoreRaw { obs: got, .. } = back else {
            panic!("variant changed")
        };
        for (a, b) in obs.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Action {
                id: 1,
                action: 3,
                shard: 0,
                served_by: ServedBy::Model,
            },
            Response::Action {
                id: 4,
                action: 0,
                shard: 2,
                served_by: ServedBy::Fallback,
            },
            Response::Shed { id: 2 },
            Response::Error {
                id: 3,
                message: "bad row".into(),
            },
        ];
        let mut buf = Vec::new();
        for r in &resps {
            write_frame(&mut buf, r).unwrap();
        }
        let mut reader = std::io::BufReader::new(&buf[..]);
        for want in &resps {
            let got: Response = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn stats_with_shard_health_round_trip() {
        let stats = ServeStats {
            served: 10,
            fallbacks: 3,
            shed: 1,
            deadlines: 2,
            batches: 4,
            max_batch: 5,
            swaps: 2,
            rollbacks: 1,
            restarts: 6,
            accept_failures: 7,
            p50_us: 12.5,
            p99_us: 99.0,
            max_us: 120.0,
            shards: vec![
                ShardHealth {
                    state: ShardState::Healthy,
                    restarts: 0,
                    panics: 0,
                },
                ShardHealth {
                    state: ShardState::Failed,
                    restarts: 3,
                    panics: 4,
                },
            ],
        };
        let resp = Response::Stats { id: 42, stats };
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp).unwrap();
        let back: Response = read_frame(&mut std::io::BufReader::new(&buf[..]))
            .unwrap()
            .unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn served_by_tags_are_plain_strings_on_the_wire() {
        // The tag must stay greppable in logs and `nc` sessions.
        let line = serde_json::to_string(&Response::Action {
            id: 1,
            action: 0,
            shard: 0,
            served_by: ServedBy::Fallback,
        })
        .unwrap();
        assert!(line.contains("\"Fallback\""), "{line}");
    }
}
