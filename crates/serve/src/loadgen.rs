//! Open-loop load generation against a live serving tier.
//!
//! Replay benchmarks want to know how the server behaves under the
//! *trace's* arrival process, not a synthetic constant rate: bursts of
//! submissions are exactly where shedding and coalescing earn their
//! keep. A [`LoadGen`] takes decision points with fire offsets (replayed
//! job inter-arrival times, optionally compressed), stripes them across
//! worker threads, and fires each request at its scheduled instant
//! regardless of how earlier requests fared — open-loop, so a slow
//! server faces mounting concurrency instead of a conveniently
//! self-throttling client.
//!
//! Each worker owns one [`ServeClient`] (single in-flight, its own id
//! stream, so routing stays deterministic) and a private
//! [`LatencyHistogram`]; per-worker tallies merge into one
//! [`LoadGenReport`] at the end.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rlscheduler::QueueSnapshot;

use crate::client::{ClientError, ServeClient};
use crate::histogram::LatencyHistogram;
use crate::protocol::{ServedBy, WireProtocol};
use crate::transport::{wire_env, AnyStream, ServerAddr, Transport};

/// One scheduled request: fire `offset` after the run starts, asking the
/// server to score `snapshot`.
#[derive(Debug, Clone)]
pub struct TimedRequest {
    /// Seconds after run start at which to fire (already scaled).
    pub offset: f64,
    /// The decision point to score.
    pub snapshot: QueueSnapshot,
}

/// Load-generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Concurrent worker threads (each with its own connection).
    pub workers: usize,
    /// Multiplier applied to request offsets: `1.0` replays the trace's
    /// own gaps in real time; `1e-6` compresses hours into
    /// microseconds-scale back-to-back fire times.
    pub time_scale: f64,
    /// Id-stream stride between workers, so their request ids (and hence
    /// shard routing) never collide.
    pub id_stride: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            workers: 4,
            time_scale: 1.0,
            id_stride: 1 << 32,
        }
    }
}

/// Merged outcome of one load-generation run.
#[derive(Debug)]
pub struct LoadGenReport {
    /// Requests that resolved to a decision.
    pub ok: u64,
    /// Requests the server shed.
    pub sheds: u64,
    /// Decisions answered by the server's heuristic fallback arm.
    pub fallbacks: u64,
    /// Requests that failed (transport/protocol/deadline).
    pub errors: u64,
    /// Request latencies (send → decision), successful requests only.
    pub hist: LatencyHistogram,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadGenReport {
    /// Requests fired (resolved one way or another).
    pub fn sent(&self) -> u64 {
        self.ok + self.sheds + self.errors
    }
}

/// Open-loop load generator; see the module docs. Generic over the
/// transport (TCP by default; [`LoadGen::to`] reaches whichever
/// transport a server bound) and the wire format
/// ([`LoadGen::with_protocol`]).
pub struct LoadGen<S: Transport = TcpStream> {
    addr: S::Addr,
    cfg: LoadGenConfig,
    proto: WireProtocol,
}

impl<S: Transport> std::fmt::Debug for LoadGen<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadGen")
            .field("addr", &self.addr)
            .field("cfg", &self.cfg)
            .field("proto", &self.proto)
            .finish()
    }
}

impl LoadGen<TcpStream> {
    /// A generator aimed at a TCP server.
    pub fn new(addr: SocketAddr, cfg: LoadGenConfig) -> Self {
        Self::dial(addr, cfg)
    }
}

impl LoadGen<AnyStream> {
    /// A generator aimed at whichever transport a server bound (see
    /// `ServerHandle::server_addr`).
    pub fn to(addr: &ServerAddr, cfg: LoadGenConfig) -> Self {
        Self::dial(addr.clone(), cfg)
    }
}

impl<S: Transport> LoadGen<S> {
    /// A generator aimed at a transport-typed address.
    pub fn dial(addr: S::Addr, cfg: LoadGenConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(
            cfg.time_scale.is_finite() && cfg.time_scale >= 0.0,
            "time_scale must be finite and non-negative"
        );
        LoadGen {
            addr,
            cfg,
            proto: wire_env().protocol,
        }
    }

    /// Make every worker speak this wire format (default: the
    /// `RLSCHED_WIRE` env pin, else JSON).
    pub fn with_protocol(mut self, proto: WireProtocol) -> Self {
        self.proto = proto;
        self
    }

    /// Fire every request at its scheduled offset and collect the merged
    /// report. Requests are striped over workers by index, so each
    /// worker's sub-sequence preserves the arrival order; a request
    /// whose fire time has already passed (its worker was busy) fires
    /// immediately — open-loop lateness is part of the measurement.
    ///
    /// Errors only when a worker fails to *connect*; per-request
    /// failures are counted in the report instead.
    pub fn run(&self, requests: &[TimedRequest]) -> std::io::Result<LoadGenReport> {
        let start = Instant::now();
        let workers = self.cfg.workers.min(requests.len()).max(1);
        // Connect up front so a dead server fails fast, before the clock
        // matters.
        let mut clients = Vec::with_capacity(workers);
        for w in 0..workers {
            clients.push(
                ServeClient::<S>::dial(self.addr.clone())?
                    .with_protocol(self.proto)
                    .with_id_base(w as u64 * self.cfg.id_stride),
            );
        }
        let scale = self.cfg.time_scale;
        let reports: Vec<(u64, u64, u64, u64, LatencyHistogram)> = std::thread::scope(|scope| {
            let handles: Vec<_> = clients
                .into_iter()
                .enumerate()
                .map(|(w, mut client)| {
                    scope.spawn(move || {
                        let mut hist = LatencyHistogram::new();
                        let (mut ok, mut sheds, mut fallbacks, mut errors) = (0, 0, 0, 0);
                        for req in requests.iter().skip(w).step_by(workers) {
                            let fire = Duration::from_secs_f64((req.offset * scale).max(0.0));
                            if let Some(wait) = fire.checked_sub(start.elapsed()) {
                                std::thread::sleep(wait);
                            }
                            let t0 = Instant::now();
                            match client.score_snapshot(&req.snapshot) {
                                Ok(d) => {
                                    hist.record(t0.elapsed());
                                    ok += 1;
                                    if d.served_by == ServedBy::Fallback {
                                        fallbacks += 1;
                                    }
                                }
                                Err(ClientError::Shed) => sheds += 1,
                                Err(_) => errors += 1,
                            }
                        }
                        (ok, sheds, fallbacks, errors, hist)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen worker panicked"))
                .collect()
        });
        let mut report = LoadGenReport {
            ok: 0,
            sheds: 0,
            fallbacks: 0,
            errors: 0,
            hist: LatencyHistogram::new(),
            elapsed: start.elapsed(),
        };
        for (ok, sheds, fallbacks, errors, hist) in &reports {
            report.ok += ok;
            report.sheds += sheds;
            report.fallbacks += fallbacks;
            report.errors += errors;
            report.hist.merge(hist);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};
    use rlsched_sim::MetricKind;
    use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SnapshotJob};

    fn tiny_agent() -> Agent {
        Agent::new(AgentConfig {
            policy: PolicyKind::Kernel,
            obs: ObsConfig {
                max_obsv: 8,
                ..ObsConfig::default()
            },
            metric: MetricKind::BoundedSlowdown,
            ppo: Default::default(),
            seed: 3,
        })
    }

    fn snapshot(n: usize) -> QueueSnapshot {
        QueueSnapshot {
            free_procs: 4,
            total_procs: 8,
            queue_len: n as u32,
            jobs: (0..n)
                .map(|i| SnapshotJob {
                    wait: i as f64 * 3.0,
                    time_bound: 60.0 + i as f64,
                    procs: 1 + (i as u32 % 4),
                    can_run_now: i % 2 == 0,
                })
                .collect(),
        }
    }

    #[test]
    fn open_loop_replay_hits_a_live_server() {
        let agent = tiny_agent();
        let handle = Server::spawn(
            agent.scorer_snapshot(),
            *agent.encoder(),
            ServeConfig {
                addr: crate::transport::ListenAddr::Tcp("127.0.0.1:0".into()),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let requests: Vec<TimedRequest> = (0..40)
            .map(|i| TimedRequest {
                // Replayed gaps of "hours", compressed by time_scale.
                offset: i as f64 * 3600.0,
                snapshot: snapshot(1 + i % 6),
            })
            .collect();
        let gen = LoadGen::new(
            handle.addr(),
            LoadGenConfig {
                workers: 3,
                time_scale: 1e-7,
                ..Default::default()
            },
        );
        let report = gen.run(&requests).unwrap();
        assert_eq!(report.sent(), 40);
        assert_eq!(report.errors, 0);
        assert_eq!(report.hist.count(), report.ok);
        assert!(report.hist.quantile_ns(0.5) > 0);
        handle.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn binary_over_uds_drives_the_same_load() {
        let agent = tiny_agent();
        let handle = Server::spawn(
            agent.scorer_snapshot(),
            *agent.encoder(),
            ServeConfig {
                addr: crate::transport::ListenAddr::unix_temp("loadgen-test"),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let requests: Vec<TimedRequest> = (0..24)
            .map(|i| TimedRequest {
                offset: i as f64 * 3600.0,
                snapshot: snapshot(1 + i % 6),
            })
            .collect();
        let gen = LoadGen::to(
            handle.server_addr(),
            LoadGenConfig {
                workers: 2,
                time_scale: 1e-7,
                ..Default::default()
            },
        )
        .with_protocol(WireProtocol::Binary);
        let report = gen.run(&requests).unwrap();
        assert_eq!(report.sent(), 24);
        assert_eq!(report.errors, 0);
        assert_eq!(report.sheds, 0);
        handle.shutdown();
    }

    #[test]
    fn connect_failure_is_an_error_not_a_panic() {
        // A port nothing listens on: 127.0.0.1:1 is reserved.
        let gen = LoadGen::new("127.0.0.1:1".parse().unwrap(), LoadGenConfig::default());
        assert!(gen
            .run(&[TimedRequest {
                offset: 0.0,
                snapshot: snapshot(2),
            }])
            .is_err());
    }
}
