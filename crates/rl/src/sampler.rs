//! Trajectory collection over vectorized environments.
//!
//! Each PPO epoch samples many complete episodes (the paper uses 100
//! trajectories of 256 scheduling decisions, §V-A). Since PR 2 the
//! per-step work is allocation-free and SIMD-dispatched, so rollout wall
//! time is dominated by issuing one tiny policy forward per env per
//! step. The sampler therefore drives a [`VecEnv`] in lockstep: every
//! simulator tick stacks all live observations into one `[live, obs_dim]`
//! matrix and scores it through a **single** batched policy forward and a
//! single batched critic forward ([`crate::vecenv::BatchPolicy`] /
//! [`ValueModel::value_fast_batch`]), amortizing the networks' weight
//! stream across every live episode.
//!
//! Trajectories are bit-identical to sequential per-env collection (a
//! `VecEnv` of size 1): per-episode sampling RNGs are derived from the
//! episode seed alone, and the forward kernels guarantee row-count
//! invariance. The parity tests in `tests/vecenv_parity.rs` and
//! `rlscheduler` pin this on both SIMD and forced-scalar dispatch arms.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::buffer::{ArrivalArena, Batch, RolloutBuffer};
use crate::categorical::MaskedCategorical;
use crate::env::Env;
use crate::ppo::{ActorScratch, PolicyModel, Ppo, ValueModel};
use crate::vecenv::{SlotOutcome, VecEnv};

/// Per-episode sampling streams are derived from the episode seed with
/// this salt (kept from the sequential sampler so seeded runs reproduce).
const RNG_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Summary of one collection round.
#[derive(Debug, Clone)]
pub struct RolloutStats {
    /// Episodes collected.
    pub episodes: usize,
    /// Total transitions collected.
    pub steps: usize,
    /// Mean episodic reward sum.
    pub mean_return: f64,
    /// Per-episode objective values (e.g. average bounded slowdown),
    /// as reported by the environments, in episode (seed) order.
    pub metrics: Vec<f64>,
}

impl RolloutStats {
    /// Mean of the per-episode objective values.
    pub fn mean_metric(&self) -> f64 {
        if self.metrics.is_empty() {
            return 0.0;
        }
        self.metrics.iter().sum::<f64>() / self.metrics.len() as f64
    }
}

/// Reusable lockstep buffers: stacked observation/mask double buffers,
/// batched forward outputs, per-tick action/outcome staging. One per
/// collection loop; every vector only grows to its high-water mark, so
/// steady-state ticks allocate nothing.
#[derive(Debug, Default)]
struct LockstepScratch {
    actor: ActorScratch,
    obs: Vec<f32>,
    masks: Vec<f32>,
    next_obs: Vec<f32>,
    next_masks: Vec<f32>,
    logps: Vec<f32>,
    values: Vec<f64>,
    actions: Vec<usize>,
    sel_logps: Vec<f32>,
    outcomes: Vec<SlotOutcome>,
}

/// Per-episode accumulators before the final fold into [`RolloutStats`].
/// Kept raw (seed-ordered vectors, not folded scalars) so the parallel
/// sampler can concatenate its workers' episodes in seed order and fold
/// ONCE — the same f64 summation order as the sequential fold, hence the
/// same bits.
#[derive(Debug)]
struct RawStats {
    steps: usize,
    /// Per-episode reward sums, in seed order.
    returns: Vec<f64>,
    /// Per-episode objective values, in seed order.
    metrics: Vec<Option<f64>>,
}

impl RawStats {
    fn finalize(self) -> RolloutStats {
        RolloutStats {
            episodes: self.returns.len(),
            steps: self.steps,
            mean_return: self.returns.iter().sum::<f64>() / self.returns.len() as f64,
            metrics: self.metrics.into_iter().flatten().collect(),
        }
    }
}

/// Collect one complete episode per seed by stepping `venv` in lockstep
/// into an arrival-order [`ArrivalArena`] (see its docs: per-tick stores
/// append to one contiguous tail instead of scattering across per-episode
/// buffers; episode order is restored by one gather at batch time).
///
/// Envs that finish early auto-reset onto the next unclaimed seed, so a
/// `VecEnv` narrower than the seed schedule pipelines through all
/// episodes; each episode's trajectory depends only on its seed (see the
/// module docs), so the result is independent of `venv.n_envs()`.
fn collect_arena_raw<E, P, V>(
    ppo: &Ppo<P, V>,
    venv: &mut VecEnv<E>,
    seeds: &[u64],
) -> (ArrivalArena, RawStats)
where
    E: Env,
    P: PolicyModel,
    V: ValueModel,
{
    assert!(!seeds.is_empty(), "need at least one episode seed");
    let (od, na) = (venv.obs_dim(), venv.n_actions());
    let mut arena = ArrivalArena::new(od, na, ppo.cfg.gamma, ppo.cfg.lam, seeds.len());
    let mut returns = vec![0.0f64; seeds.len()];
    let mut metrics: Vec<Option<f64>> = vec![None; seeds.len()];
    let mut steps = 0usize;

    let mut s = LockstepScratch::default();
    // One sampling RNG per slot, re-seeded from the episode seed whenever
    // the slot (re)spawns — episode streams never depend on slot history.
    let mut rngs: Vec<StdRng> = (0..venv.n_envs())
        .map(|_| StdRng::seed_from_u64(0))
        .collect();

    venv.reset_all(seeds, &mut s.obs, &mut s.masks);
    for slot in venv.live_slots() {
        rngs[slot] = StdRng::seed_from_u64(seeds[venv.episode_of(slot)] ^ RNG_SALT);
    }

    while !venv.is_done() {
        let rows = venv.live_count();
        // One stacked forward each for actor and critic: every live
        // episode's decision this tick shares one weight stream.
        ppo.policy
            .log_probs_fast_batch(&s.obs, &s.masks, rows, &mut s.actor.nn, &mut s.logps);
        ppo.value
            .value_fast_batch(&s.obs, rows, &mut s.actor.nn, &mut s.values);
        s.actions.clear();
        s.sel_logps.clear();
        for (r, slot) in venv.live_slots().enumerate() {
            let dist = MaskedCategorical::new(&s.logps[r * na..(r + 1) * na]);
            let a = dist.sample(&mut rngs[slot]);
            s.actions.push(a);
            s.sel_logps.push(dist.log_prob(a));
        }
        venv.step_all(
            &s.actions,
            &mut s.next_obs,
            &mut s.next_masks,
            &mut s.outcomes,
        );
        for (r, out) in s.outcomes.iter().enumerate() {
            arena.store(
                out.episode,
                &s.obs[r * od..(r + 1) * od],
                &s.masks[r * na..(r + 1) * na],
                s.actions[r],
                out.reward,
                s.values[r],
                s.sel_logps[r],
            );
            returns[out.episode] += out.reward;
            steps += 1;
            if out.done {
                arena.finish_episode(out.episode, 0.0);
                metrics[out.episode] = out.episode_metric;
            }
            if let Some(ep) = out.next_episode {
                rngs[out.slot] = StdRng::seed_from_u64(seeds[ep] ^ RNG_SALT);
            }
        }
        std::mem::swap(&mut s.obs, &mut s.next_obs);
        std::mem::swap(&mut s.masks, &mut s.next_masks);
    }

    let raw = RawStats {
        steps,
        returns,
        metrics,
    };
    (arena, raw)
}

/// [`collect_arena_raw`] with the stats folded for presentation.
fn collect_arena<E, P, V>(
    ppo: &Ppo<P, V>,
    venv: &mut VecEnv<E>,
    seeds: &[u64],
) -> (ArrivalArena, RolloutStats)
where
    E: Env,
    P: PolicyModel,
    V: ValueModel,
{
    let (arena, raw) = collect_arena_raw(ppo, venv, seeds);
    (arena, raw.finalize())
}

/// Collect one complete episode per seed by stepping `venv` in lockstep,
/// returning the per-episode buffers in seed order plus round stats.
/// (Training uses [`collect_rollouts_vec`], which skips the per-episode
/// split and gathers the arrival arena straight into the batch.)
pub fn collect_episodes<E, P, V>(
    ppo: &Ppo<P, V>,
    venv: &mut VecEnv<E>,
    seeds: &[u64],
) -> (Vec<RolloutBuffer>, RolloutStats)
where
    E: Env,
    P: PolicyModel,
    V: ValueModel,
{
    let (arena, stats) = collect_arena(ppo, venv, seeds);
    (arena.into_episode_buffers(), stats)
}

/// Collect one episode per seed through `venv` and merge into one
/// normalized training batch: one episode-ordered gather from the
/// arrival arena, bit-identical to merging per-episode buffers.
pub fn collect_rollouts_vec<E, P, V>(
    ppo: &Ppo<P, V>,
    venv: &mut VecEnv<E>,
    seeds: &[u64],
) -> (Batch, RolloutStats)
where
    E: Env,
    P: PolicyModel,
    V: ValueModel,
{
    let (arena, stats) = collect_arena(ppo, venv, seeds);
    (arena.into_batch(), stats)
}

/// Collect one episode per `(env, seed)` pair and merge into a training
/// batch — the historical entry point, now driven through a [`VecEnv`]
/// borrowing the caller's environments so all live episodes score in one
/// stacked forward per tick. Results are bit-identical to the old
/// sequential per-env collection (see the module docs on parity).
pub fn collect_rollouts<E, P, V>(
    ppo: &Ppo<P, V>,
    envs: &mut [E],
    seeds: &[u64],
) -> (Batch, RolloutStats)
where
    E: Env,
    P: PolicyModel,
    V: ValueModel,
{
    assert_eq!(envs.len(), seeds.len(), "one seed per environment");
    assert!(!envs.is_empty(), "need at least one environment");
    let mut venv: VecEnv<&mut E> = VecEnv::new(envs.iter_mut().collect());
    collect_rollouts_vec(ppo, &mut venv, seeds)
}

/// Parallel rollout: partition the seed schedule into the rayon shim's
/// **fixed** contiguous ranges (a function of `seeds.len()` alone, never
/// the worker count), run one private [`VecEnv`] per range — envs built
/// on the worker by `make_env` — and merge the per-range arenas in seed
/// order.
///
/// Bit-identity contract: each episode's trajectory depends only on its
/// seed (module docs) and the merge gathers episodes in seed order with
/// ONE advantage normalization over the merged sequence
/// ([`ArrivalArena::merge_into_batch`]), so the assembled batch is
/// byte-equal to [`collect_rollouts_vec`] over the same seeds at ANY
/// thread count (including 1), on both SIMD dispatch arms. Stats fold
/// the same per-episode sums in the same seed order. Pinned by this
/// module's tests and `rlscheduler`'s `parallel_parity` suite.
///
/// `n_envs` caps each range's lockstep width (the per-worker analogue of
/// `TrainConfig::n_envs`); the worker-thread budget comes from the shim
/// (`rayon::with_threads` override, else `RLSCHED_THREADS`, else
/// `available_parallelism`).
pub fn collect_rollouts_par<E, P, V, F>(
    ppo: &Ppo<P, V>,
    make_env: F,
    n_envs: usize,
    seeds: &[u64],
) -> (Batch, RolloutStats)
where
    E: Env,
    P: PolicyModel + Sync,
    V: ValueModel + Sync,
    F: Fn() -> E + Sync,
{
    assert!(!seeds.is_empty(), "need at least one episode seed");
    assert!(n_envs > 0, "need at least one env slot per worker");
    let parts = rayon::fan_out(seeds.len(), |range| {
        let width = n_envs.min(range.len());
        let mut venv = VecEnv::new((0..width).map(|_| make_env()).collect());
        collect_arena_raw(ppo, &mut venv, &seeds[range])
    });
    let mut arenas = Vec::with_capacity(parts.len());
    let mut raw = RawStats {
        steps: 0,
        returns: Vec::with_capacity(seeds.len()),
        metrics: Vec::with_capacity(seeds.len()),
    };
    for (arena, r) in parts {
        arenas.push(arena);
        raw.steps += r.steps;
        raw.returns.extend(r.returns);
        raw.metrics.extend(r.metrics);
    }
    (ArrivalArena::merge_into_batch(arenas), raw.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::BanditEnv;
    use crate::ppo::PpoConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlsched_nn::{Activation, Graph, Mlp, Network, ParamBinds, Tensor, Var};

    struct P(Mlp);
    impl PolicyModel for P {
        fn log_probs(&self, g: &mut Graph, obs: Var, mask: Var, binds: &mut ParamBinds) -> Var {
            let logits = self.0.forward(g, obs, binds);
            let masked = g.add(logits, mask);
            g.log_softmax(masked)
        }
        fn params(&self) -> Vec<&Tensor> {
            self.0.params()
        }
        fn params_mut(&mut self) -> Vec<&mut Tensor> {
            self.0.params_mut()
        }
    }
    struct C(Mlp);
    impl ValueModel for C {
        fn values(&self, g: &mut Graph, obs: Var, binds: &mut ParamBinds) -> Var {
            self.0.forward(g, obs, binds)
        }
        fn params(&self) -> Vec<&Tensor> {
            self.0.params()
        }
        fn params_mut(&mut self) -> Vec<&mut Tensor> {
            self.0.params_mut()
        }
    }

    fn make_ppo() -> Ppo<P, C> {
        let mut rng = StdRng::seed_from_u64(5);
        Ppo::new(
            P(Mlp::new(
                &[2, 8, 3],
                Activation::Tanh,
                Activation::Identity,
                &mut rng,
            )),
            C(Mlp::new(
                &[2, 8, 1],
                Activation::Tanh,
                Activation::Identity,
                &mut rng,
            )),
            PpoConfig::default(),
        )
    }

    #[test]
    fn collects_one_episode_per_env() {
        let ppo = make_ppo();
        let mut envs: Vec<BanditEnv> = (0..6).map(|_| BanditEnv::new(3, 5, vec![])).collect();
        let seeds: Vec<u64> = (0..6).collect();
        let (batch, stats) = collect_rollouts(&ppo, &mut envs, &seeds);
        assert_eq!(stats.episodes, 6);
        assert_eq!(stats.steps, 30, "6 episodes x 5 steps");
        assert_eq!(batch.len(), 30);
        assert_eq!(stats.metrics.len(), 6);
    }

    #[test]
    fn deterministic_given_seeds() {
        let ppo = make_ppo();
        let run = || {
            let mut envs: Vec<BanditEnv> = (0..4).map(|_| BanditEnv::new(3, 4, vec![])).collect();
            let seeds: Vec<u64> = (10..14).collect();
            collect_rollouts(&ppo, &mut envs, &seeds)
        };
        let (b1, s1) = run();
        let (b2, s2) = run();
        assert_eq!(b1.actions, b2.actions);
        assert_eq!(b1.logp_old, b2.logp_old);
        assert_eq!(s1.mean_return, s2.mean_return);
    }

    #[test]
    fn narrow_vecenv_pipelines_all_episodes_identically() {
        // 2 slots streaming 6 episodes must produce the exact batch that
        // 6 slots running one episode each produce: trajectories depend
        // only on the episode seed.
        let ppo = make_ppo();
        let seeds: Vec<u64> = (20..26).collect();
        let run = |n_slots: usize| {
            let mut venv =
                VecEnv::new((0..n_slots).map(|_| BanditEnv::new(3, 5, vec![])).collect());
            collect_rollouts_vec(&ppo, &mut venv, &seeds)
        };
        let (wide, ws) = run(6);
        let (narrow, ns) = run(2);
        assert_eq!(wide.actions, narrow.actions);
        assert_eq!(wide.logp_old, narrow.logp_old);
        assert_eq!(wide.advantages, narrow.advantages);
        assert_eq!(wide.obs.data(), narrow.obs.data());
        assert_eq!(ws.metrics, ns.metrics);
        assert_eq!(ws.mean_return, ns.mean_return);
    }

    #[test]
    fn parallel_collection_matches_sequential_at_any_thread_count() {
        // 13 seeds split unevenly across the shim's fixed ranges, workers
        // narrower than their seed share (width 3 pipelines episodes):
        // the merged batch and the stats must be byte-equal to the
        // sequential lockstep collection at every thread count.
        let ppo = make_ppo();
        let seeds: Vec<u64> = (40..53).collect();
        let mut venv = VecEnv::new((0..4).map(|_| BanditEnv::new(3, 5, vec![])).collect());
        let (base, bs) = collect_rollouts_vec(&ppo, &mut venv, &seeds);
        for k in [1usize, 2, 3, 7] {
            let (b, s) = rayon::with_threads(k, || {
                collect_rollouts_par(&ppo, || BanditEnv::new(3, 5, vec![]), 3, &seeds)
            });
            assert_eq!(b.obs.data(), base.obs.data(), "obs, threads={k}");
            assert_eq!(b.masks.data(), base.masks.data(), "masks, threads={k}");
            assert_eq!(b.actions, base.actions, "actions, threads={k}");
            assert_eq!(b.advantages, base.advantages, "advantages, threads={k}");
            assert_eq!(b.returns, base.returns, "returns, threads={k}");
            assert_eq!(b.logp_old, base.logp_old, "logp_old, threads={k}");
            assert_eq!(s.episodes, bs.episodes, "episodes, threads={k}");
            assert_eq!(s.steps, bs.steps, "steps, threads={k}");
            assert_eq!(
                s.mean_return.to_bits(),
                bs.mean_return.to_bits(),
                "mean_return, threads={k}"
            );
            assert_eq!(s.metrics, bs.metrics, "metrics, threads={k}");
        }
    }

    #[test]
    fn respects_masks_during_collection() {
        let ppo = make_ppo();
        // Arm 2 is masked; BanditEnv panics if a masked arm is selected.
        let mut envs: Vec<BanditEnv> = (0..4).map(|_| BanditEnv::new(3, 6, vec![2])).collect();
        let seeds: Vec<u64> = (0..4).collect();
        let (_batch, stats) = collect_rollouts(&ppo, &mut envs, &seeds);
        assert_eq!(stats.episodes, 4);
    }

    #[test]
    #[should_panic(expected = "one seed per environment")]
    fn seed_count_must_match() {
        let ppo = make_ppo();
        let mut envs: Vec<BanditEnv> = vec![BanditEnv::new(3, 4, vec![])];
        let _ = collect_rollouts(&ppo, &mut envs, &[1, 2]);
    }

    #[test]
    fn mean_metric_matches_manual_average() {
        let stats = RolloutStats {
            episodes: 2,
            steps: 10,
            mean_return: 0.0,
            metrics: vec![2.0, 4.0],
        };
        assert_eq!(stats.mean_metric(), 3.0);
        let empty = RolloutStats {
            episodes: 0,
            steps: 0,
            mean_return: 0.0,
            metrics: vec![],
        };
        assert_eq!(empty.mean_metric(), 0.0);
    }
}
