//! # rlsched-replay — trace-scale streaming replay
//!
//! One uninterrupted pass over a multi-million-job SWF trace through
//! any scheduling policy, with resident memory bounded by the peak
//! waiting/running depth rather than the trace length.
//!
//! The crate glues together the streaming substrates grown elsewhere:
//!
//! * [`rlsched_swf::StreamReader`] — jobs off disk one line at a time
//!   (wrapped here by [`open_swf`] / [`SwfJobs`]);
//! * [`rlsched_sim::StreamSession`] — the one-pass mirror of the
//!   materialized `SchedSession` event loop (indexed-calendar queue,
//!   EASY backfilling, metrics folded at start time);
//! * the three decision heads a replay can drive, unified by
//!   [`ReplayPolicy`]:
//!   [`Heuristic`](ReplayPolicy::Heuristic) (Table III priority
//!   functions via `rlsched_sched::select_streaming`),
//!   [`Agent`](ReplayPolicy::Agent) (an in-process
//!   [`rlscheduler::StreamDecider`]), and
//!   [`Remote`](ReplayPolicy::Remote) (every decision over the wire to
//!   a live `rlsched-serve` tier, mirroring
//!   `rlsched_serve::RemotePolicy`'s shed/fallback semantics).
//!
//! [`ReplayEngine::run`] drives the episode to completion and returns a
//! [`ReplayReport`]: decision throughput, per-decision latency
//! quantiles (the serving tier's [`LatencyHistogram`]), peak queue
//! depth, and the folded [`StreamMetrics`].
//!
//! Decisions are **bit-identical** to the materialized path: heuristic
//! replays match `PriorityScheduler` episodes and agent replays match
//! `Agent::as_policy` episodes outcome-for-outcome (pinned by
//! `tests/replay_parity.rs`).

use std::cell::Cell;
use std::fs::File;
use std::io::{BufRead, BufReader, Cursor};
use std::net::TcpStream;
use std::path::Path;
use std::rc::Rc;
use std::time::{Duration, Instant};

use rlsched_obs::{Counter, Gauge, Histogram, Registry};
use rlsched_sched::{select_parts, select_streaming, HeuristicKind};
use rlsched_serve::{
    ClientError, LatencyHistogram, ServeClient, ServedBy, TimedRequest, Transport,
};
use rlsched_sim::{EpisodeMetrics, SimConfig, SimError, StreamMetrics, StreamSession};
use rlsched_swf::{Job, MmapFile, StreamReader, SwfError};
use rlscheduler::{QueueSnapshot, SnapshotJob, StreamDecider};

/// Why a replay stopped short of the end of the trace.
#[derive(Debug)]
pub enum ReplayError {
    /// The simulator rejected the trace or a step (for example a
    /// non-monotone arrival in the stream).
    Sim(SimError),
    /// A remote decision failed past the client's retry budget and no
    /// local fallback was configured.
    Client(ClientError),
    /// The SWF source produced a malformed record mid-stream.
    Swf(SwfError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Sim(e) => write!(f, "simulation error: {e}"),
            ReplayError::Client(e) => write!(f, "serving tier unreachable: {e}"),
            ReplayError::Swf(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SimError> for ReplayError {
    fn from(e: SimError) -> Self {
        ReplayError::Sim(e)
    }
}

impl From<SwfError> for ReplayError {
    fn from(e: SwfError) -> Self {
        ReplayError::Swf(e)
    }
}

/// A shared slot that [`SwfJobs`] parks a mid-stream parse error in.
///
/// The job iterator is consumed by the engine, so the caller keeps this
/// handle and checks it after the replay: a `Some` means the trace was
/// cut short at the recorded error, not exhausted.
#[derive(Clone, Default)]
pub struct SwfErrorSlot(Rc<Cell<Option<SwfError>>>);

impl std::fmt::Debug for SwfErrorSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Cell contents cannot be borrowed for display; report occupancy.
        f.write_str("SwfErrorSlot")
    }
}

impl SwfErrorSlot {
    /// Take the parked error, if the stream hit one.
    pub fn take(&self) -> Option<SwfError> {
        self.0.take()
    }
}

/// An `Iterator<Item = Job>` over an SWF byte source that parks parse
/// errors in its [`SwfErrorSlot`] and fuses, instead of panicking
/// mid-replay. Generic over the underlying reader: a buffered file by
/// default, a memory map via [`open_swf_mmap`].
#[derive(Debug)]
pub struct SwfJobs<R: BufRead = BufReader<File>> {
    first: Option<Job>,
    reader: StreamReader<R>,
    errors: SwfErrorSlot,
}

impl<R: BufRead> Iterator for SwfJobs<R> {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        if let Some(j) = self.first.take() {
            return Some(j);
        }
        match self.reader.next() {
            Some(Ok(j)) => Some(j),
            Some(Err(e)) => {
                self.errors.0.set(Some(e));
                None
            }
            None => None,
        }
    }
}

/// An opened SWF trace, ready to stream: the cluster size, the job
/// iterator, and the mid-stream error slot.
#[derive(Debug)]
pub struct SwfSource<R: BufRead = BufReader<File>> {
    /// Cluster size: the header's `MaxProcs`/`MaxNodes`, or the first
    /// job's request when the header carries none.
    pub max_procs: u32,
    /// The jobs, one at a time off the source.
    pub jobs: SwfJobs<R>,
    /// Check after the replay: a parked error means a truncated pass.
    pub errors: SwfErrorSlot,
}

/// Reader-generic tail of [`open_swf`] / [`open_swf_mmap`]: read up to
/// the first job record (so the conventional header-then-records
/// layout has settled `MaxProcs`) and wrap the stream.
fn source_from_reader<R: BufRead>(mut reader: StreamReader<R>) -> Result<SwfSource<R>, SwfError> {
    let first = match reader.next() {
        None => None,
        Some(Ok(j)) => Some(j),
        Some(Err(e)) => return Err(e),
    };
    let errors = SwfErrorSlot::default();
    Ok(SwfSource {
        max_procs: reader.max_procs(),
        jobs: SwfJobs {
            first,
            reader,
            errors: errors.clone(),
        },
        errors,
    })
}

/// Open an SWF file for streaming replay through a buffered reader.
/// Errors on an unreadable file or a malformed first record.
pub fn open_swf(path: impl AsRef<Path>) -> Result<SwfSource, SwfError> {
    let file = File::open(path).map_err(SwfError::Io)?;
    source_from_reader(StreamReader::new(BufReader::new(file)))
}

/// Open an SWF file for streaming replay over a memory map: the parser
/// walks the page cache directly, with no read syscalls or buffer
/// copies on the replay's hot path. Parity with [`open_swf`] (jobs,
/// cluster size, error line numbers) is pinned by the tests.
pub fn open_swf_mmap(path: impl AsRef<Path>) -> Result<SwfSource<Cursor<MmapFile>>, SwfError> {
    let mapped = MmapFile::open(path).map_err(SwfError::Io)?;
    source_from_reader(StreamReader::new(Cursor::new(mapped)))
}

/// A decision head for replay over a live `rlsched-serve` tier: builds
/// a [`QueueSnapshot`] straight from the streaming wait queue (into
/// reused buffers) and asks the server to score it. Shed/failure
/// semantics mirror `rlsched_serve::RemotePolicy`: a shed is answered
/// by the local fallback heuristic (or FCFS without one); a transport
/// failure past the retry budget is answered locally too when a
/// fallback is configured, and surfaces as
/// [`ReplayError::Client`] otherwise.
pub struct RemoteDecider<S: Transport = TcpStream> {
    client: ServeClient<S>,
    /// Snapshot truncation window (the serving agent's `max_obsv`).
    window: usize,
    fallback: Option<HeuristicKind>,
    /// Reused decision-point buffer.
    snap: QueueSnapshot,
    sheds: u64,
    local_decisions: u64,
    remote_fallbacks: u64,
}

impl<S: Transport> RemoteDecider<S> {
    /// Wrap a connected client. `window` must equal the serving agent's
    /// observation window.
    pub fn new(client: ServeClient<S>, window: usize) -> Self {
        RemoteDecider {
            client,
            window,
            fallback: None,
            snap: QueueSnapshot {
                free_procs: 0,
                total_procs: 0,
                queue_len: 0,
                jobs: Vec::with_capacity(window),
            },
            sheds: 0,
            local_decisions: 0,
            remote_fallbacks: 0,
        }
    }

    /// Answer sheds *and* exhausted-retry transport failures with this
    /// local heuristic instead of erroring. Must be wire-scorable.
    pub fn with_local_fallback(mut self, kind: HeuristicKind) -> Self {
        assert!(
            kind.wire_scorable(),
            "{} is not computable from a decision-point view",
            kind.name()
        );
        self.fallback = Some(kind);
        self
    }

    /// Decisions the server shed (answered locally).
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Decisions answered by the local heuristic.
    pub fn local_decisions(&self) -> u64 {
        self.local_decisions
    }

    /// Decisions the *server* answered via its fallback arm.
    pub fn remote_fallbacks(&self) -> u64 {
        self.remote_fallbacks
    }

    /// Recover the client (e.g. to query stats after a replay).
    pub fn into_client(self) -> ServeClient<S> {
        self.client
    }

    fn decide_locally(&mut self) -> usize {
        self.local_decisions += 1;
        match self.fallback {
            Some(kind) => select_parts(
                kind,
                self.snap
                    .jobs
                    .iter()
                    .map(|j| (j.wait, j.time_bound, j.procs)),
            )
            .unwrap_or(0),
            None => 0, // FCFS: schedule the head of the queue
        }
    }

    fn decide<'j>(
        &mut self,
        free_procs: u32,
        total_procs: u32,
        queue_len: usize,
        waiting: impl Iterator<Item = rlsched_sim::WaitingJob<'j>>,
    ) -> Result<usize, ReplayError> {
        self.snap.free_procs = free_procs;
        self.snap.total_procs = total_procs;
        self.snap.queue_len = queue_len as u32;
        self.snap.jobs.clear();
        self.snap
            .jobs
            .extend(waiting.take(self.window).map(|w| SnapshotJob {
                wait: w.wait,
                time_bound: w.job.time_bound(),
                procs: w.job.procs(),
                can_run_now: w.can_run_now,
            }));
        let bound = queue_len.saturating_sub(1);
        match self.client.score_snapshot(&self.snap) {
            Ok(d) => {
                if d.served_by == ServedBy::Fallback {
                    self.remote_fallbacks += 1;
                }
                Ok(d.action.min(bound))
            }
            Err(ClientError::Shed) => {
                self.sheds += 1;
                Ok(self.decide_locally().min(bound))
            }
            Err(e) => {
                if self.fallback.is_some() {
                    Ok(self.decide_locally().min(bound))
                } else {
                    Err(ReplayError::Client(e))
                }
            }
        }
    }
}

/// The decision head a [`ReplayEngine`] drives — one variant per way
/// the paper's policies can answer "which waiting job starts next".
pub enum ReplayPolicy<'a, S: Transport = TcpStream> {
    /// A Table III priority function, evaluated on the fly
    /// (`select_streaming`; bit-identical to `PriorityScheduler`).
    Heuristic(HeuristicKind),
    /// A trained agent in-process (bit-identical to `Agent::as_policy`).
    Agent(StreamDecider<'a>),
    /// Every decision over the wire to a live serving tier.
    Remote(RemoteDecider<S>),
}

impl<S: Transport> ReplayPolicy<'_, S> {
    /// Display tag for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ReplayPolicy::Heuristic(kind) => kind.name(),
            ReplayPolicy::Agent(_) => "RL-agent",
            ReplayPolicy::Remote(_) => "RL-remote",
        }
    }

    fn decide<I: Iterator<Item = Job>>(
        &mut self,
        s: &StreamSession<I>,
    ) -> Result<usize, ReplayError> {
        match self {
            ReplayPolicy::Heuristic(kind) => Ok(select_streaming(*kind, s.waiting())
                .expect("decision points always have waiting jobs")),
            ReplayPolicy::Agent(dec) => {
                Ok(dec.decide(s.free_procs(), s.total_procs(), s.queue_len(), s.waiting()))
            }
            ReplayPolicy::Remote(dec) => {
                dec.decide(s.free_procs(), s.total_procs(), s.queue_len(), s.waiting())
            }
        }
    }
}

/// What one completed replay measured.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Scheduling decisions made (== jobs started).
    pub decisions: u64,
    /// Wall-clock duration of the pass.
    pub elapsed: Duration,
    /// Per-decision latency (policy evaluation only, not event
    /// processing).
    pub hist: LatencyHistogram,
    /// Deepest the wait queue ever was — the memory bound.
    pub peak_queue: usize,
    /// Most jobs ever running at once.
    pub peak_running: usize,
    /// The paper's metrics, folded over the whole trace.
    pub metrics: StreamMetrics,
}

impl ReplayReport {
    /// Decision throughput (sim-ticks per wall-clock second).
    pub fn decisions_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.decisions as f64 / secs
    }

    /// Median per-decision latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.hist.quantile_ns(0.5)
    }

    /// Tail per-decision latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.hist.quantile_ns(0.99)
    }
}

/// Registry handles an instrumented [`ReplayEngine`] records into,
/// labeled by decision head (`{head="sjf"}`, `{head="RL-agent"}`, …)
/// so multi-head sweeps land side by side in one scrape. The local
/// [`LatencyHistogram`] in the report stays authoritative — the
/// registry copy is the same samples, just reachable by `encode_text`
/// / `--metrics-dump`.
#[derive(Debug, Clone)]
pub struct ReplayMetrics {
    ticks: Counter,
    latency: Histogram,
    ticks_per_sec: Gauge,
    peak_queue: Gauge,
}

impl ReplayMetrics {
    /// Register the replay metric family for one decision head.
    pub fn register(reg: &Registry, head: &str) -> Self {
        let labels: &[(&str, &str)] = &[("head", head)];
        ReplayMetrics {
            ticks: reg.counter("rlsched_replay_ticks_total", labels),
            latency: reg.histogram("rlsched_replay_decision_ns", labels),
            ticks_per_sec: reg.gauge("rlsched_replay_ticks_per_sec", labels),
            peak_queue: reg.gauge("rlsched_replay_peak_queue", labels),
        }
    }
}

/// One uninterrupted pass over a job stream through one policy.
pub struct ReplayEngine<I: Iterator<Item = Job>> {
    session: StreamSession<I>,
    decisions: u64,
    hist: LatencyHistogram,
    metrics: Option<ReplayMetrics>,
}

impl<I: Iterator<Item = Job>> ReplayEngine<I> {
    /// Build an engine over `source` (must be submit-sorted) on a
    /// cluster of `total_procs` processors.
    pub fn new(source: I, total_procs: u32, cfg: SimConfig) -> Result<Self, SimError> {
        Ok(ReplayEngine {
            session: StreamSession::new(source, total_procs, cfg)?,
            decisions: 0,
            hist: LatencyHistogram::new(),
            metrics: None,
        })
    }

    /// Mirror every tick into registry handles (and the end-of-run
    /// throughput/peak-queue gauges). Decisions and the report are
    /// unchanged — telemetry never steers.
    pub fn instrument(&mut self, metrics: ReplayMetrics) {
        self.metrics = Some(metrics);
    }

    /// Keep a per-job outcome log (unbounded memory — parity tests
    /// only).
    pub fn with_outcome_log(mut self) -> Self {
        self.session = self.session.with_outcome_log();
        self
    }

    /// The underlying streaming session.
    pub fn session(&self) -> &StreamSession<I> {
        &self.session
    }

    /// Rebuild an [`EpisodeMetrics`] from the outcome log, for bit-exact
    /// parity against a materialized session. `None` unless
    /// [`ReplayEngine::with_outcome_log`] was enabled.
    pub fn log_metrics(&self) -> Option<EpisodeMetrics> {
        self.session.log_metrics()
    }

    /// Drive the replay to completion under `policy` and report.
    pub fn run<S: Transport>(
        &mut self,
        policy: &mut ReplayPolicy<'_, S>,
    ) -> Result<ReplayReport, ReplayError> {
        let start = Instant::now();
        while !self.session.done() {
            let t0 = Instant::now();
            let pos = policy.decide(&self.session)?;
            let spent = t0.elapsed();
            self.hist.record(spent);
            if let Some(m) = &self.metrics {
                m.ticks.inc();
                m.latency.record(spent);
            }
            self.decisions += 1;
            self.session.step(pos)?;
        }
        let report = ReplayReport {
            decisions: self.decisions,
            elapsed: start.elapsed(),
            hist: self.hist.clone(),
            peak_queue: self.session.peak_queue_depth(),
            peak_running: self.session.peak_running(),
            metrics: self.session.metrics().clone(),
        };
        if let Some(m) = &self.metrics {
            m.ticks_per_sec.set(report.decisions_per_sec());
            m.peak_queue.set_max(report.peak_queue as f64);
        }
        Ok(report)
    }
}

/// Replay `source` under a heuristic, capturing every decision point as
/// a [`TimedRequest`] whose fire offset is the decision's virtual time
/// relative to the episode start — the input a
/// [`rlsched_serve::LoadGen`] fires at a live server on the trace's own
/// arrival process (scaled by its `time_scale`).
///
/// Memory here is bounded by the *decision count*, not the trace
/// length: each request holds one truncated snapshot.
pub fn collect_timed_requests<I: Iterator<Item = Job>>(
    source: I,
    total_procs: u32,
    cfg: SimConfig,
    kind: HeuristicKind,
    window: usize,
) -> Result<Vec<TimedRequest>, ReplayError> {
    let mut session = StreamSession::new(source, total_procs, cfg)?;
    let t0 = session.time();
    let mut requests = Vec::new();
    while !session.done() {
        let snapshot = QueueSnapshot {
            free_procs: session.free_procs(),
            total_procs: session.total_procs(),
            queue_len: session.queue_len() as u32,
            jobs: session
                .waiting()
                .take(window)
                .map(|w| SnapshotJob {
                    wait: w.wait,
                    time_bound: w.job.time_bound(),
                    procs: w.job.procs(),
                    can_run_now: w.can_run_now,
                })
                .collect(),
        };
        requests.push(TimedRequest {
            offset: session.time() - t0,
            snapshot,
        });
        let pos = select_streaming(kind, session.waiting())
            .expect("decision points always have waiting jobs");
        session.step(pos)?;
    }
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn open_swf_reads_header_and_streams_jobs() {
        let dir = std::env::temp_dir().join("rlsched-replay-test-open");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.swf");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "; MaxProcs: 64").unwrap();
        writeln!(f, "1 0 5 100 4 -1 -1 4 120 -1 1 3 2 7 1 0 -1 -1").unwrap();
        writeln!(f, "2 10 1 50 2 -1 -1 2 60 -1 1 4 2 7 1 0 -1 -1").unwrap();
        drop(f);
        let src = open_swf(&path).unwrap();
        assert_eq!(src.max_procs, 64);
        let jobs: Vec<Job> = src.jobs.collect();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 1);
        assert!(src.errors.take().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_stream_error_parks_in_the_slot() {
        let dir = std::env::temp_dir().join("rlsched-replay-test-err");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cut.swf");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "1 0 5 100 4 -1 -1 4 120 -1 1 3 2 7 1 0 -1 -1").unwrap();
        writeln!(f, "garbage line").unwrap();
        drop(f);
        let src = open_swf(&path).unwrap();
        let jobs: Vec<Job> = src.jobs.collect();
        assert_eq!(jobs.len(), 1, "stream fuses at the bad line");
        assert!(src.errors.take().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_swf_rejects_missing_file() {
        assert!(open_swf("/nonexistent/definitely/not.swf").is_err());
    }

    #[test]
    fn mmap_source_matches_buffered_source() {
        let dir = std::env::temp_dir().join("rlsched-replay-test-mmap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.swf");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "; MaxProcs: 64").unwrap();
        writeln!(f, "1 0 5 100 4 -1 -1 4 120 -1 1 3 2 7 1 0 -1 -1").unwrap();
        writeln!(f, "2 10 1 50 2 -1 -1 2 60 -1 1 4 2 7 1 0 -1 -1").unwrap();
        drop(f);
        let buffered = open_swf(&path).unwrap();
        let mapped = open_swf_mmap(&path).unwrap();
        assert_eq!(buffered.max_procs, mapped.max_procs);
        let a: Vec<Job> = buffered.jobs.collect();
        let b: Vec<Job> = mapped.jobs.collect();
        assert_eq!(a, b);
        assert!(buffered.errors.take().is_none());
        assert!(mapped.errors.take().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_source_parks_mid_stream_errors_identically() {
        let dir = std::env::temp_dir().join("rlsched-replay-test-mmap-err");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cut.swf");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "1 0 5 100 4 -1 -1 4 120 -1 1 3 2 7 1 0 -1 -1").unwrap();
        writeln!(f, "garbage line").unwrap();
        drop(f);
        let describe = |src_err: Option<SwfError>| format!("{:?}", src_err);
        let buffered = open_swf(&path).unwrap();
        assert_eq!(buffered.jobs.count(), 1);
        let mapped = open_swf_mmap(&path).unwrap();
        assert_eq!(mapped.jobs.count(), 1);
        assert_eq!(
            describe(buffered.errors.take()),
            describe(mapped.errors.take()),
            "same error at the same line from both sources"
        );
        std::fs::remove_file(&path).ok();
    }
}
