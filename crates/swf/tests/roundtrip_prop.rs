//! Property tests: SWF serialization is lossless for arbitrary job
//! records, and trace invariants hold under random inputs.

use proptest::prelude::*;

use rlsched_swf::{parse_str, write_string, Job, JobStatus, JobTrace};

fn arb_status() -> impl Strategy<Value = JobStatus> {
    prop_oneof![
        Just(JobStatus::Failed),
        Just(JobStatus::Completed),
        Just(JobStatus::Partial),
        Just(JobStatus::Cancelled),
        Just(JobStatus::Unknown),
    ]
}

prop_compose! {
    fn arb_job()(
        id in 1u32..1_000_000,
        submit in 0.0f64..1e8,
        run in prop_oneof![Just(-1.0f64), 0.0f64..1e6],
        procs in prop_oneof![Just(-1i64), 1i64..10_000],
        req_time in prop_oneof![Just(-1.0f64), 1.0f64..1e6],
        used_procs in prop_oneof![Just(-1i64), 1i64..10_000],
        user in prop_oneof![Just(-1i64), 0i64..5_000],
        group in prop_oneof![Just(-1i64), 0i64..500],
        status in arb_status(),
    ) -> Job {
        let mut j = Job::new(id, submit, run, 1, req_time);
        j.requested_procs = procs;
        j.used_procs = used_procs;
        j.user_id = user;
        j.group_id = group;
        j.status = status;
        j
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn swf_round_trip_is_lossless(jobs in prop::collection::vec(arb_job(), 1..40), procs in 1u32..100_000) {
        let trace = JobTrace::new(jobs, procs);
        let text = write_string(&trace);
        let back = parse_str(&text).unwrap();
        prop_assert_eq!(back.jobs(), trace.jobs());
        prop_assert_eq!(back.max_procs(), trace.max_procs());
    }

    #[test]
    fn traces_are_sorted_by_submit(jobs in prop::collection::vec(arb_job(), 1..40)) {
        let trace = JobTrace::new(jobs, 64);
        for w in trace.jobs().windows(2) {
            prop_assert!(w[0].submit_time <= w[1].submit_time);
        }
    }

    #[test]
    fn sanitized_jobs_are_simulatable(jobs in prop::collection::vec(arb_job(), 1..40)) {
        let trace = JobTrace::new(jobs, 64).sanitized().clamp_to_cluster();
        for j in trace.jobs() {
            prop_assert!(j.run_time >= 1.0);
            prop_assert!(j.requested_time >= 1.0);
            prop_assert!(j.procs() >= 1 && j.procs() <= 64);
            prop_assert!(j.submit_time >= 0.0);
        }
    }

    #[test]
    fn windows_always_start_at_zero(
        jobs in prop::collection::vec(arb_job(), 5..40),
        start_frac in 0.0f64..1.0,
        len_frac in 0.1f64..1.0,
    ) {
        let trace = JobTrace::new(jobs, 64);
        let n = trace.len();
        let len = ((n as f64 * len_frac) as usize).clamp(1, n);
        let start = ((n - len) as f64 * start_frac) as usize;
        let w = trace.window(start, len).unwrap();
        prop_assert_eq!(w.len(), len);
        prop_assert_eq!(w.jobs()[0].submit_time, 0.0);
        for j in w.jobs() {
            prop_assert!(j.submit_time >= 0.0);
        }
    }
}
