//! Observation encoding (§IV-B3 of the paper).
//!
//! RLScheduler observes at most `MAX_OBSV_SIZE` waiting jobs (default 128,
//! "as many HPC job management systems, such as Slurm, also limit the
//! number of pending jobs to the same order of magnitude"). Each job is
//! embedded as a fixed vector of normalized, *schedule-time* attributes —
//! never the actual runtime — plus cluster-availability context ("the
//! vector also contains available resources", §IV-B3). Overflowing jobs
//! are cut off in FCFS order; missing slots are zero-padded and masked.

use rlsched_rl::categorical::MASK_OFF;
use rlsched_sim::{QueueView, WaitingJob};
use serde::{Deserialize, Serialize};

/// Features per job vector. See [`ObsEncoder::encode`] for the layout.
pub const JOB_FEATURES: usize = 7;

/// Default observation window, as in the paper.
pub const DEFAULT_MAX_OBSV: usize = 128;

/// Normalization constants and window size for observation encoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Maximum jobs observed (`MAX_OBSV_SIZE`).
    pub max_obsv: usize,
    /// Wait-time normalization cap, seconds.
    pub max_wait: f64,
    /// Requested-runtime normalization cap, seconds.
    pub max_request_time: f64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            max_obsv: DEFAULT_MAX_OBSV,
            max_wait: 12.0 * 3600.0,
            max_request_time: 3.0 * 24.0 * 3600.0,
        }
    }
}

/// Encodes a [`QueueView`] into the fixed `[max_obsv × JOB_FEATURES]`
/// observation plus the additive action mask.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObsEncoder {
    /// The active configuration.
    pub cfg: ObsConfig,
}

impl ObsEncoder {
    /// Build an encoder.
    pub fn new(cfg: ObsConfig) -> Self {
        ObsEncoder { cfg }
    }

    /// Flattened observation width.
    pub fn obs_dim(&self) -> usize {
        self.cfg.max_obsv * JOB_FEATURES
    }

    /// Action-space size (= observation window).
    pub fn n_actions(&self) -> usize {
        self.cfg.max_obsv
    }

    /// Encode the decision point.
    ///
    /// Per-job feature layout (all in `[0, 1]`):
    /// `[wait_norm, request_time_norm, procs_norm, can_run_now,
    /// free_frac, queue_pressure, valid]`. The returned mask is additive
    /// (0 for selectable slots, very negative otherwise); because the
    /// queue view is already FCFS-ordered, observation slot `i` *is*
    /// queue position `i`, so an agent action maps directly to
    /// `SchedSession::step(action)`.
    pub fn encode(&self, view: &QueueView<'_>) -> (Vec<f32>, Vec<f32>) {
        let mut obs = Vec::new();
        let mut mask = Vec::new();
        self.encode_into(view, &mut obs, &mut mask);
        (obs, mask)
    }

    /// [`ObsEncoder::encode`] into caller-owned buffers — the
    /// allocation-free variant for inference loops (one pair of buffers
    /// per policy/worker, reused across every decision).
    pub fn encode_into(&self, view: &QueueView<'_>, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
        obs.clear();
        mask.clear();
        self.encode_extend(view, obs, mask);
    }

    /// Append one view's window (`max_obsv × JOB_FEATURES` observation
    /// values and `max_obsv` mask values) onto the buffers without
    /// clearing them — the building block for stacking several views into
    /// one batched forward ([`crate::Agent::score_batch`]).
    pub fn encode_extend(&self, view: &QueueView<'_>, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
        self.encode_jobs_extend(
            view.free_procs,
            view.total_procs,
            view.waiting.len(),
            view.waiting.iter().copied(),
            obs,
            mask,
        );
    }

    /// Append one decision point streamed straight from the simulator —
    /// no [`QueueView`] (and no per-step `Vec` of waiting jobs) is ever
    /// materialized. `queue_len` is the total number of waiting jobs the
    /// iterator would yield (used for the queue-pressure feature).
    pub fn encode_jobs_extend<'a>(
        &self,
        free_procs: u32,
        total_procs: u32,
        queue_len: usize,
        waiting: impl Iterator<Item = WaitingJob<'a>>,
        obs: &mut Vec<f32>,
        mask: &mut Vec<f32>,
    ) {
        self.encode_slots_extend(
            free_procs,
            total_procs,
            queue_len,
            waiting.map(|w| SnapshotJob {
                wait: w.wait,
                time_bound: w.job.time_bound(),
                procs: w.job.procs(),
                can_run_now: w.can_run_now,
            }),
            obs,
            mask,
        );
    }

    /// Append one [`QueueSnapshot`]'s window — the wire-request sibling of
    /// [`ObsEncoder::encode_extend`]. Both paths funnel through the same
    /// per-slot arithmetic, so a snapshot taken from a [`QueueView`]
    /// encodes **bit-identically** to encoding the view directly; a
    /// serving tier scoring snapshots therefore reproduces the in-process
    /// decision bits exactly.
    pub fn encode_snapshot_extend(
        &self,
        snap: &QueueSnapshot,
        obs: &mut Vec<f32>,
        mask: &mut Vec<f32>,
    ) {
        self.encode_slots_extend(
            snap.free_procs,
            snap.total_procs,
            snap.queue_len(),
            snap.jobs.iter().copied(),
            obs,
            mask,
        );
    }

    /// The shared encode loop: every entry point (simulator stream, queue
    /// view, wire snapshot) maps its jobs to [`SnapshotJob`] slot features
    /// and lands here, keeping the paths bit-identical by construction.
    fn encode_slots_extend(
        &self,
        free_procs: u32,
        total_procs: u32,
        queue_len: usize,
        waiting: impl Iterator<Item = SnapshotJob>,
        obs: &mut Vec<f32>,
        mask: &mut Vec<f32>,
    ) {
        let k = self.cfg.max_obsv;
        let obs_base = obs.len();
        let mask_base = mask.len();
        obs.resize(obs_base + k * JOB_FEATURES, 0.0);
        mask.resize(mask_base + k, MASK_OFF);
        let obs = &mut obs[obs_base..];
        let mask = &mut mask[mask_base..];
        let free_frac = (free_procs as f64 / total_procs as f64) as f32;
        let pressure = (queue_len as f64 / k as f64).min(1.0) as f32;
        for (slot, w) in waiting.take(k).enumerate() {
            let base = slot * JOB_FEATURES;
            obs[base] = (w.wait / self.cfg.max_wait).min(1.0) as f32;
            obs[base + 1] = (w.time_bound / self.cfg.max_request_time).min(1.0) as f32;
            obs[base + 2] = (w.procs as f64 / total_procs as f64).min(1.0) as f32;
            obs[base + 3] = if w.can_run_now { 1.0 } else { 0.0 };
            obs[base + 4] = free_frac;
            obs[base + 5] = pressure;
            obs[base + 6] = 1.0;
            mask[slot] = 0.0;
        }
    }
}

/// One waiting job's schedule-time features as a serving request carries
/// them: exactly the inputs [`ObsEncoder`] reads from a [`WaitingJob`],
/// decoupled from the borrowed [`rlsched_swf::Job`] record so the view
/// can cross a process boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotJob {
    /// Seconds the job has been waiting.
    pub wait: f64,
    /// Requested runtime bound (never the actual runtime).
    pub time_bound: f64,
    /// Requested processors.
    pub procs: u32,
    /// True when the request fits the currently free processors.
    pub can_run_now: bool,
}

/// A serializable decision point: the owned, wire-friendly form of
/// [`QueueView`] that a remote client sends to a policy-serving tier.
///
/// `jobs` may be truncated to the encoder window (slots past `max_obsv`
/// never influence the observation); `queue_len` preserves the *full*
/// waiting-queue length so the queue-pressure feature and the
/// action-clamp bound survive the truncation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueSnapshot {
    /// Idle processors.
    pub free_procs: u32,
    /// Cluster size.
    pub total_procs: u32,
    /// Total waiting jobs (≥ `jobs.len()` when truncated).
    pub queue_len: u32,
    /// The observable window of waiting jobs, FCFS order.
    pub jobs: Vec<SnapshotJob>,
}

impl QueueSnapshot {
    /// Snapshot a [`QueueView`], keeping at most `window` jobs (pass the
    /// encoder's `max_obsv`; extra jobs cannot affect the observation).
    pub fn from_view(view: &QueueView<'_>, window: usize) -> Self {
        QueueSnapshot {
            free_procs: view.free_procs,
            total_procs: view.total_procs,
            queue_len: view.waiting.len() as u32,
            jobs: view
                .waiting
                .iter()
                .take(window)
                .map(|w| SnapshotJob {
                    wait: w.wait,
                    time_bound: w.job.time_bound(),
                    procs: w.job.procs(),
                    can_run_now: w.can_run_now,
                })
                .collect(),
        }
    }

    /// Full waiting-queue length (the action-clamp bound).
    pub fn queue_len(&self) -> usize {
        self.queue_len as usize
    }
}

/// Re-exported for convenience of downstream mask assertions.
pub const MASK_OFFSET: f32 = MASK_OFF;

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_sim::WaitingJob;
    use rlsched_swf::Job;

    fn view_with(jobs: &[Job], time: f64, free: u32, total: u32) -> QueueView<'_> {
        QueueView {
            time,
            free_procs: free,
            total_procs: total,
            waiting: jobs
                .iter()
                .enumerate()
                .map(|(i, job)| WaitingJob {
                    job,
                    job_index: i,
                    wait: time - job.submit_time,
                    can_run_now: job.procs() <= free,
                })
                .collect(),
        }
    }

    #[test]
    fn dims_follow_config() {
        let e = ObsEncoder::new(ObsConfig {
            max_obsv: 16,
            ..ObsConfig::default()
        });
        assert_eq!(e.obs_dim(), 16 * JOB_FEATURES);
        assert_eq!(e.n_actions(), 16);
    }

    #[test]
    fn encodes_features_in_layout_order() {
        let jobs = vec![Job::new(1, 0.0, 100.0, 8, 3600.0)];
        let v = view_with(&jobs, 7200.0, 16, 32);
        let e = ObsEncoder::new(ObsConfig {
            max_obsv: 4,
            max_wait: 14400.0,
            max_request_time: 7200.0,
        });
        let (obs, mask) = e.encode(&v);
        assert_eq!(obs.len(), 4 * JOB_FEATURES);
        assert!((obs[0] - 0.5).abs() < 1e-6, "wait 7200/14400");
        assert!((obs[1] - 0.5).abs() < 1e-6, "request 3600/7200");
        assert!((obs[2] - 0.25).abs() < 1e-6, "procs 8/32");
        assert_eq!(obs[3], 1.0, "fits in 16 free");
        assert!((obs[4] - 0.5).abs() < 1e-6, "free fraction");
        assert!((obs[5] - 0.25).abs() < 1e-6, "1 of 4 slots used");
        assert_eq!(obs[6], 1.0, "valid flag");
        assert_eq!(mask[0], 0.0);
        assert_eq!(mask[1], MASK_OFFSET);
    }

    #[test]
    fn padding_slots_are_zero_and_masked() {
        let jobs = vec![Job::new(1, 0.0, 10.0, 1, 10.0)];
        let v = view_with(&jobs, 0.0, 4, 4);
        let e = ObsEncoder::new(ObsConfig {
            max_obsv: 3,
            ..ObsConfig::default()
        });
        let (obs, mask) = e.encode(&v);
        for slot in 1..3 {
            for f in 0..JOB_FEATURES {
                assert_eq!(obs[slot * JOB_FEATURES + f], 0.0);
            }
            assert_eq!(mask[slot], MASK_OFFSET);
        }
    }

    #[test]
    fn overflow_is_cut_off_fcfs() {
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::new(i + 1, i as f64, 10.0, 1, 10.0))
            .collect();
        let v = view_with(&jobs, 10.0, 4, 4);
        let e = ObsEncoder::new(ObsConfig {
            max_obsv: 3,
            ..ObsConfig::default()
        });
        let (obs, mask) = e.encode(&v);
        // All three slots valid; they are the three earliest arrivals
        // (queue order), with strictly decreasing wait times.
        assert!(mask.iter().all(|&m| m == 0.0));
        let w0 = obs[0];
        let w1 = obs[JOB_FEATURES];
        let w2 = obs[2 * JOB_FEATURES];
        assert!(w0 > w1 && w1 > w2, "waits {w0} {w1} {w2}");
    }

    #[test]
    fn normalization_caps_at_one() {
        let jobs = vec![Job::new(1, 0.0, 1e9, 1000, 1e9)];
        let v = view_with(&jobs, 1e9, 4, 4);
        let e = ObsEncoder::new(ObsConfig {
            max_obsv: 2,
            ..ObsConfig::default()
        });
        let (obs, _) = e.encode(&v);
        for (f, &v) in obs.iter().enumerate().take(3) {
            assert!(v <= 1.0, "feature {f} = {v}");
        }
    }

    #[test]
    fn snapshot_encoding_is_bit_identical_to_view_encoding() {
        // The wire path (QueueSnapshot) and the in-process path
        // (QueueView) must produce the same observation bits — that is
        // what makes remote serving decisions exactly reproducible.
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::new(i + 1, i as f64 * 3.0, 40.0 + i as f64, 1 + i, 500.0))
            .collect();
        let v = view_with(&jobs, 30.0, 5, 16);
        let e = ObsEncoder::new(ObsConfig {
            max_obsv: 4,
            ..ObsConfig::default()
        });
        let (obs, mask) = e.encode(&v);
        let snap = QueueSnapshot::from_view(&v, e.cfg.max_obsv);
        assert_eq!(snap.queue_len(), 6, "full queue length survives truncation");
        assert_eq!(snap.jobs.len(), 4, "window truncated to max_obsv");
        let (mut sobs, mut smask) = (Vec::new(), Vec::new());
        e.encode_snapshot_extend(&snap, &mut sobs, &mut smask);
        assert_eq!(obs, sobs, "snapshot observation bits match the view's");
        assert_eq!(mask, smask, "snapshot mask bits match the view's");
        // …and the snapshot survives a JSON round trip with the same bits.
        let json = serde_json::to_string(&snap).unwrap();
        let back: QueueSnapshot = serde_json::from_str(&json).unwrap();
        let (mut robs, mut rmask) = (Vec::new(), Vec::new());
        e.encode_snapshot_extend(&back, &mut robs, &mut rmask);
        assert_eq!(obs, robs, "wire round trip preserves observation bits");
        assert_eq!(mask, rmask);
    }

    #[test]
    fn cannot_run_flag_when_cluster_busy() {
        let jobs = vec![Job::new(1, 0.0, 10.0, 8, 10.0)];
        let v = view_with(&jobs, 0.0, 4, 16);
        let e = ObsEncoder::new(ObsConfig {
            max_obsv: 2,
            ..ObsConfig::default()
        });
        let (obs, _) = e.encode(&v);
        assert_eq!(obs[3], 0.0, "8 procs do not fit 4 free");
    }
}
