//! Heuristic batch-job schedulers: the baselines of the RLScheduler paper.
//!
//! Table III of the paper lists the priority functions evaluated against
//! RLScheduler. Each assigns every waiting job a *score*; the job with the
//! smallest score is scheduled next:
//!
//! | Name   | score(t)                                   |
//! |--------|--------------------------------------------|
//! | FCFS   | `s_t` (submit time)                        |
//! | SJF    | `r_t` (requested runtime)                  |
//! | WFP3   | `-(w_t / r_t)^3 * n_t`                     |
//! | UNICEP | `-w_t / (log2(n_t) * r_t)`                 |
//! | F1     | `log10(r_t) * n_t + 870 * log10(s_t)`      |
//!
//! where `w_t` is the current waiting time, `r_t` the requested runtime,
//! `n_t` the requested processors and `s_t` the submit time. WFP3 and
//! UNICEP favor jobs that wait long, run short and request few processors
//! (expert-tweaked priority families [3]); F1 is the best
//! simulation+regression scheduler from Carastan-Santos et al. [4].
//!
//! All of them implement [`rlsched_sim::Policy`], so they plug into the
//! same episode driver as the RL agent. A seeded [`RandomPolicy`] and two
//! extra heuristics (LJF, SmallestFirst) are included for tests and
//! ablations.

pub mod heuristics;
pub mod random;

pub use heuristics::{select_parts, select_streaming, HeuristicKind, PriorityScheduler};
pub use random::RandomPolicy;
