//! Throwaway phase profiler for the lockstep rollout loop (not wired
//! into CI): times policy/value/sample/step/store separately at a given
//! n_envs so regressions in any one phase are attributable.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlsched_rl::{MaskedCategorical, PolicyModel, PpoConfig, ValueModel, VecEnv};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SchedulingEnv};

fn main() {
    if std::env::args().nth(1).as_deref() == Some("collect") {
        collect_widths();
        return;
    }
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    const SEQ_LEN: usize = 64;
    let agent = Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 64,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig::default(),
        seed: 5,
    });
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(1024, 3));
    let proto = SchedulingEnv::new(
        trace,
        SEQ_LEN,
        SimConfig::default(),
        *agent.encoder(),
        agent.objective(),
    );
    let mut venv = VecEnv::new((0..n).map(|_| proto.clone()).collect::<Vec<_>>());
    let seeds: Vec<u64> = (0..n as u64).collect();
    let na = venv.n_actions();

    let (mut t_pi, mut t_v, mut t_s, mut t_step) = (0.0f64, 0.0, 0.0, 0.0);
    let mut scratch = rlsched_nn::Scratch::new();
    let (mut obs, mut masks) = (Vec::new(), Vec::new());
    let (mut logps, mut values) = (Vec::new(), Vec::<f64>::new());
    let mut actions = Vec::new();
    let mut outcomes = Vec::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mut steps = 0usize;
    for _ in 0..reps {
        venv.reset_all(&seeds, &mut obs, &mut masks);
        while !venv.is_done() {
            let rows = venv.live_count();
            let t0 = Instant::now();
            agent
                .ppo()
                .policy
                .log_probs_fast_batch(&obs, &masks, rows, &mut scratch, &mut logps);
            let t1 = Instant::now();
            agent
                .ppo()
                .value
                .value_fast_batch(&obs, rows, &mut scratch, &mut values);
            let t2 = Instant::now();
            actions.clear();
            for r in 0..rows {
                let dist = MaskedCategorical::new(&logps[r * na..(r + 1) * na]);
                actions.push(dist.sample(&mut rng));
            }
            let t3 = Instant::now();
            venv.step_all(&actions, &mut obs, &mut masks, &mut outcomes);
            let t4 = Instant::now();
            t_pi += (t1 - t0).as_secs_f64();
            t_v += (t2 - t1).as_secs_f64();
            t_s += (t3 - t2).as_secs_f64();
            t_step += (t4 - t3).as_secs_f64();
            steps += rows;
        }
    }
    let per = 1e9 / steps as f64;
    println!("n_envs={n}  steps={steps}");
    println!("  policy batch : {:8.1} ns/step", t_pi * per);
    println!("  value batch  : {:8.1} ns/step", t_v * per);
    println!("  sampling     : {:8.1} ns/step", t_s * per);
    println!("  step_all     : {:8.1} ns/step", t_step * per);
    println!(
        "  total        : {:8.1} ns/step",
        (t_pi + t_v + t_s + t_step) * per
    );
}

/// Full `collect_rollouts_vec` (stores + GAE + batch assembly included)
/// of 32 episodes at several lockstep widths, timed in-process.
fn collect_widths() {
    use rlsched_rl::collect_rollouts_vec;
    const SEQ_LEN: usize = 64;
    let agent = Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 64,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig::default(),
        seed: 5,
    });
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(1024, 3));
    let proto = SchedulingEnv::new(
        trace,
        SEQ_LEN,
        SimConfig::default(),
        *agent.encoder(),
        agent.objective(),
    );
    let seeds: Vec<u64> = (0..32).collect();
    let reps = 40;
    for &w in &[1usize, 2, 4, 8, 16, 32] {
        let mut venv = VecEnv::new((0..w).map(|_| proto.clone()).collect::<Vec<_>>());
        // warm
        let _ = collect_rollouts_vec(agent.ppo(), &mut venv, &seeds);
        let t0 = Instant::now();
        let mut steps = 0usize;
        for _ in 0..reps {
            let (b, _s) = collect_rollouts_vec(agent.ppo(), &mut venv, &seeds);
            steps += b.len();
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "width {:2}: {:7.0} steps/s  ({:.2} us/step)",
            w,
            steps as f64 / dt,
            dt * 1e6 / steps as f64
        );
    }
}
