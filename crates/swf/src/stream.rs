//! Streaming SWF reader: an iterator of [`Job`]s over any [`BufRead`]
//! source that never materializes the trace.
//!
//! [`crate::parse_reader`] builds one big `Vec<Job>` — fine for the
//! paper's sampled windows, fatal for replaying multi-year archives with
//! millions of records. [`StreamReader`] reads one line at a time into a
//! reused buffer and yields each job as it is parsed: memory stays
//! constant in the trace length, and a well-formed line allocates
//! nothing beyond the (warm) line buffer.
//!
//! The two readers agree exactly: header directives and prose comments
//! are folded into the same [`SwfHeader`], blank lines are skipped, and
//! a malformed line produces the same [`SwfError`] at the same 1-based
//! line number (pinned by the stream-parity suite).

use std::io::BufRead;

use crate::error::SwfError;
use crate::job::Job;
use crate::parse::{parse_header_line, parse_line, SwfHeader};

/// An iterator of `Result<Job, SwfError>` over an SWF byte stream.
///
/// Header `;` lines may appear anywhere (archives occasionally interleave
/// comments with records); they accumulate into [`StreamReader::header`]
/// as the stream advances. The cluster size is therefore best read after
/// the header block has been consumed — [`StreamReader::max_procs`]
/// falls back to the largest processor request *seen so far* when no
/// `MaxProcs`/`MaxNodes` directive has appeared, mirroring
/// [`crate::parse_reader`]'s whole-trace fallback.
#[derive(Debug)]
pub struct StreamReader<R: BufRead> {
    reader: R,
    header: SwfHeader,
    /// Reused line buffer; its capacity warms to the longest line.
    line: String,
    /// 1-based number of the last line read.
    lineno: usize,
    /// Largest `Job::procs()` among the jobs yielded so far.
    observed_procs: u32,
    /// Set once an error has been yielded or the stream ended; the
    /// iterator then stays fused.
    done: bool,
}

impl<R: BufRead> StreamReader<R> {
    /// Wrap a buffered reader positioned at the start of an SWF document.
    pub fn new(reader: R) -> Self {
        StreamReader {
            reader,
            header: SwfHeader::default(),
            line: String::new(),
            lineno: 0,
            observed_procs: 0,
            done: false,
        }
    }

    /// Header metadata accumulated so far (complete once the first job
    /// has been yielded, for the conventional header-then-records layout).
    pub fn header(&self) -> &SwfHeader {
        &self.header
    }

    /// 1-based number of the last line read (0 before the first read).
    pub fn line_number(&self) -> usize {
        self.lineno
    }

    /// The cluster size: the header's `MaxProcs`/`MaxNodes` directive, or
    /// the largest processor request seen so far (minimum 1) when the
    /// header carries none — the same fallback [`crate::parse_reader`]
    /// applies over the whole trace.
    pub fn max_procs(&self) -> u32 {
        self.header
            .max_procs()
            .unwrap_or(self.observed_procs.max(1))
    }
}

impl<R: BufRead> Iterator for StreamReader<R> {
    type Item = Result<Job, SwfError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(SwfError::Io(e)));
                }
            }
            self.lineno += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if trimmed.starts_with(';') {
                parse_header_line(trimmed, &mut self.header);
                continue;
            }
            return match parse_line(trimmed, self.lineno) {
                Ok(job) => {
                    self.observed_procs = self.observed_procs.max(job.procs());
                    Some(Ok(job))
                }
                Err(e) => {
                    self.done = true;
                    Some(Err(e))
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_reader;
    use crate::trace::JobTrace;

    const SAMPLE: &str = "\
; Version: 2.2
; MaxProcs: 128
; a prose comment

1 0 5 100 4 -1 -1 4 120 -1 1 3 2 7 1 0 -1 -1

2 10 -1 50 -1 -1 -1 8 60 -1 0 4 2 7 1 0 -1 -1
";

    #[test]
    fn stream_matches_parse_reader() {
        let jobs: Vec<Job> = StreamReader::new(SAMPLE.as_bytes())
            .map(|j| j.unwrap())
            .collect();
        let materialized = parse_reader(SAMPLE.as_bytes()).unwrap();
        let mut s = StreamReader::new(SAMPLE.as_bytes());
        s.by_ref().for_each(drop);
        let streamed = JobTrace::with_header(jobs, s.max_procs(), s.header().clone());
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn header_complete_after_first_job() {
        let mut s = StreamReader::new(SAMPLE.as_bytes());
        let first = s.next().unwrap().unwrap();
        assert_eq!(first.id, 1);
        assert_eq!(s.header().fields.get("Version").unwrap(), "2.2");
        assert_eq!(s.header().comments, vec!["a prose comment"]);
        assert_eq!(s.max_procs(), 128);
    }

    #[test]
    fn error_carries_stream_line_number() {
        let src = "; MaxProcs: 4\n1 0 0 10 1 -1 -1 1 10 -1 1 1 1 1 1 1 -1 -1\nbad line\n";
        let mut s = StreamReader::new(src.as_bytes());
        assert!(s.next().unwrap().is_ok());
        match s.next().unwrap().unwrap_err() {
            SwfError::FieldCount { line, found } => {
                assert_eq!(line, 3);
                assert_eq!(found, 2);
            }
            other => panic!("unexpected error: {other}"),
        }
        assert!(s.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn max_procs_falls_back_to_observed() {
        let src = "1 0 0 10 16 -1 -1 16 10 -1 1 1 1 1 1 1 -1 -1\n";
        let mut s = StreamReader::new(src.as_bytes());
        assert_eq!(s.max_procs(), 1, "no jobs seen yet");
        s.next().unwrap().unwrap();
        assert_eq!(s.max_procs(), 16);
    }

    #[test]
    fn empty_input_yields_nothing() {
        let mut s = StreamReader::new("".as_bytes());
        assert!(s.next().is_none());
        assert_eq!(s.max_procs(), 1);
    }
}
