//! SchedGym: the discrete-event HPC cluster simulator of the RLScheduler
//! paper (§IV-D), reimplemented as a Rust library.
//!
//! The simulator replays an SWF job trace against a homogeneous cluster of
//! `P` processors. Whenever at least one job is waiting, a *policy* (a
//! heuristic priority function or the RL agent) is asked to pick one; the
//! simulator then either starts the job immediately or — when resources are
//! insufficient — reserves it and advances virtual time, optionally
//! backfilling smaller jobs into the holes (EASY backfilling, §II-A4).
//!
//! Two views are provided:
//!
//! * [`SchedSession`] — a gym-style `reset`/`observe`/`step` interface used
//!   by the RL trainer, which needs to interleave decisions with learning.
//! * [`run_episode`] — a driver that runs a [`Policy`] over an entire trace
//!   and returns the [`EpisodeMetrics`] the paper's tables report.
//!
//! Scheduling-relevant knowledge is strictly separated: policies observe
//! only submit-time attributes and the user's *requested* runtime
//! ([`rlsched_swf::Job::time_bound`]); actual runtimes drive completion
//! events inside the simulator only, mirroring §IV-D ("the accurate runtime
//! will not be available to the schedulers").

pub mod calendar;
pub mod episode;
pub mod error;
pub mod metrics;
pub mod policy;
pub mod session;
pub mod stream;

pub use calendar::{IndexedQueue, LinearQueue, QueueBackend};
pub use episode::run_episode;
pub use error::SimError;
pub use metrics::{EpisodeMetrics, JobOutcome, MetricKind, BSLD_THRESHOLD};
pub use policy::{Policy, QueueView, WaitingJob};
pub use session::{BackfillMode, LinearSession, SchedSession, SimConfig};
pub use stream::{StreamMetrics, StreamSession};
