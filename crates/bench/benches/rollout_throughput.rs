//! Rollout throughput: env-steps/sec of trajectory collection at
//! n_envs ∈ {1, 8, 32}, comparing the lockstep **batched** path (one
//! `VecEnv(n)`, every live env scored through one stacked forward per
//! simulator tick) against the **per-env** path (n separate `VecEnv(1)`
//! collections — exactly the old sequential stepping). Identical seeds,
//! identical trajectories (the parity tests pin that), so the gap is
//! purely the amortization of the policy/critic weight stream.
//!
//! Each measured iteration collects `n_envs × SEQ_LEN` env-steps; divide
//! `median_ns` by that to get ns/env-step. The criterion shim emits
//! `BENCH_rollout_throughput.json` for the harness to track.

use criterion::{criterion_group, criterion_main, Criterion};

use rlsched_rl::{collect_episodes, collect_rollouts_vec, PpoConfig, RolloutBuffer, VecEnv};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SchedulingEnv};

const SEQ_LEN: usize = 64;

fn agent() -> Agent {
    Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 64,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig::default(),
        seed: 5,
    })
}

fn env_for(agent: &Agent) -> SchedulingEnv {
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(1024, 3));
    SchedulingEnv::new(
        trace,
        SEQ_LEN,
        SimConfig::default(),
        *agent.encoder(),
        agent.objective(),
    )
}

fn bench_rollout_throughput(c: &mut Criterion) {
    let agent = agent();
    let proto = env_for(&agent);

    let mut group = c.benchmark_group("rollout_throughput");
    for &n in &[1usize, 8, 32] {
        let seeds: Vec<u64> = (0..n as u64).collect();

        // Batched: one VecEnv stepping all n envs in lockstep.
        let mut venv = VecEnv::new((0..n).map(|_| proto.clone()).collect::<Vec<_>>());
        group.bench_function(format!("batched_n{n}"), |b| {
            b.iter(|| {
                let (batch, _stats) = collect_rollouts_vec(agent.ppo(), &mut venv, &seeds);
                std::hint::black_box(batch.len())
            })
        });

        // Per-env: n sequential single-env collections (the old path,
        // kept as a VecEnv of size 1), merged into the same single
        // normalized training batch the batched arm produces — identical
        // output bits (the parity tests pin that), so the margin is
        // purely the stepping/scoring strategy.
        let mut singles: Vec<VecEnv<SchedulingEnv>> =
            (0..n).map(|_| VecEnv::new(vec![proto.clone()])).collect();
        group.bench_function(format!("perenv_n{n}"), |b| {
            b.iter(|| {
                let mut bufs = Vec::with_capacity(n);
                for (venv, &seed) in singles.iter_mut().zip(&seeds) {
                    let (mut episode_bufs, _stats) = collect_episodes(agent.ppo(), venv, &[seed]);
                    bufs.append(&mut episode_bufs);
                }
                let batch = RolloutBuffer::into_batch(bufs);
                std::hint::black_box(batch.len())
            })
        });
    }
    group.finish();
}

/// Measurement settings: longer than the other benches' smoke gauges —
/// the batched-vs-per-env margin at large n is ~10-30%, and short
/// windows on a busy 1-core box cannot resolve that reliably.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(6))
        .sample_size(10)
}
criterion_group! {name = benches; config = short_config(); targets = bench_rollout_throughput}
criterion_main!(benches);
