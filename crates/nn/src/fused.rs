//! Tape-free fused forward+backward for the PPO update.
//!
//! The autodiff tape ([`crate::Graph`]) exists so *any* op pipeline can be
//! differentiated; the PPO update differentiates the **same** pipeline
//! thousands of times per epoch: an MLP chain, a masked log-softmax, a
//! categorical gather, and the clipped-surrogate / entropy / value-loss
//! scalar tail. This module hand-writes that forward+backward once —
//! `infer.rs` already does it for the forward-only scoring path; this is
//! its training-side sibling.
//!
//! One forward pass runs the batched layer chain on the shared
//! [`crate::simd`] kernels while stashing only the per-layer activations
//! the analytic backward needs (in a caller-owned [`FusedScratch`]); the
//! backward fuses masked-log-softmax + gather + PPO clip/entropy (or the
//! value squared-error) gradients into a single dlogits pass, then walks
//! the layers with the same TN (`dW = Xᵀ·dpre`) and transposed-W
//! (`dX = dpre·Wᵀ`) kernel dispatches the tape's `Linear` backward uses —
//! no graph nodes, no buffer-pool bookkeeping, no per-op dispatch, and no
//! heap allocation at steady state.
//!
//! # Bit-identity contract
//!
//! The fused pass is **bit-identical to the tape** on whichever kernel
//! dispatch arm is active (AVX2/FMA or `RLSCHED_FORCE_SCALAR`): every
//! matmul goes through the same [`crate::simd`] entry points with the
//! same shapes, every elementwise pass replicates the tape's accumulation
//! order (including the needs-grad pruning that skips `dX` into the
//! observation matrix, the bias row-accumulation order, and the
//! `exp`-underflow short-circuit of the log-softmax backward). The
//! fused-vs-tape parity property tests (`tests/fused_parity_prop.rs` and
//! `rlscheduler`'s update-level suite) pin this with exact `==`
//! comparisons, so N epochs of fused updates reproduce the tape's
//! training trajectory bit for bit — checkpoints and Adam state are
//! interchangeable between the two paths.
//!
//! # Supported architectures
//!
//! Exactly the paper's trainable policies: a dense [`Mlp`] chain under
//! either logits head —
//!
//! * [`FusedHead::Flat`]: `logits = mlp(obs)`, one row per transition
//!   (the MLP v1–v3 baselines of Table IV, and every critic).
//! * [`FusedHead::Kernel`]: the kernel network of Fig 5 — the `[n, K·F]`
//!   observation stacks to `[n·K, F]` job rows, the shared-weight kernel
//!   scores each row, and the `[n·K, 1]` scores read back as `[n, K]`
//!   logits. (The reshapes are views; no data moves.)
//!
//! Anything else (the LeNet CNN baseline) keeps using the tape — the
//! dispatch lives in `rlsched-rl`'s `Ppo::update`.

use crate::graph::Act;
use crate::infer;
use crate::layers::Mlp;
use crate::simd;
use crate::tensor::Tensor;

/// How the policy turns MLP outputs into `[n, n_actions]` logits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedHead {
    /// `logits = mlp(obs)`: one MLP row per transition; the MLP's output
    /// width is the action count.
    Flat,
    /// The paper's kernel network: the observation is `window` job rows
    /// of `mlp.in_dim()` features each, the scalar-head MLP scores every
    /// job with shared weights, and the scores are the logits.
    Kernel {
        /// Jobs per observation window (== action count).
        window: usize,
    },
}

/// A borrowed description of a policy the fused update supports: the
/// trainable MLP chain plus its logits head.
#[derive(Debug, Clone, Copy)]
pub struct FusedPolicy<'a> {
    /// The trainable layer chain.
    pub mlp: &'a Mlp,
    /// The logits head on top of it.
    pub head: FusedHead,
}

impl FusedPolicy<'_> {
    /// `(layer-stack rows, logits width)` for an `n`-transition batch.
    fn dims(&self, n: usize) -> (usize, usize) {
        match self.head {
            FusedHead::Flat => (n, self.mlp.out_dim()),
            FusedHead::Kernel { window } => {
                assert_eq!(
                    self.mlp.out_dim(),
                    1,
                    "kernel head needs a scalar-score MLP"
                );
                (n * window, window)
            }
        }
    }
}

/// Reusable buffers for the fused pass. One per network (the PPO trainer
/// holds one for the actor and one for the critic); every buffer only
/// grows to its high-water mark, so steady-state updates allocate
/// nothing.
#[derive(Debug, Default)]
pub struct FusedScratch {
    /// Post-activation output of every layer (`acts[i]` = layer `i`).
    acts: Vec<Vec<f32>>,
    /// Masked log-probabilities, `[n, width]`.
    logp: Vec<f32>,
    /// Selected (per-action) log-probs, `[n]` — the KL diagnostic input.
    sel: Vec<f32>,
    /// Gradient ping buffer (holds `dY` of the layer being processed).
    dy: Vec<f32>,
    /// Gradient pong buffer (receives `dX`).
    dy2: Vec<f32>,
    /// Pre-activation gradient of the current layer.
    dpre: Vec<f32>,
    /// Transposed weights for the `dX` gemm (mirrors the tape's pooled
    /// transpose).
    wt: Vec<f32>,
    /// Parameter gradients in bind order (`w0, b0, w1, b1, …`).
    grads: Vec<Tensor>,
}

impl FusedScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full masked log-prob matrix of the last
    /// [`policy_forward`] (`[n, width]` row-major).
    pub fn logp_all(&self) -> &[f32] {
        &self.logp
    }

    /// The selected per-transition log-probs of the last
    /// [`policy_forward`].
    pub fn selected_logp(&self) -> &[f32] {
        &self.sel
    }

    /// Parameter gradients of the last backward, in the network's bind
    /// order (`w0, b0, w1, b1, …`) — index-aligned with
    /// `Mlp::params()`.
    pub fn grads(&self) -> &[Tensor] {
        &self.grads
    }

    /// Mutable gradient access (for global-norm clipping).
    pub fn grads_mut(&mut self) -> &mut [Tensor] {
        &mut self.grads
    }

    fn ensure_grads(&mut self, mlp: &Mlp) {
        if self.grads.is_empty() {
            self.grads = mlp
                .layers
                .iter()
                .flat_map(|l| [Tensor::zeros(l.w.shape()), Tensor::zeros(l.b.shape())])
                .collect();
        }
        assert_eq!(
            self.grads.len(),
            mlp.layers.len() * 2,
            "scratch bound to a different architecture"
        );
    }
}

/// Forward the layer chain over `rows` stacked inputs, stashing every
/// layer's post-activation output in `acts` (the analytic backward needs
/// them all — this is the only state the fused pass keeps, where the tape
/// keeps a node per op). Uses the same [`simd::dense_any`] dispatch as
/// the tape's `Graph::linear`, so the values are bit-identical to it.
fn forward_layers(mlp: &Mlp, x0: &[f32], rows: usize, acts: &mut Vec<Vec<f32>>) {
    debug_assert_eq!(x0.len(), rows * mlp.in_dim(), "input volume");
    if acts.len() != mlp.layers.len() {
        acts.resize_with(mlp.layers.len(), Vec::new);
    }
    let last = mlp.layers.len() - 1;
    for i in 0..mlp.layers.len() {
        let layer = &mlp.layers[i];
        let act = if i == last { mlp.output } else { mlp.hidden };
        let (prev, rest) = acts.split_at_mut(i);
        let x = if i == 0 { x0 } else { &prev[i - 1] };
        infer::dense_forward(
            x,
            rows,
            layer.w.data(),
            layer.b.data(),
            layer.in_dim(),
            layer.out_dim(),
            act,
            &mut rest[0],
        );
    }
}

/// Walk the layers last-to-first given `dY` of the final layer in
/// `s.dy`, writing parameter gradients into `s.grads`.
///
/// Replicates the tape's `Linear` backward exactly: the per-activation
/// `dpre` loops, `dW` through the TN kernel dispatch
/// (`Tensor::matmul_tn_into`'s exact calls), `db` as ascending-row
/// column sums, and `dX` through the transpose-W + broadcast-gemm path
/// (scalar NT fallback) — including the needs-grad pruning that never
/// computes `dX` of the first layer (its input is the constant
/// observation matrix).
fn backward_layers(mlp: &Mlp, x0: &[f32], rows: usize, s: &mut FusedScratch) {
    s.ensure_grads(mlp);
    let last = mlp.layers.len() - 1;
    for l in (0..=last).rev() {
        let layer = &mlp.layers[l];
        let act = if l == last { mlp.output } else { mlp.hidden };
        let (din, dout) = (layer.in_dim(), layer.out_dim());
        debug_assert_eq!(s.dy.len(), rows * dout, "dY volume at layer {l}");

        // dpre = dY ∘ act'(Y): one loop per activation, expressed through
        // the stashed output — the same derivative-from-output forms the
        // tape uses.
        let y = &s.acts[l];
        s.dpre.clear();
        let pairs = s.dy.iter().zip(y.iter());
        match act.to_act() {
            Act::Identity => s.dpre.extend_from_slice(&s.dy),
            Act::Relu => s
                .dpre
                .extend(pairs.map(|(&g, &yv)| if yv > 0.0 { g } else { 0.0 })),
            Act::Tanh => s.dpre.extend(pairs.map(|(&g, &yv)| g * (1.0 - yv * yv))),
            Act::Sigmoid => s.dpre.extend(pairs.map(|(&g, &yv)| g * yv * (1.0 - yv))),
        }

        // dX = dpre · Wᵀ — skipped for layer 0 (the observation input
        // needs no gradient: the tape's needs-grad pruning). The NT dot
        // kernel is hsum-bound at these widths, so transpose W (tiny)
        // and run the broadcast gemm, exactly like the tape.
        if l > 0 {
            let dx = &mut s.dy2;
            dx.clear();
            dx.resize(rows * din, 0.0);
            let mut dispatched = false;
            if simd::simd_enabled() && din >= 8 {
                s.wt.clear();
                s.wt.resize(din * dout, 0.0);
                simd::transpose(layer.w.data(), din, dout, &mut s.wt);
                dispatched = simd::gemm(&s.dpre, rows, dout, &s.wt, din, None, dx);
            }
            if !dispatched {
                simd::gemm_nt_scalar(&s.dpre, rows, dout, layer.w.data(), din, dx);
            }
        }

        // dW = Xᵀ · dpre (the TN kernel fills its output, no pre-zero
        // needed — same call chain as `Tensor::matmul_tn_into`).
        let x = if l == 0 { x0 } else { &s.acts[l - 1] };
        let dw = s.grads[2 * l].data_mut();
        if !simd::gemm_tn(x, rows, din, &s.dpre, dout, dw) {
            simd::gemm_tn_scalar(x, rows, din, &s.dpre, dout, dw);
        }

        // db = column sums of dpre, rows ascending (the tape's order).
        let db = s.grads[2 * l + 1].data_mut();
        db.fill(0.0);
        for row in s.dpre.chunks_exact(dout) {
            for (d, &v) in db.iter_mut().zip(row) {
                *d += v;
            }
        }

        if l > 0 {
            std::mem::swap(&mut s.dy, &mut s.dy2);
        }
    }
}

/// Batched policy forward: layer chain + masked log-softmax + per-action
/// gather, stashing what the backward and the PPO diagnostics need.
///
/// `obs` is the stacked `[n, obs_dim]` minibatch, `masks` the additive
/// `[n, n_actions]` masks, `actions` the chosen action per transition.
/// After the call, [`FusedScratch::logp_all`] holds the `[n, n_actions]`
/// masked log-probabilities (bit-identical to the tape's
/// `add` + `log_softmax`) and [`FusedScratch::selected_logp`] the
/// gathered per-action row — the approximate-KL input, available
/// *before* committing to a backward pass.
pub fn policy_forward(
    p: &FusedPolicy<'_>,
    obs: &[f32],
    masks: &[f32],
    actions: &[usize],
    n: usize,
    s: &mut FusedScratch,
) {
    assert!(n > 0, "fused forward needs at least one transition");
    let (rows, width) = p.dims(n);
    assert_eq!(obs.len(), rows * p.mlp.in_dim(), "observation volume");
    assert_eq!(masks.len(), n * width, "mask volume");
    assert_eq!(actions.len(), n, "one action per transition");
    forward_layers(p.mlp, obs, rows, &mut s.acts);
    let logits = s.acts.last().expect("non-empty MLP");
    debug_assert_eq!(logits.len(), n * width, "logits volume");
    s.logp.clear();
    s.logp.extend_from_slice(logits);
    for (row, mrow) in s.logp.chunks_mut(width).zip(masks.chunks(width)) {
        for (o, &m) in row.iter_mut().zip(mrow) {
            *o += m;
        }
        infer::log_softmax_inplace(row);
    }
    let FusedScratch { logp, sel, .. } = s;
    sel.clear();
    sel.extend(actions.iter().enumerate().map(|(i, &a)| {
        assert!(a < width, "action {a} out of range");
        logp[i * width + a]
    }));
}

/// The PPO clipped-surrogate loss and its analytic backward, after a
/// [`policy_forward`] on the same inputs. Returns the loss value
/// (`-mean(min(ratio·A, clip(ratio)·A)) + ent_coef·mean(Σ p·logp)`);
/// parameter gradients land in [`FusedScratch::grads`].
///
/// The dlogits kernel fuses, per transition row: ratio / clip / min
/// gradient routing (ties to the unclipped side, exactly like the tape's
/// `min_elem`), the optional entropy-bonus term (in the tape's
/// accumulation order), the gather scatter, and the log-softmax backward
/// `dx = dy − softmax(x)·rowsum(dy)` with the exp-underflow
/// short-circuit. One pass over `[n, n_actions]` replaces the tape's
/// five separate gradient buffers.
#[allow(clippy::too_many_arguments)] // mirrors the PPO objective's term list
pub fn policy_loss_and_grads(
    p: &FusedPolicy<'_>,
    obs: &[f32],
    actions: &[usize],
    advantages: &[f32],
    logp_old: &[f32],
    clip_ratio: f32,
    ent_coef: f32,
    n: usize,
    s: &mut FusedScratch,
) -> f32 {
    let (obj_sum, ent_sum) = policy_backward_scaled(
        p, obs, actions, advantages, logp_old, clip_ratio, ent_coef, n, n, s,
    );
    let mean_obj = obj_sum / n as f32;
    let mut loss = -mean_obj; // == the tape's scale(mean_obj, −1) bit for bit
    if ent_coef != 0.0 {
        let ent_mean = ent_sum / n as f32;
        loss += ent_mean * ent_coef;
    }
    loss
}

/// The dlogits fuse + layer backward of [`policy_loss_and_grads`], with
/// the mean-gradient seeds scaled by `total_n` instead of the local row
/// count — the sharded arm runs this per chunk with the *batch* size as
/// `total_n`, so per-chunk gradients are exact partials of the whole
/// batch's gradient. Returns the raw `(Σ min(s1,s2), Σ p·logp)` partial
/// sums (row-ascending f32 folds over this call's rows).
#[allow(clippy::too_many_arguments)] // the PPO term list + both row counts
fn policy_backward_scaled(
    p: &FusedPolicy<'_>,
    obs: &[f32],
    actions: &[usize],
    advantages: &[f32],
    logp_old: &[f32],
    clip_ratio: f32,
    ent_coef: f32,
    n: usize,
    total_n: usize,
    s: &mut FusedScratch,
) -> (f32, f32) {
    let (rows, width) = p.dims(n);
    assert_eq!(s.logp.len(), n * width, "run policy_forward first");
    assert_eq!(advantages.len(), n, "one advantage per transition");
    assert_eq!(logp_old.len(), n, "one old log-prob per transition");
    s.ensure_grads(p.mlp);

    // Loss-tail gradient seeds, exactly as the tape's backward computes
    // them: d(mean surrogate) = −1/n per element, d(plogp) = ent_coef/n.
    let gm = -1.0f32 / total_n as f32;
    let dplogp = ent_coef / total_n as f32;
    let (lo, hi) = (1.0 - clip_ratio, 1.0 + clip_ratio);

    let FusedScratch { logp, dy, .. } = s;
    dy.clear();
    dy.resize(n * width, 0.0);
    let mut obj_sum = 0.0f32;
    let mut ent_sum = 0.0f32;
    for i in 0..n {
        let row = &logp[i * width..(i + 1) * width];
        let out = &mut dy[i * width..(i + 1) * width];
        let a = actions[i];
        let adv = advantages[i];
        let ratio = (row[a] - logp_old[i]).exp();
        let s1 = ratio * adv;
        let clipped = ratio.clamp(lo, hi);
        let s2 = clipped * adv;
        obj_sum += s1.min(s2);
        // min routes to whichever side won, ties to the unclipped side
        // (f32::min's forward semantics); clamp passes gradient only
        // strictly inside the clip range.
        let d_s1 = if s1 <= s2 { gm } else { 0.0 };
        let d_s2 = if s1 <= s2 { 0.0 } else { gm };
        let d_clipped = d_s2 * adv;
        let mut d_ratio = if ratio > lo && ratio < hi {
            d_clipped
        } else {
            0.0
        };
        d_ratio += d_s1 * adv;
        let d_sel = d_ratio * ratio;
        if ent_coef != 0.0 {
            // Entropy bonus: dlogp gets dplogp·p (from p·logp's logp
            // side) then (dplogp·logp)·p (through exp's backward), in
            // the tape's accumulation order, before the gather scatter.
            let mut row_plogp = 0.0f32;
            for (o, &lpj) in out.iter_mut().zip(row) {
                let pj = infer::exp_or_zero(lpj);
                row_plogp += pj * lpj;
                *o = dplogp * pj + (dplogp * lpj) * pj;
            }
            ent_sum += row_plogp;
            out[a] += d_sel;
            let rowsum: f32 = out.iter().sum();
            for (o, &lpj) in out.iter_mut().zip(row) {
                *o -= infer::exp_or_zero(lpj) * rowsum;
            }
        } else {
            // Without entropy the incoming gradient row is the gather
            // scatter alone; the ascending rowsum fold over it matches
            // the tape bit for bit.
            let rowsum = 0.0f32 + d_sel;
            for (j, (o, &lpj)) in out.iter_mut().zip(row).enumerate() {
                let rj = if j == a { d_sel } else { 0.0 };
                *o = rj - infer::exp_or_zero(lpj) * rowsum;
            }
        }
    }

    // `dy` now holds dlogits: `[n, width]` for the flat head, which the
    // kernel head reads as `[n·window, 1]` — the reshape is a view.
    backward_layers(p.mlp, obs, rows, s);
    (obj_sum, ent_sum)
}

/// Batched critic forward over `[rows, obs_dim]` stacked observations;
/// predictions stash in the scratch for [`value_loss_and_grads`].
pub fn value_forward(mlp: &Mlp, obs: &[f32], rows: usize, s: &mut FusedScratch) {
    assert!(rows > 0, "fused value forward needs at least one row");
    assert_eq!(mlp.out_dim(), 1, "critic must emit one value per row");
    forward_layers(mlp, obs, rows, &mut s.acts);
}

/// The value squared-error loss `mean((v − R)²)` and its analytic
/// backward, after a [`value_forward`] on the same observations. Returns
/// the loss; gradients land in [`FusedScratch::grads`].
pub fn value_loss_and_grads(
    mlp: &Mlp,
    obs: &[f32],
    returns: &[f32],
    rows: usize,
    s: &mut FusedScratch,
) -> f32 {
    let sq_sum = value_backward_scaled(mlp, obs, returns, rows, rows, s);
    sq_sum / rows as f32
}

/// The squared-error backward of [`value_loss_and_grads`] with the mean
/// gradient seeded by `total_rows` — the sharded arm's per-chunk form.
/// Returns the raw `Σ (v−R)²` partial over this call's rows.
fn value_backward_scaled(
    mlp: &Mlp,
    obs: &[f32],
    returns: &[f32],
    rows: usize,
    total_rows: usize,
    s: &mut FusedScratch,
) -> f32 {
    assert_eq!(returns.len(), rows, "one return target per row");
    s.ensure_grads(mlp);
    let FusedScratch { acts, dy, .. } = s;
    let v = acts.last().expect("run value_forward first");
    assert_eq!(v.len(), rows, "prediction volume");
    // d(mean) = 1/n; the squared term contributes g·d twice (the tape's
    // `mul(d, d)` accumulates both factor sides).
    let g = 1.0f32 / total_rows as f32;
    let mut sq_sum = 0.0f32;
    dy.clear();
    for (&vi, &ri) in v.iter().zip(returns) {
        let d = vi - ri;
        sq_sum += d * d;
        let t = g * d;
        dy.push(t + t);
    }
    backward_layers(mlp, obs, rows, s);
    sq_sum
}

/// Rows (transitions) per shard chunk of the sharded backward. Chunk
/// boundaries are a pure function of the batch size and this constant —
/// never of the machine or the worker count — so the chunk-index-ordered
/// gradient merge makes the sharded arm bit-identical at every thread
/// count.
pub const SHARD_ROWS: usize = 64;

/// `[lo, hi)` transition bounds of shard chunk `c` of an `n`-row batch.
fn chunk_bounds(c: usize, n: usize) -> (usize, usize) {
    let lo = c * SHARD_ROWS;
    (lo, (lo + SHARD_ROWS).min(n))
}

/// One shard chunk's scratch plus its loss partial sums.
#[derive(Debug, Default)]
struct ChunkScratch {
    s: FusedScratch,
    /// `Σ min(s1,s2)` over the chunk's rows (policy side).
    obj: f32,
    /// `Σ p·logp` over the chunk's rows (policy side).
    ent: f32,
    /// `Σ (v−R)²` over the chunk's rows (value side).
    sq: f32,
}

/// Reusable buffers for the **sharded** fused pass: one [`FusedScratch`]
/// per fixed [`SHARD_ROWS`]-row chunk (so chunks can run on the rayon
/// shim's workers with no shared mutable state), plus the stitched
/// whole-batch diagnostics. Buffers persist across updates — at a fixed
/// minibatch size the steady-state sharded update allocates nothing on
/// the inline (1-worker) path.
///
/// # Determinism contract
///
/// The sharded arm is **worker-count invariant**, not bit-identical to
/// the monolithic [`policy_loss_and_grads`]: chunking changes the f32
/// association of the dW/db row reductions (for batches over
/// [`SHARD_ROWS`] rows), which no summation order can reconcile with the
/// monolithic fold. Instead every quantity here is a pure function of
/// the *batch*: forward activations and dlogits are row-local (and
/// bit-equal to the monolithic pass by row-count invariance — so
/// [`ShardedScratch::logp_all`] / [`selected_logp`](Self::selected_logp)
/// diagnostics match the unsharded arm exactly), per-chunk gradient
/// partials depend only on fixed chunk contents and are reduced by a
/// chunk-index-ordered binary tree, and loss partials fold in chunk
/// order. Batches of ≤ [`SHARD_ROWS`] rows are one chunk, where the
/// sharded arm IS bit-identical to the monolithic one.
#[derive(Debug, Default)]
pub struct ShardedScratch {
    chunks: Vec<ChunkScratch>,
    /// Concatenated masked log-probs `[n, width]` (chunk order == row
    /// order).
    logp: Vec<f32>,
    /// Concatenated selected log-probs `[n]`.
    sel: Vec<f32>,
    /// Transitions (policy) or rows (value) in the last sharded forward.
    n: usize,
}

impl ShardedScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_chunks(&mut self, n_chunks: usize) {
        if self.chunks.len() < n_chunks {
            self.chunks.resize_with(n_chunks, ChunkScratch::default);
        }
    }

    /// The full masked log-prob matrix of the last
    /// [`policy_forward_sharded`] (`[n, width]` row-major) — bit-equal
    /// to the monolithic [`FusedScratch::logp_all`].
    pub fn logp_all(&self) -> &[f32] {
        &self.logp
    }

    /// The selected per-transition log-probs of the last
    /// [`policy_forward_sharded`] — bit-equal to the monolithic
    /// [`FusedScratch::selected_logp`].
    pub fn selected_logp(&self) -> &[f32] {
        &self.sel
    }

    /// Merged parameter gradients of the last sharded backward, in bind
    /// order (`w0, b0, w1, b1, …`).
    pub fn grads(&self) -> &[Tensor] {
        self.chunks
            .first()
            .expect("run a sharded backward first")
            .s
            .grads()
    }

    /// Mutable merged-gradient access (for global-norm clipping).
    pub fn grads_mut(&mut self) -> &mut [Tensor] {
        self.chunks
            .first_mut()
            .expect("run a sharded backward first")
            .s
            .grads_mut()
    }
}

/// Reduce the chunks' gradient partials into chunk 0 with a
/// chunk-index-ordered binary tree (level 0 merges (0,1),(2,3),…; level
/// 1 merges (0,2),(4,6),…). The association is fixed by chunk index
/// alone, so the merged bits are independent of how many workers ran the
/// chunks.
fn merge_chunk_grads(chunks: &mut [ChunkScratch]) {
    let n = chunks.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let (head, tail) = chunks.split_at_mut(i + stride);
            for (d, src) in head[i].s.grads.iter_mut().zip(&tail[0].s.grads) {
                for (dv, &sv) in d.data_mut().iter_mut().zip(src.data()) {
                    *dv += sv;
                }
            }
            i += stride * 2;
        }
        stride *= 2;
    }
}

/// [`policy_forward`] sharded over fixed [`SHARD_ROWS`]-row chunks on
/// the rayon shim's workers. Per-row outputs are bit-equal to the
/// monolithic forward (row-count-invariant kernels); the stitched
/// [`ShardedScratch::logp_all`] / [`ShardedScratch::selected_logp`]
/// diagnostics are available before committing to a backward.
pub fn policy_forward_sharded(
    p: &FusedPolicy<'_>,
    obs: &[f32],
    masks: &[f32],
    actions: &[usize],
    n: usize,
    sh: &mut ShardedScratch,
) {
    use rayon::prelude::*;
    assert!(n > 0, "fused forward needs at least one transition");
    let (rows, width) = p.dims(n);
    assert_eq!(obs.len(), rows * p.mlp.in_dim(), "observation volume");
    assert_eq!(masks.len(), n * width, "mask volume");
    assert_eq!(actions.len(), n, "one action per transition");
    let rpt = rows / n; // layer-stack rows per transition (1 or window)
    let od = rpt * p.mlp.in_dim();
    let n_chunks = n.div_ceil(SHARD_ROWS);
    sh.ensure_chunks(n_chunks);
    sh.n = n;
    sh.chunks[..n_chunks]
        .par_chunks_mut(1)
        .enumerate()
        .for_each(|(c, cs)| {
            let (lo, hi) = chunk_bounds(c, n);
            policy_forward(
                p,
                &obs[lo * od..hi * od],
                &masks[lo * width..hi * width],
                &actions[lo..hi],
                hi - lo,
                &mut cs[0].s,
            );
        });
    // Stitch the diagnostics back in chunk (== row) order.
    sh.logp.clear();
    sh.sel.clear();
    for c in &sh.chunks[..n_chunks] {
        sh.logp.extend_from_slice(&c.s.logp);
        sh.sel.extend_from_slice(&c.s.sel);
    }
}

/// [`policy_loss_and_grads`] sharded over the same fixed chunks as
/// [`policy_forward_sharded`] (which must run first): each chunk fuses
/// its dlogits pass and walks the layers into its own gradient partial
/// (seeded by the *batch* mean, so partials sum to the batch gradient),
/// then partials reduce through the chunk-index-ordered tree merge and
/// loss partials fold in chunk order. See [`ShardedScratch`] for the
/// determinism contract. Returns the loss; merged gradients land in
/// [`ShardedScratch::grads`].
#[allow(clippy::too_many_arguments)] // mirrors policy_loss_and_grads
pub fn policy_loss_and_grads_sharded(
    p: &FusedPolicy<'_>,
    obs: &[f32],
    actions: &[usize],
    advantages: &[f32],
    logp_old: &[f32],
    clip_ratio: f32,
    ent_coef: f32,
    n: usize,
    sh: &mut ShardedScratch,
) -> f32 {
    use rayon::prelude::*;
    let (rows, width) = p.dims(n);
    assert_eq!(sh.n, n, "run policy_forward_sharded first");
    assert_eq!(sh.logp.len(), n * width, "run policy_forward_sharded first");
    assert_eq!(advantages.len(), n, "one advantage per transition");
    assert_eq!(logp_old.len(), n, "one old log-prob per transition");
    let rpt = rows / n;
    let od = rpt * p.mlp.in_dim();
    let n_chunks = n.div_ceil(SHARD_ROWS);
    sh.chunks[..n_chunks]
        .par_chunks_mut(1)
        .enumerate()
        .for_each(|(c, cs)| {
            let (lo, hi) = chunk_bounds(c, n);
            let chunk = &mut cs[0];
            let (obj, ent) = policy_backward_scaled(
                p,
                &obs[lo * od..hi * od],
                &actions[lo..hi],
                &advantages[lo..hi],
                &logp_old[lo..hi],
                clip_ratio,
                ent_coef,
                hi - lo,
                n,
                &mut chunk.s,
            );
            chunk.obj = obj;
            chunk.ent = ent;
        });
    // Loss partials fold in chunk-index order (worker-count invariant;
    // identical to the monolithic fold when the batch is one chunk).
    let mut obj_sum = 0.0f32;
    let mut ent_sum = 0.0f32;
    for c in &sh.chunks[..n_chunks] {
        obj_sum += c.obj;
        ent_sum += c.ent;
    }
    let mean_obj = obj_sum / n as f32;
    let mut loss = -mean_obj;
    if ent_coef != 0.0 {
        let ent_mean = ent_sum / n as f32;
        loss += ent_mean * ent_coef;
    }
    merge_chunk_grads(&mut sh.chunks[..n_chunks]);
    loss
}

/// [`value_forward`] sharded over fixed [`SHARD_ROWS`]-row chunks.
pub fn value_forward_sharded(mlp: &Mlp, obs: &[f32], rows: usize, sh: &mut ShardedScratch) {
    use rayon::prelude::*;
    assert!(rows > 0, "fused value forward needs at least one row");
    assert_eq!(mlp.out_dim(), 1, "critic must emit one value per row");
    assert_eq!(obs.len(), rows * mlp.in_dim(), "observation volume");
    let od = mlp.in_dim();
    let n_chunks = rows.div_ceil(SHARD_ROWS);
    sh.ensure_chunks(n_chunks);
    sh.n = rows;
    sh.chunks[..n_chunks]
        .par_chunks_mut(1)
        .enumerate()
        .for_each(|(c, cs)| {
            let (lo, hi) = chunk_bounds(c, rows);
            value_forward(mlp, &obs[lo * od..hi * od], hi - lo, &mut cs[0].s);
        });
}

/// [`value_loss_and_grads`] sharded over the same fixed chunks as
/// [`value_forward_sharded`] (which must run first); same contract as
/// [`policy_loss_and_grads_sharded`].
pub fn value_loss_and_grads_sharded(
    mlp: &Mlp,
    obs: &[f32],
    returns: &[f32],
    rows: usize,
    sh: &mut ShardedScratch,
) -> f32 {
    use rayon::prelude::*;
    assert_eq!(sh.n, rows, "run value_forward_sharded first");
    assert_eq!(returns.len(), rows, "one return target per row");
    let od = mlp.in_dim();
    let n_chunks = rows.div_ceil(SHARD_ROWS);
    sh.chunks[..n_chunks]
        .par_chunks_mut(1)
        .enumerate()
        .for_each(|(c, cs)| {
            let (lo, hi) = chunk_bounds(c, rows);
            let chunk = &mut cs[0];
            chunk.sq = value_backward_scaled(
                mlp,
                &obs[lo * od..hi * od],
                &returns[lo..hi],
                hi - lo,
                rows,
                &mut chunk.s,
            );
        });
    let mut sq_sum = 0.0f32;
    for c in &sh.chunks[..n_chunks] {
        sq_sum += c.sq;
    }
    merge_chunk_grads(&mut sh.chunks[..n_chunks]);
    sq_sum / rows as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::layers::{Activation, Network, ParamBinds};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(dims: &[usize], seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(dims, Activation::Relu, Activation::Identity, &mut rng)
    }

    /// Deterministic pseudo-random inputs (no RNG dependency in shapes).
    fn filled(n: usize, scale: f32, phase: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 * 0.7 + phase).sin()) * scale)
            .collect()
    }

    #[test]
    fn value_grads_match_tape_bitwise() {
        let net = mlp(&[6, 16, 8, 1], 3);
        let n = 12;
        let obs = filled(n * 6, 0.8, 0.3);
        let returns = filled(n, 2.0, 1.1);

        // Tape arm: exactly the value-loss graph `Ppo::update` builds.
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let o = g.input_from(&obs, &[n, 6]);
        let v = net.forward(&mut g, o, &mut binds);
        let r = g.input_from(&returns, &[n, 1]);
        let d = g.sub(v, r);
        let sq = g.mul(d, d);
        let loss = g.mean(sq);
        g.backward(loss);
        let tape_loss = g.value(loss).item();
        let tape_grads = binds.take_grads(&mut g);

        let mut s = FusedScratch::new();
        value_forward(&net, &obs, n, &mut s);
        let fused_loss = value_loss_and_grads(&net, &obs, &returns, n, &mut s);

        assert_eq!(fused_loss, tape_loss, "loss value");
        assert_eq!(tape_grads.len(), s.grads().len());
        for (i, (t, f)) in tape_grads.iter().zip(s.grads()).enumerate() {
            assert_eq!(t.data(), f.data(), "grad {i} diverged from the tape");
        }
    }

    #[test]
    fn fused_scratch_reuse_is_bit_identical() {
        let net = mlp(&[5, 16, 3], 7);
        let n = 9;
        let obs = filled(n * 5, 0.6, 0.2);
        let masks = vec![0.0f32; n * 3];
        let actions: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let adv = filled(n, 1.5, 0.9);
        let old = filled(n, 0.5, 2.2)
            .iter()
            .map(|x| x - 1.5)
            .collect::<Vec<_>>();
        let p = FusedPolicy {
            mlp: &net,
            head: FusedHead::Flat,
        };
        let mut s = FusedScratch::new();
        policy_forward(&p, &obs, &masks, &actions, n, &mut s);
        let l0 = policy_loss_and_grads(&p, &obs, &actions, &adv, &old, 0.2, 0.0, n, &mut s);
        let g0: Vec<Vec<f32>> = s.grads().iter().map(|t| t.data().to_vec()).collect();
        for _ in 0..3 {
            policy_forward(&p, &obs, &masks, &actions, n, &mut s);
            let l = policy_loss_and_grads(&p, &obs, &actions, &adv, &old, 0.2, 0.0, n, &mut s);
            assert_eq!(l, l0, "loss must not drift across scratch reuse");
            for (a, b) in s.grads().iter().zip(&g0) {
                assert_eq!(a.data(), b.as_slice(), "grads must not drift");
            }
        }
    }

    /// Inputs for an `n`-transition kernel-head policy problem.
    struct PolicyCase {
        obs: Vec<f32>,
        masks: Vec<f32>,
        actions: Vec<usize>,
        adv: Vec<f32>,
        old: Vec<f32>,
    }

    /// `rpt` = layer-stack rows per transition: 1 for [`FusedHead::Flat`],
    /// the window for [`FusedHead::Kernel`].
    fn policy_case(n: usize, in_dim: usize, width: usize, rpt: usize) -> PolicyCase {
        let actions: Vec<usize> = (0..n).map(|i| (i * 5 + 1) % width).collect();
        // Mask one non-selected slot per row so masking is exercised
        // without ever zeroing out the chosen action.
        let masks = (0..n * width)
            .map(|i| {
                let (r, j) = (i / width, i % width);
                let dead = (r + 2) % width;
                if j == dead && dead != actions[r] {
                    -1.0e9 // rl's MASK_OFF convention: finite, exp → 0
                } else {
                    0.0
                }
            })
            .collect();
        PolicyCase {
            obs: filled(n * rpt * in_dim, 0.8, 0.4),
            masks,
            actions,
            adv: filled(n, 1.5, 0.9),
            old: filled(n, 0.5, 2.2).iter().map(|x| x - 1.5).collect(),
        }
    }

    #[test]
    fn single_chunk_sharded_matches_monolithic_bitwise() {
        // Batches of ≤ SHARD_ROWS transitions are one chunk, where the
        // sharded arm must be bit-identical to the monolithic one.
        let net = mlp(&[4, 16, 8, 1], 11);
        let n = SHARD_ROWS; // exactly one full chunk
        let window = 6;
        let c = policy_case(n, 4, window, window);
        let p = FusedPolicy {
            mlp: &net,
            head: FusedHead::Kernel { window },
        };

        let mut mono = FusedScratch::new();
        policy_forward(&p, &c.obs, &c.masks, &c.actions, n, &mut mono);
        let lm = policy_loss_and_grads(
            &p, &c.obs, &c.actions, &c.adv, &c.old, 0.2, 0.01, n, &mut mono,
        );

        let mut sh = ShardedScratch::new();
        policy_forward_sharded(&p, &c.obs, &c.masks, &c.actions, n, &mut sh);
        assert_eq!(sh.logp_all(), mono.logp_all(), "stitched logp diagnostics");
        assert_eq!(sh.selected_logp(), mono.selected_logp(), "selected logp");
        let ls = policy_loss_and_grads_sharded(
            &p, &c.obs, &c.actions, &c.adv, &c.old, 0.2, 0.01, n, &mut sh,
        );

        assert_eq!(ls, lm, "single-chunk sharded loss must equal monolithic");
        for (i, (a, b)) in sh.grads().iter().zip(mono.grads()).enumerate() {
            assert_eq!(a.data(), b.data(), "policy grad {i}");
        }

        // Value side on the same batch size.
        let vnet = mlp(&[5, 16, 1], 13);
        let vobs = filled(n * 5, 0.7, 0.2);
        let rets = filled(n, 2.0, 1.3);
        let mut vm = FusedScratch::new();
        value_forward(&vnet, &vobs, n, &mut vm);
        let vlm = value_loss_and_grads(&vnet, &vobs, &rets, n, &mut vm);
        let mut vs = ShardedScratch::new();
        value_forward_sharded(&vnet, &vobs, n, &mut vs);
        let vls = value_loss_and_grads_sharded(&vnet, &vobs, &rets, n, &mut vs);
        assert_eq!(vls, vlm, "single-chunk sharded value loss");
        for (i, (a, b)) in vs.grads().iter().zip(vm.grads()).enumerate() {
            assert_eq!(a.data(), b.data(), "value grad {i}");
        }
    }

    #[test]
    fn sharded_forward_diagnostics_match_monolithic_across_chunks() {
        // Row-count-invariant kernels: even when the batch spans several
        // chunks, the stitched per-row forward diagnostics are bit-equal
        // to the monolithic forward.
        let net = mlp(&[6, 16, 9], 17);
        let n = 2 * SHARD_ROWS + 19; // three chunks, last ragged
        let c = policy_case(n, 6, 9, 1);
        let p = FusedPolicy {
            mlp: &net,
            head: FusedHead::Flat,
        };
        let mut mono = FusedScratch::new();
        policy_forward(&p, &c.obs, &c.masks, &c.actions, n, &mut mono);
        let mut sh = ShardedScratch::new();
        policy_forward_sharded(&p, &c.obs, &c.masks, &c.actions, n, &mut sh);
        assert_eq!(sh.logp_all(), mono.logp_all(), "stitched logp matrix");
        assert_eq!(sh.selected_logp(), mono.selected_logp(), "selected logp");
    }

    #[test]
    fn sharded_backward_is_thread_count_invariant() {
        // The determinism contract: identical bits (loss, every gradient,
        // diagnostics) at every worker count, pinned against 1 worker.
        let pnet = mlp(&[4, 16, 8, 1], 23);
        let vnet = mlp(&[7, 16, 1], 29);
        let n = 3 * SHARD_ROWS + 7; // four chunks, last ragged
        let window = 5;
        let c = policy_case(n, 4, window, window);
        let p = FusedPolicy {
            mlp: &pnet,
            head: FusedHead::Kernel { window },
        };
        let vobs = filled(n * 7, 0.6, 0.8);
        let rets = filled(n, 1.8, 0.5);

        let run = |threads: usize| {
            rayon::with_threads(threads, || {
                let mut sh = ShardedScratch::new();
                policy_forward_sharded(&p, &c.obs, &c.masks, &c.actions, n, &mut sh);
                let pl = policy_loss_and_grads_sharded(
                    &p, &c.obs, &c.actions, &c.adv, &c.old, 0.2, 0.01, n, &mut sh,
                );
                let pg: Vec<Vec<f32>> = sh.grads().iter().map(|t| t.data().to_vec()).collect();
                let diag = (sh.logp_all().to_vec(), sh.selected_logp().to_vec());
                let mut vs = ShardedScratch::new();
                value_forward_sharded(&vnet, &vobs, n, &mut vs);
                let vl = value_loss_and_grads_sharded(&vnet, &vobs, &rets, n, &mut vs);
                let vg: Vec<Vec<f32>> = vs.grads().iter().map(|t| t.data().to_vec()).collect();
                (pl, pg, diag, vl, vg)
            })
        };

        let base = run(1);
        for k in [2usize, 3, 7] {
            let got = run(k);
            assert_eq!(
                got.0.to_bits(),
                base.0.to_bits(),
                "policy loss at {k} workers"
            );
            assert_eq!(got.1, base.1, "policy grads at {k} workers");
            assert_eq!(got.2, base.2, "forward diagnostics at {k} workers");
            assert_eq!(
                got.3.to_bits(),
                base.3.to_bits(),
                "value loss at {k} workers"
            );
            assert_eq!(got.4, base.4, "value grads at {k} workers");
        }
    }

    #[test]
    fn chunk_partials_sum_to_monolithic_gradient_numerically() {
        // Across chunk boundaries only the f32 association changes: the
        // sharded gradient must agree with the monolithic one to fp
        // tolerance (bit-equality across arms is only promised ≤ one
        // chunk).
        let net = mlp(&[5, 16, 4], 31);
        let n = SHARD_ROWS + 21;
        let c = policy_case(n, 5, 4, 1);
        let p = FusedPolicy {
            mlp: &net,
            head: FusedHead::Flat,
        };
        let mut mono = FusedScratch::new();
        policy_forward(&p, &c.obs, &c.masks, &c.actions, n, &mut mono);
        let lm = policy_loss_and_grads(
            &p, &c.obs, &c.actions, &c.adv, &c.old, 0.2, 0.0, n, &mut mono,
        );
        let mut sh = ShardedScratch::new();
        policy_forward_sharded(&p, &c.obs, &c.masks, &c.actions, n, &mut sh);
        let ls = policy_loss_and_grads_sharded(
            &p, &c.obs, &c.actions, &c.adv, &c.old, 0.2, 0.0, n, &mut sh,
        );
        assert!((ls - lm).abs() <= 1e-6, "loss drifted: {ls} vs {lm}");
        for (i, (a, b)) in sh.grads().iter().zip(mono.grads()).enumerate() {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                    "grad {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "run policy_forward first")]
    fn backward_requires_forward() {
        let net = mlp(&[4, 8, 2], 1);
        let p = FusedPolicy {
            mlp: &net,
            head: FusedHead::Flat,
        };
        let mut s = FusedScratch::new();
        let _ = policy_loss_and_grads(
            &p,
            &[0.0; 8],
            &[0, 1],
            &[0.1, 0.2],
            &[-1.0, -1.0],
            0.2,
            0.0,
            2,
            &mut s,
        );
    }
}
