//! Dense row-major f32 tensors.
//!
//! Networks are small in this system (the paper's kernel policy network
//! has fewer than 1 000 parameters) but PPO batches are not: the update
//! is matmul-bound, so the three matmul flavors the tape needs — plain
//! (`A·B`), NT (`A·Bᵀ`, the `dX = dY·Wᵀ` backward) and TN (`Aᵀ·B`, the
//! `dW = Xᵀ·dY` backward) — dispatch to the register-blocked AVX2/FMA
//! kernels in [`crate::simd`] when the shape allows, and otherwise run
//! the original scalar loops (`i-k-j` so the innermost loop walks both
//! operands contiguously).

use serde::{Deserialize, Serialize};

use crate::simd;

/// Maximum tensor rank (conv activations `[B, C, H, W]` are the deepest
/// shapes in the system).
pub const MAX_RANK: usize = 4;

/// An inline (non-allocating) shape: up to [`MAX_RANK`] dimensions.
///
/// Shapes used to be `Vec<usize>`, which made every gradient temporary
/// pay a second heap allocation its data buffer pool couldn't absorb;
/// inlining them is what lets the reused-graph training loop reach zero
/// steady-state allocations.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Build from a dims slice (panics above [`MAX_RANK`]).
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut s = Shape {
            dims: [0; MAX_RANK],
            rank: dims.len() as u8,
        };
        s.dims[..dims.len()].copy_from_slice(dims);
        s
    }

    /// The dimensions.
    pub fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Total element count.
    pub fn volume(&self) -> usize {
        self.as_slice().iter().product()
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl Serialize for Shape {
    fn to_value(&self) -> serde::Value {
        self.as_slice().to_value()
    }
}

impl Deserialize for Shape {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let dims: Vec<usize> = Deserialize::from_value(v)?;
        if dims.len() > MAX_RANK {
            return Err(serde::Error::custom(format!(
                "shape rank {} exceeds MAX_RANK {MAX_RANK}",
                dims.len()
            )));
        }
        Ok(Shape::new(&dims))
    }
}

/// A dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            data: vec![0.0; n],
            shape: Shape::new(shape),
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            data: vec![value; n],
            shape: Shape::new(shape),
        }
    }

    /// Build from data and shape; panics when lengths disagree.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} != shape volume {}",
            data.len(),
            n
        );
        Tensor {
            data,
            shape: Shape::new(shape),
        }
    }

    /// A 1-element scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            data: vec![v],
            shape: Shape::new(&[1]),
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires a 1-element tensor");
        self.data[0]
    }

    /// Rows of a 2-D tensor.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.as_slice().len(), 2, "rows() requires 2-D");
        self.shape.as_slice()[0]
    }

    /// Columns of a 2-D tensor.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.as_slice().len(), 2, "cols() requires 2-D");
        self.shape.as_slice()[1]
    }

    /// Element accessor for 2-D tensors.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.as_slice().len(), 2);
        self.data[r * self.shape.as_slice()[1] + c]
    }

    /// Mutable element accessor for 2-D tensors.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.as_slice().len(), 2);
        &mut self.data[r * self.shape.as_slice()[1] + c]
    }

    /// Same data, different shape (must preserve volume).
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.len(), "reshape must preserve volume");
        Tensor {
            data: self.data.clone(),
            shape: Shape::new(shape),
        }
    }

    /// Consume the tensor, handing its backing buffer to the caller (the
    /// [`crate::Graph`] arena recycles buffers through this).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret in place with a different shape (volume preserved; no
    /// copy — the owned-buffer counterpart of [`Tensor::reshaped`]).
    pub fn set_shape(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.len(), "set_shape must preserve volume");
        self.shape = Shape::new(shape);
    }

    /// Matrix product of two 2-D tensors.
    ///
    /// The `i-k-j` loop order walks both operands contiguously; large
    /// products (PPO update batches) split across rows with rayon.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Vec::new();
        self.matmul_into(other, &mut out);
        let (m, n) = (self.shape.as_slice()[0], other.shape.as_slice()[1]);
        Tensor {
            data: out,
            shape: Shape::new(&[m, n]),
        }
    }

    /// [`Tensor::matmul`] into a caller-supplied buffer (cleared and
    /// resized), so arena-managed graphs can recycle allocations.
    ///
    /// Dispatches to the AVX2/FMA kernel ([`simd::gemm`]) when the shape
    /// allows, the scalar `i-k-j` loop otherwise; large products split
    /// across row blocks with rayon either way (fixed-size chunks, so the
    /// result is independent of thread scheduling).
    pub fn matmul_into(&self, other: &Tensor, out: &mut Vec<f32>) {
        assert_eq!(self.shape.as_slice().len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.as_slice().len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape.as_slice()[0], self.shape.as_slice()[1]);
        let (k2, n) = (other.shape.as_slice()[0], other.shape.as_slice()[1]);
        assert_eq!(k, k2, "matmul inner dimensions {k} vs {k2}");
        out.clear();
        out.resize(m * n, 0.0);

        let block = |r0: usize, rows: usize, chunk: &mut [f32]| {
            let a = &self.data[r0 * k..(r0 + rows) * k];
            if !simd::gemm(a, rows, k, &other.data, n, None, chunk) {
                simd::gemm_scalar(a, rows, k, &other.data, n, chunk);
            }
        };

        // Parallelize only when the product is big enough to amortize the
        // fork/join overhead (threshold ~1 Mflop). 64-row blocks keep the
        // 4-row SIMD blocking intact within every task but the last.
        if m * k * n >= 512 * 1024 && m >= 2 {
            use rayon::prelude::*;
            const ROWS_PER_TASK: usize = 64;
            out.par_chunks_mut(ROWS_PER_TASK * n)
                .enumerate()
                .for_each(|(ci, chunk)| block(ci * ROWS_PER_TASK, chunk.len() / n, chunk));
        } else {
            block(0, m, out);
        }
    }

    /// `self @ otherᵀ` without materializing the transpose: `self` is
    /// `[m, k]`, `other` is `[n, k]`, result `[m, n]`. Used by backward
    /// passes (`dX = dY Wᵀ`).
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Vec::new();
        self.matmul_nt_into(other, &mut out);
        Tensor {
            data: out,
            shape: Shape::new(&[self.shape.as_slice()[0], other.shape.as_slice()[0]]),
        }
    }

    /// [`Tensor::matmul_nt`] into a caller-supplied buffer (cleared and
    /// resized). Dispatches to the dot-product SIMD kernel
    /// ([`simd::gemm_nt`]) when the inner dimension allows.
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Vec<f32>) {
        assert_eq!(self.shape.as_slice().len(), 2, "matmul_nt lhs must be 2-D");
        assert_eq!(other.shape.as_slice().len(), 2, "matmul_nt rhs must be 2-D");
        let (m, k) = (self.shape.as_slice()[0], self.shape.as_slice()[1]);
        let (n, k2) = (other.shape.as_slice()[0], other.shape.as_slice()[1]);
        assert_eq!(k, k2, "matmul_nt inner dimensions {k} vs {k2}");
        out.clear();
        out.resize(m * n, 0.0);
        if !simd::gemm_nt(&self.data, m, k, &other.data, n, out) {
            simd::gemm_nt_scalar(&self.data, m, k, &other.data, n, out);
        }
    }

    /// `selfᵀ @ other` without materializing the transpose: `self` is
    /// `[r, m]`, `other` is `[r, n]`, result `[m, n]`. Used by backward
    /// passes (`dW = Xᵀ dY`).
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let mut out = Vec::new();
        self.matmul_tn_into(other, &mut out);
        Tensor {
            data: out,
            shape: Shape::new(&[self.shape.as_slice()[1], other.shape.as_slice()[1]]),
        }
    }

    /// [`Tensor::matmul_tn`] into a caller-supplied buffer (cleared and
    /// resized). Dispatches to the rank-1-update SIMD kernel
    /// ([`simd::gemm_tn`]) when the output width allows.
    pub fn matmul_tn_into(&self, other: &Tensor, out: &mut Vec<f32>) {
        assert_eq!(self.shape.as_slice().len(), 2, "matmul_tn lhs must be 2-D");
        assert_eq!(other.shape.as_slice().len(), 2, "matmul_tn rhs must be 2-D");
        let (r, m) = (self.shape.as_slice()[0], self.shape.as_slice()[1]);
        let (r2, n) = (other.shape.as_slice()[0], other.shape.as_slice()[1]);
        assert_eq!(r, r2, "matmul_tn outer dimensions {r} vs {r2}");
        out.clear();
        out.resize(m * n, 0.0);
        if !simd::gemm_tn(&self.data, r, m, &other.data, n, out) {
            simd::gemm_tn_scalar(&self.data, r, m, &other.data, n, out);
        }
    }

    /// Transpose of a 2-D tensor.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.as_slice().len(), 2, "transpose requires 2-D");
        let (m, n) = (self.shape.as_slice()[0], self.shape.as_slice()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            data: out,
            shape: Shape::new(&[n, m]),
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape,
        }
    }

    /// In-place `self += alpha * other` (shapes must match).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at(0, 2), 3.0);
        assert_eq!(t.at(1, 0), 4.0);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn bad_shape_rejected() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3, 3]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 2.0], &[1, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.data(), &[11.0, 14.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transposed();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(2, 1), 6.0);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = a.reshaped(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "volume")]
    fn reshape_volume_checked() {
        let _ = Tensor::zeros(&[2, 2]).reshaped(&[5]);
    }

    #[test]
    fn axpy_and_sum_and_norm() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        assert_eq!(a.sum(), 18.0);
        let n = Tensor::from_vec(vec![3.0, 4.0], &[2]).norm();
        assert!((n - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_applies_elementwise() {
        let a = Tensor::from_vec(vec![-1.0, 2.0], &[2]);
        assert_eq!(a.map(|x| x.max(0.0)).data(), &[0.0, 2.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32 * 0.5 - 1.0).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), &[4, 3]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transposed()));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32 * 0.3 - 0.7).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).cos()).collect(), &[3, 4]);
        assert_eq!(a.matmul_tn(&b), a.transposed().matmul(&b));
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let mut buf = vec![99.0; 16];
        a.matmul_into(&b, &mut buf);
        assert_eq!(buf, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "1-element")]
    fn item_rejects_non_scalar() {
        let _ = Tensor::zeros(&[2]).item();
    }
}
