//! PPO update cost: one policy+value update over a fixed collected batch —
//! the other half of the Table IX epoch time (sampling being the first).
//!
//! Besides wall-clock medians, this bench counts **heap allocations** via
//! a wrapping global allocator: the reusable-`Graph` update loop and the
//! fast-path rollouts exist to drive allocations/iteration toward zero,
//! so the count is printed next to each measurement (`allocs/call`) and
//! is the number to watch across PRs.

use criterion::{criterion_group, criterion_main, Criterion};

use rlsched_bench::alloc::count_allocs;
use rlsched_rl::{collect_episodes, collect_rollouts, Env, PpoConfig, RolloutBuffer, VecEnv};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SchedulingEnv};

fn bench_update(c: &mut Criterion) {
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(1024, 3));
    let cfg = AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 64,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig {
            train_pi_iters: 5,
            train_v_iters: 5,
            minibatch: Some(512),
            ..PpoConfig::default()
        },
        seed: 5,
    };
    let mut agent = Agent::new(cfg);
    let encoder = *agent.encoder();
    let objective = agent.objective();

    // Collect one reusable batch of 8 x 128-step episodes.
    let mut envs: Vec<SchedulingEnv> = (0..8)
        .map(|_| SchedulingEnv::new(trace.clone(), 128, SimConfig::default(), encoder, objective))
        .collect();
    let seeds: Vec<u64> = (0..8).collect();
    let (batch, _stats) = collect_rollouts(agent.ppo(), &mut envs, &seeds);

    // Allocation profile, measured after one warm run of each path so
    // graph pools and scratch buffers are at steady state.
    let _ = agent.ppo_mut().update(&batch);
    let update_allocs = count_allocs(|| agent.ppo_mut().update(&batch));
    let _ = agent.ppo_mut().update_tape(&batch);
    let tape_update_allocs = count_allocs(|| agent.ppo_mut().update_tape(&batch));
    let rollout_allocs = count_allocs(|| collect_rollouts(agent.ppo(), &mut envs, &seeds));
    let (obs, mask) = {
        let mut env = envs[0].clone();
        let (mut o, mut m) = (Vec::new(), Vec::new());
        env.reset(42, &mut o, &mut m);
        (o, m)
    };
    let mut scratch = rlsched_rl::ActorScratch::new();
    let _ = agent.ppo().greedy_with(&obs, &mask, &mut scratch);
    let fast_allocs = count_allocs(|| agent.ppo().greedy_with(&obs, &mask, &mut scratch));
    let tape_allocs = count_allocs(|| agent.ppo().greedy_tape(&obs, &mask));
    println!("\nallocation profile (heap allocations per call):");
    println!("  ppo_update fused (5+5, mb512):   {update_allocs}");
    println!("  ppo_update tape  (5+5, mb512):   {tape_update_allocs}");
    println!("  rollout_8x128:                   {rollout_allocs}");
    println!("  greedy decision, fast path:      {fast_allocs}");
    println!("  greedy decision, tape path:      {tape_allocs}");

    let mut group = c.benchmark_group("ppo");
    group.sample_size(10);
    // The dispatching update (fused tape-free backward for this kernel
    // agent) vs the pinned tape arm it replaced — the two are
    // bit-identical in results, so the delta is pure bookkeeping.
    group.bench_function("update_5x5_iters_mb512", |b| {
        b.iter(|| std::hint::black_box(agent.ppo_mut().update(&batch)))
    });
    group.bench_function("update_5x5_iters_mb512_tape", |b| {
        b.iter(|| std::hint::black_box(agent.ppo_mut().update_tape(&batch)))
    });

    // Lockstep batched collection (all 8 envs scored through one stacked
    // forward per tick — the path training uses) vs the per-env baseline
    // (8 sequential single-env rollouts; bit-identical trajectories).
    group.bench_function("rollout_8x128", |b| {
        b.iter(|| {
            let (batch, _s) = collect_rollouts(agent.ppo(), &mut envs, &seeds);
            std::hint::black_box(batch.len())
        })
    });
    group.bench_function("rollout_8x128_perenv", |b| {
        b.iter(|| {
            // Same merged, normalized batch as the lockstep arm (the
            // parity tests pin bit-identity) — only the stepping/scoring
            // strategy differs.
            let mut bufs = Vec::with_capacity(envs.len());
            for (env, &seed) in envs.iter_mut().zip(&seeds) {
                let mut venv: VecEnv<&mut SchedulingEnv> = VecEnv::new(vec![env]);
                let (mut episode_bufs, _s) = collect_episodes(agent.ppo(), &mut venv, &[seed]);
                bufs.append(&mut episode_bufs);
            }
            let batch = RolloutBuffer::into_batch(bufs);
            std::hint::black_box(batch.len())
        })
    });

    // One action selection: the tape path (fresh graph + parameter
    // copies, the seed's only option) vs the allocation-free fast path.
    group.bench_function("select_tape_single", |b| {
        b.iter(|| std::hint::black_box(agent.ppo().greedy_tape(&obs, &mask)))
    });
    group.bench_function("select_fast_single", |b| {
        b.iter(|| std::hint::black_box(agent.ppo().greedy_with(&obs, &mask, &mut scratch)))
    });

    // Per-step env interaction without the network (simulator+encoding),
    // through the caller-owned buffers the sampler uses.
    group.bench_function("env_step_random_policy", |b| {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        let mut env = envs[0].clone();
        let (mut obs, mut mask) = (Vec::new(), Vec::new());
        b.iter(|| {
            obs.clear();
            mask.clear();
            env.reset(rng.gen(), &mut obs, &mut mask);
            let mut steps = 0usize;
            loop {
                let valid = mask.iter().filter(|&&m| m == 0.0).count();
                let mut pick = rng.gen_range(0..valid);
                let a = mask
                    .iter()
                    .position(|&m| {
                        if m != 0.0 {
                            return false;
                        }
                        if pick == 0 {
                            true
                        } else {
                            pick -= 1;
                            false
                        }
                    })
                    .expect("a valid slot always exists");
                obs.clear();
                mask.clear();
                let out = env.step(a, &mut obs, &mut mask);
                steps += 1;
                if out.done {
                    break;
                }
            }
            std::hint::black_box(steps)
        })
    });
    group.finish();
}

/// Short, CI-friendly measurement settings: these are latency gauges, not
/// regression-grade statistics.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
criterion_group! {name = benches; config = short_config(); targets = bench_update}
criterion_main!(benches);
