//! Latency accounting: a fixed-size log-linear histogram (HDR-style) of
//! nanosecond durations, cheap enough to record into on the shard hot
//! path (one increment) and precise enough for p50/p99 at serving
//! scales (≤ ~3% relative quantile error per bucket).
//!
//! Layout: values below 2^SUB_BITS get exact unit buckets; above that,
//! each power-of-two range splits into `2^SUB_BITS` linear sub-buckets.
//! Two flavors share the bucketing:
//!
//! * [`LatencyHistogram`] — plain `u64` counters, single-owner, merged
//!   element-wise. This is the type `rlsched-serve` historically owned;
//!   it moved here so every layer can share one bucket axis, and
//!   `serve::histogram` re-exports it unchanged.
//! * The registry's [`Histogram`](crate::Histogram) handle — striped
//!   `AtomicU64` counters recorded into concurrently and read as a
//!   [`HistogramSnapshot`](crate::HistogramSnapshot) without stopping
//!   writers. Built in this module ([`AtomicHistogramCore`]) on the same
//!   `bucket_of`/`bucket_upper` pair.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Enough octaves to span 1 ns … ~584 years.
const OCTAVES: u32 = 64 - SUB_BITS;
pub(crate) const N_BUCKETS: usize = ((OCTAVES + 1) << SUB_BITS) as usize;

/// Index of the bucket containing `v` (nanoseconds).
pub fn bucket_of(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = msb - SUB_BITS + 1;
    let sub = (v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1);
    ((octave << SUB_BITS) | sub as u32) as usize
}

/// Upper bound (inclusive, nanoseconds) of bucket `i` — the value a
/// quantile query reports for samples that landed in it, and the `le`
/// bound the exposition encoder prints.
pub fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < (1 << SUB_BITS) {
        return i;
    }
    let octave = (i >> SUB_BITS) as u32;
    let sub = i & ((1 << SUB_BITS) - 1);
    let base = 1u64 << (octave + SUB_BITS - 1);
    let width = base >> SUB_BITS;
    base + (sub + 1) * width - 1
}

/// A mergeable latency histogram with exact count/max and bucketed
/// quantiles.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            max_ns: 0,
        }
    }

    /// Record one sample. Never allocates.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded value, nanoseconds (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The value at quantile `q ∈ [0, 1]` (bucket upper bound, so the
    /// estimate never understates). 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's upper bound can overshoot the true
                // max; the exact max is tracked, so never exceed it.
                return bucket_upper(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50_ns", &self.quantile_ns(0.5))
            .field("p99_ns", &self.quantile_ns(0.99))
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

/// Concurrent-write stripes per registry histogram: enough that the
/// handful of threads sharing one metric (shard workers, rollout
/// workers) land on distinct cache-line neighborhoods, small enough
/// that a histogram stays ~60 KiB.
const STRIPES: usize = 4;

/// Process-wide monotone thread index, assigned lazily on first record.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

/// This thread's stripe index. First call per thread takes the global
/// counter; afterwards it is a thread-local read — no allocation, no
/// syscall.
pub(crate) fn thread_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v
    })
}

/// One stripe of atomic bucket counters plus its running max.
struct Stripe {
    counts: Vec<AtomicU64>,
    max_ns: AtomicU64,
}

/// The lock-free core behind the registry's `Histogram` handle:
/// `STRIPES` independent bucket arrays, recorded into by stripe of the
/// calling thread, merged at snapshot time. Recording is two relaxed
/// atomic RMWs and never allocates; snapshots never block writers.
pub(crate) struct AtomicHistogramCore {
    stripes: Vec<Stripe>,
}

impl AtomicHistogramCore {
    pub(crate) fn new() -> Self {
        AtomicHistogramCore {
            stripes: (0..STRIPES)
                .map(|_| Stripe {
                    counts: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                    max_ns: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    pub(crate) fn record_ns(&self, ns: u64) {
        let stripe = &self.stripes[thread_index() % STRIPES];
        stripe.counts[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        stripe.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Merge the stripes into a sparse snapshot. The total count is
    /// *derived* from the bucket reads, so `sum(buckets) == count`
    /// holds by construction even while writers race the scrape.
    pub(crate) fn snapshot(&self) -> crate::HistogramSnapshot {
        let mut buckets: Vec<(u32, u64)> = Vec::new();
        let mut count = 0u64;
        let mut max_ns = 0u64;
        for i in 0..N_BUCKETS {
            let mut c = 0u64;
            for s in &self.stripes {
                c += s.counts[i].load(Ordering::Relaxed);
            }
            if c > 0 {
                buckets.push((i as u32, c));
                count += c;
            }
        }
        for s in &self.stripes {
            max_ns = max_ns.max(s.max_ns.load(Ordering::Relaxed));
        }
        crate::HistogramSnapshot {
            count,
            max_ns,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_axis() {
        // Every value maps to a bucket whose upper bound is >= it and
        // whose predecessor's upper bound is < it.
        for v in [0u64, 1, 31, 32, 33, 100, 1000, 123_456, u32::MAX as u64] {
            let b = bucket_of(v);
            assert!(bucket_upper(b) >= v, "v={v} b={b}");
            if b > 0 {
                assert!(bucket_upper(b - 1) < v, "v={v} b={b}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [1u64, 2, 3, 10, 30] {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.quantile_ns(0.5), 3);
        assert_eq!(h.quantile_ns(1.0), 30);
        assert_eq!(h.max_ns(), 30);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(Duration::from_nanos(i * 100)); // 100ns … 1ms
        }
        let p50 = h.quantile_ns(0.5) as f64;
        let p99 = h.quantile_ns(0.99) as f64;
        assert!((p50 / 500_000.0 - 1.0).abs() < 0.05, "p50 = {p50}");
        assert!((p99 / 990_000.0 - 1.0).abs() < 0.05, "p99 = {p99}");
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 1_000_000);
        assert_eq!(a.quantile_ns(0.25), 10);
    }

    #[test]
    fn atomic_core_matches_plain_histogram() {
        let core = AtomicHistogramCore::new();
        let mut plain = LatencyHistogram::new();
        for ns in [0u64, 1, 31, 32, 100, 4_096, 1_000_000, 123_456_789] {
            core.record_ns(ns);
            plain.record(Duration::from_nanos(ns));
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, plain.count());
        assert_eq!(snap.max_ns, plain.max_ns());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile_ns(q), plain.quantile_ns(q), "q={q}");
        }
        assert_eq!(
            snap.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            snap.count
        );
    }
}
