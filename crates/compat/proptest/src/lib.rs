//! Offline shim for `proptest`: strategy-based randomized testing with the
//! macro surface this workspace uses (`proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`), minus shrinking.
//!
//! A failing case panics with the generated inputs' `Debug` rendering and
//! the case's seed, which is enough to reproduce: cases are derived
//! deterministically from the test body's code location, so a failure
//! recurs on re-run until the code or the shim's RNG changes.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Why a test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion inside the case body failed.
    Fail(String),
    /// The case asked to be discarded (unused here, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// `prop_map` adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy from a plain sampling closure.
pub struct FnStrategy<F>(pub F);

impl<T: Debug, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The canonical strategy of a type (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range integer/bool strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! any_impl {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
any_impl!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod sample {
    //! Index-into-a-collection support (`any::<prop::sample::Index>()`).

    use super::{AnyStrategy, Arbitrary, Strategy, TestRng};
    use rand::Rng;

    /// A deferred collection index: a raw draw mapped onto `0..len` at use
    /// time, so one generated value can index collections of any size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Strategy for AnyStrategy<Index> {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.gen())
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyStrategy<Index>;
        fn arbitrary() -> Self::Strategy {
            AnyStrategy(std::marker::PhantomData)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run one proptest-style test body over `cases` generated inputs.
/// Called by the `proptest!` macro expansion; panics on the first failure
/// with the inputs that produced it.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    // Deterministic per-test seed: stable across runs, different per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case_idx in 0..config.cases {
        let seed = h ^ (case_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err((err, inputs)) = case(&mut rng) {
            panic!(
                "proptest case {case_idx}/{} failed for `{test_name}`:\n  {err}\n  inputs: {inputs}\n  (deterministic; re-run reproduces)",
                config.cases
            );
        }
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Uniform index draw used by `prop_oneof!` expansions (kept here so the
/// macro works in crates that do not themselves depend on `rand`).
pub fn pick_index(rng: &mut TestRng, len: usize) -> usize {
    rng.gen_range(0..len)
}

macro_rules! tuple_strategy {
    ($($S:ident/$i:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

/// Choose uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
            let pick = $crate::pick_index(rng, options.len());
            $crate::Strategy::generate(&options[pick], rng)
        })
    }};
}

/// Define a named strategy-composing function:
/// `prop_compose! { fn name()(x in sx, y in sy) -> T { body } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ($($outer:tt)*) ($($arg:ident in $strategy:expr),+ $(,)?) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $out> {
            $(let $arg = $strategy;)+
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&$arg, rng);)+
                $body
            })
        }
    };
}

/// Define proptest-style test functions.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest_tests!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_tests!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] test items.
#[doc(hidden)]
#[macro_export]
macro_rules! proptest_tests {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                let mut __inputs = String::new();
                $(
                    let __val = $crate::Strategy::generate(&($strategy), __rng);
                    __inputs.push_str(&format!("{} = {:?}; ", stringify!($arg), __val));
                    let $arg = __val;
                )+
                let mut __case = || -> Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                __case().map_err(|e| (e, __inputs))
            });
        }
        $crate::proptest_tests!{ config = $config; $($rest)* }
    };
}

pub mod prelude {
    //! Glob-import surface matching upstream.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest, BoxedStrategy,
        FnStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// The `prop::` module path (`prop::collection::vec`,
    /// `prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(xs in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_only_picks_given(v in prop_oneof![Just(1u8), Just(4u8), Just(9u8)]) {
            prop_assert!(v == 1 || v == 4 || v == 9);
        }

        #[test]
        fn index_maps_into_range(ix in any::<crate::sample::Index>(), len in 1usize..50) {
            prop_assert!(ix.index(len) < len);
        }
    }

    prop_compose! {
        fn point()(x in 0i32..10, y in 0i32..10) -> (i32, i32) {
            (x, y)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_works(p in point()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_context() {
        crate::run_cases(&ProptestConfig::with_cases(5), "demo", |_rng| {
            Err((TestCaseError::fail("boom"), "x = 1".to_string()))
        });
    }

    #[test]
    fn prop_map_transforms() {
        use rand::SeedableRng;
        let s = (0u32..5).prop_map(|x| x * 100);
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 100 == 0 && v < 500);
        }
    }
}
