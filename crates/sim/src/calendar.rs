//! Queue backends for the wait-queue "event calendar".
//!
//! [`crate::SchedSession`] keeps the waiting jobs in FCFS (arrival) order
//! and addresses them by *rank* — the position a policy sees. The seed
//! implementation was a plain `Vec<usize>`: `remove(pos)` shifts the tail,
//! so EASY backfilling over a deep queue (100k+ waiting jobs in a
//! trace-scale replay) degrades to O(n) per removal and O(n²) per pass.
//!
//! [`QueueBackend`] abstracts the container; two implementations exist:
//!
//! * [`LinearQueue`] — the original `Vec`, kept as the parity reference.
//! * [`IndexedQueue`] — an append-only slot array with a Fenwick tree over
//!   the live flags: rank→slot lookup and removal are O(log n), pushes are
//!   amortized O(1), and dead slots are compacted in place (no allocation
//!   in steady state) once they outnumber the live ones.
//!
//! Both backends present the queue in identical FCFS order, so a session
//! is bit-identical regardless of backend (pinned by the calendar-parity
//! suite).

/// A wait queue of job indices in FCFS (push) order, addressable by rank.
pub trait QueueBackend: Clone + std::fmt::Debug + Default {
    /// Iterator over the queued job indices in FCFS order.
    type Iter<'a>: Iterator<Item = usize> + 'a
    where
        Self: 'a;

    /// An empty queue with room for roughly `cap` entries.
    fn with_capacity(cap: usize) -> Self;

    /// Append a job index at the back (it becomes the highest rank).
    fn push_back(&mut self, job_index: usize);

    /// Number of queued jobs.
    fn len(&self) -> usize;

    /// True when no job is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The job index at `rank` (0-based FCFS position), if any.
    fn get(&self, rank: usize) -> Option<usize>;

    /// Remove and return the job index at `rank`. Panics when out of range.
    fn remove_at(&mut self, rank: usize) -> usize;

    /// Walk the queued job indices in FCFS order.
    fn iter(&self) -> Self::Iter<'_>;
}

/// The seed `Vec` backend: O(n) removal, kept as the parity reference.
#[derive(Debug, Clone, Default)]
pub struct LinearQueue(Vec<usize>);

impl QueueBackend for LinearQueue {
    type Iter<'a> = std::iter::Copied<std::slice::Iter<'a, usize>>;

    fn with_capacity(cap: usize) -> Self {
        LinearQueue(Vec::with_capacity(cap))
    }

    fn push_back(&mut self, job_index: usize) {
        self.0.push(job_index);
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, rank: usize) -> Option<usize> {
        self.0.get(rank).copied()
    }

    fn remove_at(&mut self, rank: usize) -> usize {
        self.0.remove(rank)
    }

    fn iter(&self) -> Self::Iter<'_> {
        self.0.iter().copied()
    }
}

/// Dead slots tolerated beyond the live count before an in-place compaction.
/// The slack keeps tiny queues from compacting on every removal.
const COMPACT_SLACK: usize = 64;

/// Indexed calendar: an append-only slot array plus a Fenwick (binary
/// indexed) tree counting live slots, giving O(log n) rank→slot selection
/// and removal while preserving FCFS order.
///
/// Removal only clears a live flag; slots are reclaimed by an occasional
/// in-place compaction (when `dead > live + 64`), so memory is bounded by
/// roughly twice the peak live queue depth and the steady state allocates
/// nothing once capacities have warmed up.
#[derive(Debug, Clone, Default)]
pub struct IndexedQueue {
    /// Job indices in arrival order; dead entries linger until compaction.
    slots: Vec<usize>,
    /// `live[i]` is true while `slots[i]` is still queued.
    live: Vec<bool>,
    /// 1-based Fenwick tree over the live flags; `tree[0]` is unused.
    tree: Vec<u32>,
    n_live: usize,
}

impl IndexedQueue {
    /// Sum of live flags in `slots[0..k]` (`k` is a 1-based Fenwick index).
    fn prefix(&self, mut k: usize) -> u32 {
        let mut s = 0;
        while k > 0 {
            s += self.tree[k];
            k -= k & k.wrapping_neg();
        }
        s
    }

    /// Physical slot (0-based) of the `rank`-th live entry (0-based rank).
    /// Classic Fenwick select: descend the implicit tree.
    fn select(&self, rank: usize) -> usize {
        debug_assert!(rank < self.n_live);
        let n = self.slots.len();
        let mut want = rank as u32 + 1; // 1-based count of live slots to pass
        let mut pos = 0usize; // 1-based Fenwick position reached so far
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] < want {
                want -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // 1-based pos of the last index with prefix < target == 0-based slot
    }

    /// Drop dead slots in place, preserving FCFS order. Runs in O(n) but
    /// only after O(n) removals, so removal stays O(log n) amortized; uses
    /// only the existing buffers (no allocation).
    fn compact(&mut self) {
        let mut w = 0;
        for r in 0..self.slots.len() {
            if self.live[r] {
                self.slots[w] = self.slots[r];
                w += 1;
            }
        }
        debug_assert_eq!(w, self.n_live);
        self.slots.truncate(w);
        self.live.truncate(w);
        for l in &mut self.live {
            *l = true;
        }
        // With every slot live, node i of the Fenwick tree holds exactly
        // the size of the range it covers: lowbit(i).
        self.tree.truncate(w + 1);
        for i in 1..=w {
            self.tree[i] = (i & i.wrapping_neg()) as u32;
        }
    }
}

/// FCFS iterator over an [`IndexedQueue`]: walks physical slots, skipping
/// dead entries.
#[derive(Debug)]
pub struct IndexedIter<'a> {
    slots: &'a [usize],
    live: &'a [bool],
    pos: usize,
}

impl Iterator for IndexedIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.pos < self.slots.len() {
            let p = self.pos;
            self.pos += 1;
            if self.live[p] {
                return Some(self.slots[p]);
            }
        }
        None
    }
}

impl QueueBackend for IndexedQueue {
    type Iter<'a> = IndexedIter<'a>;

    fn with_capacity(cap: usize) -> Self {
        IndexedQueue {
            slots: Vec::with_capacity(cap),
            live: Vec::with_capacity(cap),
            tree: Vec::with_capacity(cap + 1),
            n_live: 0,
        }
    }

    fn push_back(&mut self, job_index: usize) {
        if self.tree.is_empty() {
            self.tree.push(0);
        }
        self.slots.push(job_index);
        self.live.push(true);
        self.n_live += 1;
        // Appending Fenwick node i: it covers slots (i - lowbit(i), i], all
        // already final, so its value is 1 (the new slot) plus the live
        // count of the rest of its range.
        let i = self.slots.len();
        let low = i & i.wrapping_neg();
        let range_rest = self.prefix(i - 1) - self.prefix(i - low);
        self.tree.push(1 + range_rest);
    }

    fn len(&self) -> usize {
        self.n_live
    }

    fn get(&self, rank: usize) -> Option<usize> {
        if rank >= self.n_live {
            return None;
        }
        Some(self.slots[self.select(rank)])
    }

    fn remove_at(&mut self, rank: usize) -> usize {
        assert!(rank < self.n_live, "rank {rank} out of {}", self.n_live);
        let slot = self.select(rank);
        let job_index = self.slots[slot];
        self.live[slot] = false;
        self.n_live -= 1;
        let n = self.slots.len();
        let mut i = slot + 1;
        while i <= n {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
        if n - self.n_live > self.n_live + COMPACT_SLACK {
            self.compact();
        }
        job_index
    }

    fn iter(&self) -> Self::Iter<'_> {
        IndexedIter {
            slots: &self.slots,
            live: &self.live,
            pos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_fcfs<Q: QueueBackend>(q: &mut Q) -> Vec<usize> {
        let mut out = Vec::new();
        while !q.is_empty() {
            out.push(q.remove_at(0));
        }
        out
    }

    #[test]
    fn fcfs_order_preserved() {
        let mut q = IndexedQueue::default();
        for i in [7, 3, 9, 1] {
            q.push_back(i);
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![7, 3, 9, 1]);
        assert_eq!(drain_fcfs(&mut q), vec![7, 3, 9, 1]);
    }

    #[test]
    fn get_and_remove_by_rank() {
        let mut q = IndexedQueue::default();
        for i in 0..10 {
            q.push_back(i * 10);
        }
        assert_eq!(q.get(3), Some(30));
        assert_eq!(q.remove_at(3), 30);
        assert_eq!(q.get(3), Some(40), "ranks shift after removal");
        assert_eq!(q.remove_at(8), 90, "last rank");
        assert_eq!(q.get(8), None);
        assert_eq!(q.iter().count(), 8);
    }

    #[test]
    fn interleaved_push_remove() {
        let mut q = IndexedQueue::default();
        q.push_back(1);
        q.push_back(2);
        assert_eq!(q.remove_at(0), 1);
        q.push_back(3);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(q.remove_at(1), 3);
        assert_eq!(q.remove_at(0), 2);
        assert!(q.is_empty());
        q.push_back(4);
        assert_eq!(q.get(0), Some(4));
    }

    /// Randomized parity against the `Vec` reference, with enough volume to
    /// cross compaction thresholds many times.
    #[test]
    fn matches_linear_reference_under_random_ops() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let mut linear = LinearQueue::default();
        let mut indexed = IndexedQueue::with_capacity(16);
        let mut next = 0usize;
        for _ in 0..20_000 {
            let push = linear.len() < 2 || rng.gen_bool(0.55);
            if push {
                linear.push_back(next);
                indexed.push_back(next);
                next += 1;
            } else {
                let rank = rng.gen_range(0..linear.len());
                assert_eq!(linear.remove_at(rank), indexed.remove_at(rank));
            }
            assert_eq!(linear.len(), indexed.len());
            if next.is_multiple_of(97) {
                assert!(linear.iter().eq(indexed.iter()));
                let rank = rng.gen_range(0..linear.len().max(1));
                assert_eq!(linear.get(rank), indexed.get(rank));
            }
        }
        assert!(linear.iter().eq(indexed.iter()));
    }

    #[test]
    fn compaction_keeps_order_and_bounds_memory() {
        let mut q = IndexedQueue::default();
        for i in 0..10_000 {
            q.push_back(i);
        }
        // Remove from the front until compaction must have fired.
        for i in 0..9_900 {
            assert_eq!(q.remove_at(0), i);
        }
        assert_eq!(q.len(), 100);
        assert!(
            q.slots.len() <= 2 * q.n_live + COMPACT_SLACK + 1,
            "dead slots bounded: {} physical for {} live",
            q.slots.len(),
            q.n_live
        );
        assert_eq!(
            q.iter().collect::<Vec<_>>(),
            (9_900..10_000).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn remove_out_of_range_panics() {
        let mut q = IndexedQueue::default();
        q.push_back(1);
        q.remove_at(1);
    }
}
