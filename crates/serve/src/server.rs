//! The front door, shard workers, and their supervisor.
//!
//! ```text
//!                    ┌─ connection threads ─┐      ┌─ shard threads ─────┐
//! TcpListener ──────▶│ read frame           │      │ recv (blocking)     │
//!   (accept loop)    │ validate + encode    │─────▶│ coalesce ≤ window   │
//!                    │ fallback action      │      │ fault hook          │
//!                    │ route: fnv(id)%N ────┼──┐   │ one batched fwd ────┼─ panic? ⇒ supervisor:
//!                    │ full queue? ⇒        │  └──▶│ reply per row       │   fallback-answer the
//!                    │   fallback (or Shed) │      └──────────┬──────────┘   batch, respawn engine
//!                    └──────────┬───────────┘                 │              under restart budget
//!                               ▼                             │
//!                      writer thread (per conn) ◀─────────────┘
//! ```
//!
//! * **Routing** is deterministic: FNV-1a of the request id modulo the
//!   shard count, so a given id always lands on the same shard (and a
//!   client can pin itself to a shard by fixing its id stream).
//! * **Supervision**: each shard's scoring loop runs under
//!   `catch_unwind`. A panic never loses a request — the in-flight
//!   batch's reply handles live outside the unwind boundary and are
//!   answered by the heuristic fallback — and the worker respawns with
//!   a fresh [`ShardEngine`] built from the current snapshot, under a
//!   bounded restart budget with deterministic exponential backoff.
//!   Exhausting the budget parks the shard in `Failed`, where it keeps
//!   draining its inbox through the fallback until a validated weight
//!   swap (a new generation) revives it.
//! * **Graceful degradation**: when a shard's inbox is full, its
//!   in-queue deadline expires, or the worker is down, the request is
//!   answered with the deterministic heuristic decision
//!   ([`rlsched_sched::PriorityScheduler`] semantics, kind from
//!   [`ServeConfig::fallback`]) tagged `served_by: Fallback` — bare
//!   [`Response::Shed`] only remains for servers configured without a
//!   fallback.
//! * **Checkpoint lifecycle**: [`ServerHandle::propose_scorer`] gates
//!   every weight install behind validation — an all-finite parameter
//!   walk plus a [`CanaryBatch`] parity probe — and
//!   [`ServerHandle::record_eval`] rolls the slot back to the previous
//!   generation when the live eval metric regresses past tolerance.
//!   [`ServerHandle::swap_scorer`] remains the unvalidated force path.
//! * **Backpressure**: each shard's inbox is a bounded channel; the
//!   connection thread answers immediately (fallback or shed) instead
//!   of queueing unbounded work.
//! * **Coalescing**: a shard blocks for its first request, then drains
//!   arrivals until the configured window elapses or the batch cap is
//!   reached, and scores the whole stack through one forward.
//! * **Shutdown**: [`ServerHandle::shutdown`] flips a flag, the accept
//!   loop notices it, parked connection readers are unblocked by
//!   shutting their streams down, shards drain and exit when every
//!   sender is gone, and all threads are joined before the call
//!   returns.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rlsched_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
use rlsched_sched::{select_parts, HeuristicKind};
use rlscheduler::{CanaryBatch, CanaryError, ObsEncoder, ScorerSnapshot};

use crate::client::ServeClient;
use crate::engine::{EngineMetrics, ScorerSlot, ShardEngine};
use crate::faults::FaultPlan;
use crate::protocol::{
    read_frame_any, write_binary_frame, write_frame, Request, Response, ServeStats, ServedBy,
    ShardHealth, ShardState, WireProtocol,
};
use crate::transport::{AnyStream, Listen, ListenAddr, ServerAddr, Transport};

/// Server tuning knobs. The defaults serve a small cluster's decision
/// traffic; benches and tests override freely.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where to listen: TCP (port 0 picks a free port — see
    /// [`ServerHandle::addr`]) or a Unix domain socket. The default
    /// honors the `RLSCHED_WIRE` env pin ([`ListenAddr::env_default`]).
    pub addr: ListenAddr,
    /// Worker shards, each owning a scorer replica and scratch.
    pub shards: usize,
    /// Max rows per coalesced batch.
    pub batch_cap: usize,
    /// How long a shard holds its first request open for companions.
    pub coalesce_window: Duration,
    /// Bounded per-shard inbox depth; arrivals beyond it take the
    /// fallback arm (or are shed when no fallback is configured).
    pub queue_depth: usize,
    /// Heuristic kind answering for the model when a shard can't
    /// (panicked batch, full inbox, expired deadline, failed shard).
    /// Must be wire-scorable ([`HeuristicKind::wire_scorable`]); `None`
    /// restores pre-fallback semantics (bare [`Response::Shed`]).
    pub fallback: Option<HeuristicKind>,
    /// Consecutive shard panics tolerated before the shard parks in
    /// [`ShardState::Failed`] (serving fallback until a validated swap).
    pub restart_budget: u32,
    /// Base respawn delay; doubles per consecutive panic
    /// (deterministic, no jitter — the *client* owns jitter).
    pub restart_backoff: Duration,
    /// Upper bound on the respawn delay.
    pub restart_backoff_cap: Duration,
    /// In-queue age past which a request is answered by the fallback
    /// instead of waiting on a slow shard. `None` disables the check.
    pub queue_deadline: Option<Duration>,
    /// Relative eval-metric regression (lower is better) tolerated by
    /// [`ServerHandle::record_eval`] before it rolls the weights back.
    pub eval_tolerance: f64,
    /// Scripted fault injection (tests); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: ListenAddr::env_default(),
            shards: 2,
            batch_cap: 32,
            coalesce_window: Duration::from_micros(100),
            queue_depth: 128,
            fallback: Some(HeuristicKind::Sjf),
            restart_budget: 3,
            restart_backoff: Duration::from_millis(10),
            restart_backoff_cap: Duration::from_millis(500),
            queue_deadline: None,
            eval_tolerance: 0.1,
            faults: None,
        }
    }
}

/// One encoded request in flight to a shard.
struct ShardRequest {
    id: u64,
    obs: Vec<f32>,
    mask: Vec<f32>,
    queue_len: usize,
    /// The heuristic decision for this request, precomputed at
    /// admission so a down shard can answer without model state.
    fallback: Option<u64>,
    enqueued: Instant,
    reply: Sender<Response>,
}

/// Reply metadata for one row in a shard's current batch. Lives
/// *outside* the unwind boundary: a panicked forward loses the row
/// data, never the means to answer it.
struct PendingRow {
    id: u64,
    enqueued: Instant,
    fallback: Option<u64>,
    reply: Sender<Response>,
}

/// Lock-free per-shard lifecycle state published to [`ServeStats`]
/// (the counters live in the metrics registry).
struct ShardHealthCell {
    state: AtomicU8,
}

const STATE_HEALTHY: u8 = 0;
const STATE_RESTARTING: u8 = 1;
const STATE_FAILED: u8 = 2;

impl ShardHealthCell {
    fn new() -> Self {
        ShardHealthCell {
            state: AtomicU8::new(STATE_HEALTHY),
        }
    }

    fn set_state(&self, state: u8) {
        self.state.store(state, Ordering::Release);
    }

    fn state(&self) -> ShardState {
        match self.state.load(Ordering::Acquire) {
            STATE_RESTARTING => ShardState::Restarting,
            STATE_FAILED => ShardState::Failed,
            _ => ShardState::Healthy,
        }
    }
}

/// One shard's registry handles, wired once at spawn. Supervisor
/// respawns re-clone these (same storage), so every counter is
/// monotone across panic/respawn — the property the chaos suite pins.
#[derive(Clone)]
struct ShardMetrics {
    served: Counter,
    fallbacks: Counter,
    shed: Counter,
    deadlines: Counter,
    batches: Counter,
    batch_max: Gauge,
    batch_rows: Histogram,
    restarts: Counter,
    panics: Counter,
    inbox_depth: Gauge,
    latency: Histogram,
}

impl ShardMetrics {
    fn register(reg: &Registry, shard: usize) -> Self {
        let s = shard.to_string();
        let l: &[(&str, &str)] = &[("shard", &s)];
        ShardMetrics {
            served: reg.counter("rlsched_serve_served_total", l),
            fallbacks: reg.counter("rlsched_serve_fallbacks_total", l),
            shed: reg.counter("rlsched_serve_shed_total", l),
            deadlines: reg.counter("rlsched_serve_deadlines_total", l),
            batches: reg.counter("rlsched_serve_batches_total", l),
            batch_max: reg.gauge("rlsched_serve_batch_max_rows", l),
            batch_rows: reg.histogram("rlsched_serve_batch_rows", l),
            restarts: reg.counter("rlsched_serve_restarts_total", l),
            panics: reg.counter("rlsched_serve_panics_total", l),
            inbox_depth: reg.gauge("rlsched_serve_inbox_depth", l),
            latency: reg.histogram("rlsched_serve_latency_ns", l),
        }
    }

    fn engine_metrics(&self) -> EngineMetrics {
        EngineMetrics {
            rows: self.served.clone(),
            batches: self.batches.clone(),
            batch_rows: self.batch_rows.clone(),
            batch_max: self.batch_max.clone(),
        }
    }
}

/// Server-scoped (not per-shard) registry handles.
struct ServerMetrics {
    swaps: Counter,
    rollbacks: Counter,
    accept_failures: Counter,
    shards: Vec<ShardMetrics>,
}

impl ServerMetrics {
    fn register(reg: &Registry, shards: usize) -> Self {
        ServerMetrics {
            swaps: reg.counter("rlsched_serve_swaps_total", &[]),
            rollbacks: reg.counter("rlsched_serve_rollbacks_total", &[]),
            accept_failures: reg.counter("rlsched_serve_accept_failures_total", &[]),
            shards: (0..shards)
                .map(|s| ShardMetrics::register(reg, s))
                .collect(),
        }
    }
}

/// Shutdown flag, the metrics registry and its wired handles, per-shard
/// lifecycle state, and connection bookkeeping — shared by all threads.
struct Shared {
    shutdown: AtomicBool,
    /// Every counter/gauge/histogram the tier records, scrapeable as
    /// one consistent snapshot via [`Request::Metrics`].
    registry: Arc<Registry>,
    metrics: ServerMetrics,
    shard_health: Vec<ShardHealthCell>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Shutdown hooks for the *live* connections keyed by connection
    /// id (each holds a stream clone and shuts it down when called),
    /// so shutdown can unblock readers parked mid-frame (no read
    /// timeouts — a timeout mid-frame would drop partial frame data).
    /// Each connection removes its own entry on exit; leaving it there
    /// would hold the socket's fd open for the server's lifetime.
    conn_shutdowns: Mutex<std::collections::HashMap<u64, Box<dyn Fn() + Send>>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    /// Assemble [`ServeStats`] as a *consistent* registry view: every
    /// per-shard counter is read exactly once, and the aggregate totals
    /// are sums over those same reads — so a scrape racing a shard
    /// respawn can never report a total that disagrees with its
    /// per-shard parts (the torn-totals gap the ad-hoc counters had).
    fn stats(&self) -> ServeStats {
        let mut stats = ServeStats {
            served: 0,
            fallbacks: 0,
            shed: 0,
            deadlines: 0,
            batches: 0,
            max_batch: 0,
            swaps: self.metrics.swaps.get(),
            rollbacks: self.metrics.rollbacks.get(),
            restarts: 0,
            accept_failures: self.metrics.accept_failures.get(),
            p50_us: 0.0,
            p99_us: 0.0,
            max_us: 0.0,
            shards: Vec::with_capacity(self.metrics.shards.len()),
        };
        let mut hist = HistogramSnapshot::default();
        for (sm, health) in self.metrics.shards.iter().zip(&self.shard_health) {
            let restarts = sm.restarts.get();
            stats.served += sm.served.get();
            stats.fallbacks += sm.fallbacks.get();
            stats.shed += sm.shed.get();
            stats.deadlines += sm.deadlines.get();
            stats.batches += sm.batches.get();
            stats.max_batch = stats.max_batch.max(sm.batch_max.get() as u64);
            stats.restarts += restarts;
            hist.merge(&sm.latency.snapshot());
            stats.shards.push(ShardHealth {
                state: health.state(),
                restarts,
                panics: sm.panics.get(),
            });
        }
        stats.p50_us = hist.quantile_ns(0.5) as f64 / 1e3;
        stats.p99_us = hist.quantile_ns(0.99) as f64 / 1e3;
        stats.max_us = hist.max_ns as f64 / 1e3;
        stats
    }

    /// Answer one request through the fallback arm (or shed it when the
    /// server has no fallback configured), updating the right counters.
    fn resolve_fallback(
        &self,
        shard: usize,
        id: u64,
        fallback: Option<u64>,
        reply: &Sender<Response>,
    ) {
        match fallback {
            Some(action) => {
                self.metrics.shards[shard].fallbacks.inc();
                let _ = reply.send(Response::Action {
                    id,
                    action,
                    shard: shard as u64,
                    served_by: ServedBy::Fallback,
                });
            }
            None => {
                self.metrics.shards[shard].shed.inc();
                let _ = reply.send(Response::Shed { id });
            }
        }
    }

    /// One request left shard `shard`'s inbox (scored, expired, or
    /// drained by a failed shard's fallback loop).
    fn inbox_pop(&self, shard: usize) {
        self.metrics.shards[shard].inbox_depth.add(-1.0);
    }
}

/// FNV-1a: the deterministic request→shard routing hash.
fn route(id: u64, shards: usize) -> usize {
    let mut h = 0xcbf29ce484222325u64;
    for byte in id.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards as u64) as usize
}

/// Why [`ServerHandle::propose_scorer`] refused to commit a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum ProposeError {
    /// Observation window or action space differs from the serving tier.
    Dims {
        /// The tier's `(obs_dim, n_actions)`.
        want: (usize, usize),
        /// The proposal's `(obs_dim, n_actions)`.
        got: (usize, usize),
    },
    /// The parameter walk found a NaN/Inf weight.
    NonFinite,
    /// The canary parity probe rejected the proposal.
    Canary(CanaryError),
}

impl std::fmt::Display for ProposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProposeError::Dims { want, got } => {
                write!(
                    f,
                    "proposal dims {got:?} do not match serving dims {want:?}"
                )
            }
            ProposeError::NonFinite => write!(f, "proposal carries non-finite weights"),
            ProposeError::Canary(e) => write!(f, "canary probe rejected the proposal: {e}"),
        }
    }
}

impl std::error::Error for ProposeError {}

/// The serving tier. Construct with [`Server::spawn`]; the returned
/// [`ServerHandle`] is the only way to interact with a running server.
pub struct Server;

impl Server {
    /// Start listening and spawn the shard workers. Returns once the
    /// socket is bound (the address is immediately connectable).
    pub fn spawn(
        scorer: ScorerSnapshot,
        encoder: ObsEncoder,
        cfg: ServeConfig,
    ) -> std::io::Result<ServerHandle> {
        assert!(cfg.shards > 0, "need at least one shard");
        assert_eq!(
            encoder.obs_dim(),
            scorer.obs_dim(),
            "encoder window must match the scorer"
        );
        if let Some(kind) = cfg.fallback {
            assert!(
                kind.wire_scorable(),
                "{} needs absolute submit times, which serving requests don't carry; \
                 pick a wire-scorable fallback kind",
                kind.name()
            );
        }
        match cfg.addr.clone() {
            ListenAddr::Tcp(spec) => {
                let listener = TcpListener::bind(&spec)?;
                listener.set_nonblocking(true)?;
                let bound = ServerAddr::Tcp(listener.local_addr()?);
                finish_spawn(listener, bound, scorer, encoder, cfg)
            }
            #[cfg(unix)]
            ListenAddr::Unix(path) => {
                // A stale socket file from a crashed predecessor makes
                // bind fail with AddrInUse; remove it first (connects to
                // a dead socket fail, so this races with nothing live).
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)?;
                listener.set_nonblocking(true)?;
                let bound = ServerAddr::Unix(path);
                finish_spawn(listener, bound, scorer, encoder, cfg)
            }
        }
    }
}

/// Listener-generic tail of [`Server::spawn`].
fn finish_spawn<L: Listen>(
    listener: L,
    bound: ServerAddr,
    scorer: ScorerSnapshot,
    encoder: ObsEncoder,
    cfg: ServeConfig,
) -> std::io::Result<ServerHandle> {
    {
        let slot = ScorerSlot::new(scorer.clone());
        // Each server owns its registry: tests spawning several servers
        // in one process see isolated counters, and a scrape of this
        // front door reports exactly this tier.
        let registry = Arc::new(Registry::new());
        let metrics = ServerMetrics::register(&registry, cfg.shards);
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            registry,
            metrics,
            shard_health: (0..cfg.shards).map(|_| ShardHealthCell::new()).collect(),
            conns: Mutex::new(Vec::new()),
            conn_shutdowns: Mutex::new(std::collections::HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let mut shard_txs = Vec::with_capacity(cfg.shards);
        let mut shard_threads = Vec::with_capacity(cfg.shards);
        for shard_id in 0..cfg.shards {
            let (tx, rx) = mpsc::sync_channel::<ShardRequest>(cfg.queue_depth);
            let slot = Arc::clone(&slot);
            let shared = Arc::clone(&shared);
            let sup = Supervision {
                window: cfg.coalesce_window,
                cap: cfg.batch_cap,
                restart_budget: cfg.restart_budget,
                backoff: cfg.restart_backoff,
                backoff_cap: cfg.restart_backoff_cap,
                queue_deadline: cfg.queue_deadline,
                faults: cfg.faults.clone(),
            };
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("rlsched-serve-shard-{shard_id}"))
                    .spawn(move || shard_supervisor(shard_id, rx, slot, shared, sup))?,
            );
            shard_txs.push(tx);
        }

        let accept = {
            let shared = Arc::clone(&shared);
            let shard_txs = shard_txs.clone();
            let fallback = cfg.fallback;
            std::thread::Builder::new()
                .name("rlsched-serve-accept".to_string())
                .spawn(move || accept_loop(listener, encoder, fallback, shard_txs, shared))?
        };

        Ok(ServerHandle {
            bound,
            slot,
            shared,
            obs_dim: encoder.obs_dim(),
            n_actions: encoder.n_actions(),
            eval_baseline: Mutex::new(None),
            eval_tolerance: cfg.eval_tolerance,
            accept: Some(accept),
            shard_threads,
            _shard_txs: shard_txs,
        })
    }
}

/// A running server: address, stats, checkpoint lifecycle, shutdown.
pub struct ServerHandle {
    bound: ServerAddr,
    slot: Arc<ScorerSlot>,
    shared: Arc<Shared>,
    obs_dim: usize,
    n_actions: usize,
    eval_baseline: Mutex<Option<f64>>,
    eval_tolerance: f64,
    accept: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    /// Keeps the shard inboxes alive until shutdown drops them.
    _shard_txs: Vec<SyncSender<ShardRequest>>,
}

impl ServerHandle {
    /// The bound TCP address (resolves port 0). Panics when the server
    /// listens on a Unix socket — use [`ServerHandle::server_addr`] or
    /// [`ServerHandle::connect`] for transport-agnostic access.
    pub fn addr(&self) -> SocketAddr {
        match &self.bound {
            ServerAddr::Tcp(a) => *a,
            other => panic!(
                "server is bound to {other}, not TCP; \
                 use server_addr() or connect() instead of addr()"
            ),
        }
    }

    /// The bound address, whichever transport it is.
    pub fn server_addr(&self) -> &ServerAddr {
        &self.bound
    }

    /// Open a client to this server over whichever transport it bound,
    /// speaking the env-default wire format (`RLSCHED_WIRE`).
    pub fn connect(&self) -> std::io::Result<ServeClient<AnyStream>> {
        ServeClient::connect_any(&self.bound)
    }

    /// Propose → validate → commit: the guarded way to install weights.
    ///
    /// The proposal must match the tier's dimensions, pass the
    /// all-finite parameter walk, and reproduce the canary's expected
    /// actions exactly ([`CanaryBatch::check`]). Only then is it
    /// committed through the shared slot — which retains the displaced
    /// snapshot, so a post-swap [`ServerHandle::record_eval`] regression
    /// (or an explicit [`ServerHandle::rollback_scorer`]) can restore
    /// the previous generation. Rejections leave the serving weights
    /// untouched and count in [`ServeStats::rollbacks`].
    ///
    /// Returns the new weight generation on commit. A commit also
    /// revives any shard parked in [`ShardState::Failed`].
    pub fn propose_scorer(
        &self,
        scorer: ScorerSnapshot,
        canary: &CanaryBatch,
    ) -> Result<u64, ProposeError> {
        let reject = |e: ProposeError| {
            self.shared.metrics.rollbacks.inc();
            Err(e)
        };
        if scorer.obs_dim() != self.obs_dim || scorer.n_actions() != self.n_actions {
            return reject(ProposeError::Dims {
                want: (self.obs_dim, self.n_actions),
                got: (scorer.obs_dim(), scorer.n_actions()),
            });
        }
        if !scorer.all_finite() {
            return reject(ProposeError::NonFinite);
        }
        if let Err(e) = canary.check(&scorer) {
            return reject(ProposeError::Canary(e));
        }
        self.slot.swap(scorer);
        self.shared.metrics.swaps.inc();
        Ok(self.slot.generation())
    }

    /// Install new weights without validation — the force path for
    /// benches and callers that validated elsewhere. Prefer
    /// [`ServerHandle::propose_scorer`]. The snapshot must come from an
    /// agent with the same observation window.
    pub fn swap_scorer(&self, scorer: ScorerSnapshot) {
        assert_eq!(scorer.obs_dim(), self.obs_dim, "hot-swap changed obs_dim");
        assert_eq!(
            scorer.n_actions(),
            self.n_actions,
            "hot-swap changed the action space"
        );
        self.slot.swap(scorer);
        self.shared.metrics.swaps.inc();
    }

    /// Restore the snapshot displaced by the last committed swap and
    /// bump the generation. Returns `false` when no previous generation
    /// is retained (never swapped, or already rolled back).
    pub fn rollback_scorer(&self) -> bool {
        let rolled = self.slot.rollback();
        if rolled {
            self.shared.metrics.rollbacks.inc();
        }
        rolled
    }

    /// Feed one post-deployment eval measurement (lower is better —
    /// e.g. mean bounded slowdown on a probe workload). The first call
    /// sets the baseline; later calls compare against it and roll the
    /// weights back to the previous generation when the metric
    /// regresses beyond the configured tolerance (or goes non-finite).
    /// Returns `true` when a rollback was triggered.
    pub fn record_eval(&self, metric: f64) -> bool {
        let mut baseline = self.eval_baseline.lock().expect("eval baseline poisoned");
        let Some(base) = *baseline else {
            *baseline = Some(metric);
            return false;
        };
        let threshold = base + base.abs() * self.eval_tolerance;
        if metric.is_finite() && metric <= threshold {
            *baseline = Some(metric);
            return false;
        }
        if self.slot.rollback() {
            self.shared.metrics.rollbacks.inc();
        }
        true
    }

    /// Current weight generation (bumps on every commit and rollback).
    pub fn generation(&self) -> u64 {
        self.slot.generation()
    }

    /// Aggregate serving statistics so far.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// The server's metrics registry — the same one a
    /// [`Request::Metrics`] scrape snapshots over the wire. In-process
    /// consumers (autoscalers, tests) can watch it without a socket.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// Stop accepting, drain the shards, join every thread. Returns the
    /// final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Unblock readers parked on idle connections; joined readers'
        // stream clones just error harmlessly.
        for hook in self
            .shared
            .conn_shutdowns
            .lock()
            .expect("shutdown hook list poisoned")
            .values()
        {
            hook();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conn list poisoned"));
        for c in conns {
            let _ = c.join();
        }
        // Dropping the senders lets each shard drain and exit.
        self._shard_txs.clear();
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        // A Unix socket outlives its listener as a filesystem entry;
        // remove it so the path can be rebound.
        if let ServerAddr::Unix(path) = &self.bound {
            let _ = std::fs::remove_file(path);
        }
        self.shared.stats()
    }
}

fn accept_loop<L: Listen>(
    listener: L,
    encoder: ObsEncoder,
    fallback: Option<HeuristicKind>,
    shard_txs: Vec<SyncSender<ShardRequest>>,
    shared: Arc<Shared>,
) {
    let base_backoff = Duration::from_millis(2);
    let mut accept_backoff = base_backoff;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept_stream() {
            Ok(stream) => {
                accept_backoff = base_backoff;
                let shard_txs = shard_txs.clone();
                let shared_c = Arc::clone(&shared);
                let conn = std::thread::Builder::new()
                    .name("rlsched-serve-conn".to_string())
                    .spawn(move || connection_loop(stream, encoder, fallback, shard_txs, shared_c));
                if let Ok(h) = conn {
                    // Reap finished connection threads while we are here
                    // so the handle list tracks live connections instead
                    // of growing with churn.
                    let mut conns = shared.conns.lock().expect("conn list poisoned");
                    let mut i = 0;
                    while i < conns.len() {
                        if conns[i].is_finished() {
                            let _ = conns.swap_remove(i).join();
                        } else {
                            i += 1;
                        }
                    }
                    conns.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(base_backoff);
            }
            Err(_) => {
                // Transient accept failures (ECONNABORTED from a client
                // resetting mid-handshake, EMFILE until fds free up, …)
                // must not kill the front door: back off exponentially
                // up to a bound and retry. A genuinely dead listener
                // keeps erroring until shutdown, which this survives at
                // the capped cadence instead of a hot spin.
                shared.metrics.accept_failures.inc();
                std::thread::sleep(accept_backoff);
                accept_backoff = (accept_backoff * 2).min(Duration::from_millis(250));
            }
        }
    }
}

/// Wire-format latch values shared between a connection's reader and
/// writer: the reader records the format of the last request frame,
/// and the writer answers in kind (a JSON client never sees binary
/// bytes and vice versa, even on a connection that switches formats).
const PROTO_JSON: u8 = 0;
const PROTO_BINARY: u8 = 1;

/// Per-connection reader: parse frames, validate, encode, route. A
/// sibling writer thread owns the response stream so shard replies and
/// front-door replies (shed/error/stats) interleave safely.
fn connection_loop<S: Transport>(
    stream: S,
    encoder: ObsEncoder,
    fallback: Option<HeuristicKind>,
    shard_txs: Vec<SyncSender<ShardRequest>>,
    shared: Arc<Shared>,
) {
    stream.tune();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        shared
            .conn_shutdowns
            .lock()
            .expect("shutdown hook list poisoned")
            .insert(conn_id, Box::new(move || clone.shutdown_both()));
    }
    // Relaxed is enough: the reply channel's send/recv orders the
    // latch store before the writer's load for that request.
    let proto = Arc::new(AtomicU8::new(PROTO_JSON));
    let (reply_tx, reply_rx) = mpsc::channel::<Response>();
    let writer = {
        let proto = Arc::clone(&proto);
        std::thread::Builder::new()
            .name("rlsched-serve-write".to_string())
            .spawn(move || writer_loop(write_half, reply_rx, proto))
    };
    let mut reader = BufReader::new(stream);
    // Per-connection frame scratch, reused across frames: the binary
    // payload buffer and the JSON line buffer. (The decoded request's
    // row vectors move on to a shard, so those are owned per request.)
    let mut payload = Vec::new();
    let mut line = String::new();

    while !shared.shutdown.load(Ordering::Acquire) {
        let req: Request = match read_frame_any(&mut reader, &mut payload, &mut line) {
            Ok(Some((r, got))) => {
                proto.store(
                    match got {
                        WireProtocol::Json => PROTO_JSON,
                        WireProtocol::Binary => PROTO_BINARY,
                    },
                    Ordering::Relaxed,
                );
                r
            }
            Ok(None) => break, // clean EOF
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Malformed frame: report and resync at the next frame
                // boundary (the next line, or — since a binary frame's
                // declared length is consumed before its payload is
                // judged — the next binary header).
                let _ = reply_tx.send(Response::Error {
                    id: 0,
                    message: format!("bad frame: {e}"),
                });
                continue;
            }
            Err(_) => break,
        };
        handle_request(req, &encoder, fallback, &shard_txs, &shared, &reply_tx);
    }
    drop(reply_tx); // writer drains outstanding replies, then exits
    if let Ok(w) = writer {
        let _ = w.join();
    }
    // Release this connection's shutdown hook (and its fd).
    shared
        .conn_shutdowns
        .lock()
        .expect("shutdown hook list poisoned")
        .remove(&conn_id);
}

/// The deterministic heuristic decision for a raw (pre-encoded) row:
/// the first unmasked slot. Raw rows carry normalized features, not the
/// wait/runtime/procs a priority function needs — but the queue behind
/// a decision point is FCFS-ordered by construction, so "first valid
/// slot" IS the FCFS decision, exactly. The configured kind applies to
/// snapshot requests, which carry the raw features.
fn raw_fallback(mask: &[f32], queue_len: usize) -> u64 {
    let slot = mask
        .iter()
        .take(queue_len)
        .position(|&m| m > -0.5)
        .unwrap_or(0);
    slot as u64
}

fn handle_request(
    req: Request,
    encoder: &ObsEncoder,
    fallback: Option<HeuristicKind>,
    shard_txs: &[SyncSender<ShardRequest>],
    shared: &Arc<Shared>,
    reply_tx: &Sender<Response>,
) {
    let id = req.id();
    let (obs, mask, queue_len, fallback_action) = match req {
        Request::Stats { .. } => {
            let _ = reply_tx.send(Response::Stats {
                id,
                stats: shared.stats(),
            });
            return;
        }
        Request::Metrics { .. } => {
            rlsched_obs::span!("serve.metrics_scrape");
            let _ = reply_tx.send(Response::Metrics {
                id,
                metrics: shared.registry.snapshot(),
            });
            return;
        }
        Request::Score { snapshot, .. } => {
            if snapshot.jobs.is_empty() || snapshot.queue_len() < snapshot.jobs.len() {
                let _ = reply_tx.send(Response::Error {
                    id,
                    message: "snapshot needs at least one job and queue_len >= jobs".into(),
                });
                return;
            }
            // The heuristic decision is computed at admission, while the
            // raw job features are still in hand — a shard that later
            // fails this request answers from this, not from model state.
            let fb = fallback.and_then(|kind| {
                select_parts(
                    kind,
                    snapshot
                        .jobs
                        .iter()
                        .map(|j| (j.wait, j.time_bound, j.procs)),
                )
                .map(|slot| slot as u64)
            });
            let mut obs = Vec::with_capacity(encoder.obs_dim());
            let mut mask = Vec::with_capacity(encoder.n_actions());
            encoder.encode_snapshot_extend(&snapshot, &mut obs, &mut mask);
            (obs, mask, snapshot.queue_len(), fb)
        }
        Request::ScoreRaw {
            obs,
            mask,
            queue_len,
            ..
        } => {
            if obs.len() != encoder.obs_dim() || mask.len() != encoder.n_actions() || queue_len == 0
            {
                let _ = reply_tx.send(Response::Error {
                    id,
                    message: format!(
                        "want obs[{}] mask[{}] queue_len>=1, got obs[{}] mask[{}] queue_len={}",
                        encoder.obs_dim(),
                        encoder.n_actions(),
                        obs.len(),
                        mask.len(),
                        queue_len
                    ),
                });
                return;
            }
            let fb = fallback.map(|_| raw_fallback(&mask, queue_len as usize));
            (obs, mask, queue_len as usize, fb)
        }
    };
    let shard = route(id, shard_txs.len());
    let req = ShardRequest {
        id,
        obs,
        mask,
        queue_len,
        fallback: fallback_action,
        enqueued: Instant::now(),
        reply: reply_tx.clone(),
    };
    match shard_txs[shard].try_send(req) {
        Ok(()) => shared.metrics.shards[shard].inbox_depth.add(1.0),
        Err(TrySendError::Full(r)) => {
            // Backpressure: answer immediately (heuristic if configured,
            // shed otherwise), drop the work.
            shared.resolve_fallback(shard, r.id, r.fallback, &r.reply);
        }
        Err(TrySendError::Disconnected(_)) => {
            let _ = reply_tx.send(Response::Error {
                id,
                message: "server shutting down".into(),
            });
        }
    }
}

fn writer_loop<S: Transport>(stream: S, rx: Receiver<Response>, proto: Arc<AtomicU8>) {
    let mut w = BufWriter::new(stream);
    // Reused binary frame scratch: steady-state binary replies don't
    // allocate for framing.
    let mut scratch = Vec::new();
    while let Ok(resp) = rx.recv() {
        let wrote = match proto.load(Ordering::Relaxed) {
            PROTO_BINARY => write_binary_frame(&mut w, &resp, &mut scratch),
            _ => write_frame(&mut w, &resp),
        };
        if wrote.is_err() {
            break;
        }
        use std::io::Write;
        if w.flush().is_err() {
            break;
        }
    }
}

/// Per-shard supervision parameters (a slice of [`ServeConfig`]).
struct Supervision {
    window: Duration,
    cap: usize,
    restart_budget: u32,
    backoff: Duration,
    backoff_cap: Duration,
    queue_deadline: Option<Duration>,
    faults: Option<Arc<FaultPlan>>,
}

/// The shard worker's outer loop: run the scoring loop under
/// `catch_unwind`; on a panic, answer the in-flight batch through the
/// fallback, then respawn a fresh engine under the restart budget.
///
/// Budget exhaustion parks the shard in [`ShardState::Failed`]: it
/// keeps draining its inbox through the fallback (nothing queued is
/// ever stranded) until the weight generation changes — a validated
/// swap is the recovery signal — and then respawns.
fn shard_supervisor(
    shard_id: usize,
    rx: Receiver<ShardRequest>,
    slot: Arc<ScorerSlot>,
    shared: Arc<Shared>,
    sup: Supervision,
) {
    let health = &shared.shard_health[shard_id];
    let mut consecutive: u32 = 0;
    let mut batch_counter: u64 = 0;
    loop {
        health.set_state(STATE_HEALTHY);
        // Fresh engine from the *current* snapshot: a panic may have
        // left the old one mid-batch with stacked rows. It records into
        // the same registry handles as its predecessor, so counters
        // stay monotone across respawns.
        let mut engine = ShardEngine::new(Arc::clone(&slot), sup.cap);
        engine.instrument(shared.metrics.shards[shard_id].engine_metrics());
        let mut pending: Vec<PendingRow> = Vec::with_capacity(sup.cap);
        let run = catch_unwind(AssertUnwindSafe(|| {
            shard_loop(
                shard_id,
                &rx,
                &mut engine,
                &mut pending,
                &shared,
                &sup,
                &mut batch_counter,
                &mut consecutive,
            )
        }));
        match run {
            // Every sender dropped: clean shutdown.
            Ok(()) => return,
            Err(_) => {
                shared.metrics.shards[shard_id].panics.inc();
                consecutive += 1;
                // Zero lost requests: the panicked batch's reply handles
                // are still here — answer each through the fallback arm.
                for row in pending.drain(..) {
                    shared.resolve_fallback(shard_id, row.id, row.fallback, &row.reply);
                }
                if consecutive > sup.restart_budget {
                    health.set_state(STATE_FAILED);
                    let failed_gen = slot.generation();
                    loop {
                        if slot.generation() != failed_gen {
                            break; // validated swap: revive
                        }
                        match rx.recv_timeout(Duration::from_millis(25)) {
                            Ok(r) => {
                                shared.inbox_pop(shard_id);
                                shared.resolve_fallback(shard_id, r.id, r.fallback, &r.reply);
                            }
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => return,
                        }
                    }
                    consecutive = 0;
                } else {
                    health.set_state(STATE_RESTARTING);
                    // Deterministic exponential backoff: base << (n-1),
                    // capped. No jitter — shards don't share a herd, and
                    // reproducibility is worth more here.
                    let shift = (consecutive - 1).min(16);
                    let backoff = sup
                        .backoff
                        .saturating_mul(1u32 << shift)
                        .min(sup.backoff_cap);
                    std::thread::sleep(backoff);
                }
                shared.metrics.shards[shard_id].restarts.inc();
            }
        }
    }
}

/// One shard's scoring loop: block for a request, coalesce companions
/// for up to `window` (or until `cap` rows), score the stack in one
/// forward, reply per row, repeat. Returns when every sender is gone
/// and the queue is drained; panics propagate to the supervisor.
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    shard_id: usize,
    rx: &Receiver<ShardRequest>,
    engine: &mut ShardEngine,
    pending: &mut Vec<PendingRow>,
    shared: &Shared,
    sup: &Supervision,
    batch_counter: &mut u64,
    consecutive: &mut u32,
) {
    // Admit one request into the current batch — unless its in-queue
    // deadline already expired, in which case it is answered through
    // the fallback right now rather than riding a slow shard.
    let admit = |engine: &mut ShardEngine, pending: &mut Vec<PendingRow>, r: ShardRequest| {
        shared.inbox_pop(shard_id);
        if let Some(deadline) = sup.queue_deadline {
            if r.enqueued.elapsed() > deadline {
                shared.metrics.shards[shard_id].deadlines.inc();
                shared.resolve_fallback(shard_id, r.id, r.fallback, &r.reply);
                return;
            }
        }
        engine.push_row(&r.obs, &r.mask, r.queue_len);
        pending.push(PendingRow {
            id: r.id,
            enqueued: r.enqueued,
            fallback: r.fallback,
            reply: r.reply,
        });
    };
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let window_closes = Instant::now() + sup.window;
        admit(engine, pending, first);
        while !engine.is_full() {
            let now = Instant::now();
            let Some(remaining) = window_closes
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok(r) => admit(engine, pending, r),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if pending.is_empty() {
            continue; // every arrival expired at admission
        }
        let batch = *batch_counter;
        *batch_counter += 1;
        if let Some(faults) = &sup.faults {
            // May panic (→ supervisor) or stall (→ queued requests age
            // past their deadline) exactly as scripted.
            faults.before_score(shard_id, batch);
        }
        rlsched_obs::span!("serve.batch");
        // The engine's instrumentation records batches/rows/batch-size;
        // the shard records per-row latency (lock-free striped
        // histogram — the old version serialized shards on a mutex).
        let actions = engine.flush();
        let latency = &shared.metrics.shards[shard_id].latency;
        for row in pending.iter() {
            latency.record(row.enqueued.elapsed());
        }
        for (&action, row) in actions.iter().zip(pending.drain(..)) {
            // A dead client's writer is gone; dropping the reply is fine.
            let _ = row.reply.send(Response::Action {
                id: row.id,
                action: action as u64,
                shard: shard_id as u64,
                served_by: ServedBy::Model,
            });
        }
        // A full batch made it through the forward: the worker is
        // healthy again, whatever its panic history.
        *consecutive = 0;
    }
}
