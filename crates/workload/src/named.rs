//! The six named workloads of Table II, with exact-moment calibration.
//!
//! | Name        | size    | it (s) | rt (s) | nt   |
//! |-------------|---------|--------|--------|------|
//! | SDSC-SP2    | 128     | 1055   | 6687   | 11   |
//! | HPC2N       | 240     | 538    | 17024  | 6    |
//! | PIK-IPLEX   | 2560    | 140    | 30889  | 12   |
//! | ANL Intrepid| 163840  | 301    | 5176   | 5063 |
//! | Lublin-1    | 256     | 771    | 4862   | 22   |
//! | Lublin-2    | 256     | 460    | 1695   | 39   |
//!
//! Generation is two-phase: a structural model (Lublin or trace-alike)
//! produces the distributional shape, then [`calibrate`] rescales submit
//! gaps and runtimes linearly so the mean interarrival (`it`) and mean
//! actual runtime (`rt` — see [`calibrate`] for why `rt` reads as actual)
//! match Table II exactly. The processor-count mean (`nt`) is structural
//! (a discrete size menu) and lands within a few percent of the target.

use rlsched_swf::{JobTrace, TraceStats};

use crate::lublin::{LublinModel, LublinParams};
use crate::tracealike::{ArrivalProcess, TraceAlikeModel, TraceAlikeParams};
use crate::users::UserModel;

/// Table II targets for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Targets {
    /// Cluster size (processors).
    pub size: u32,
    /// Mean interarrival time, seconds.
    pub it: f64,
    /// Mean runtime, seconds (calibrated against actual runtimes; see
    /// [`calibrate`]).
    pub rt: f64,
    /// Mean requested processors.
    pub nt: f64,
}

/// The six evaluation workloads of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedWorkload {
    /// Synthetic Lublin model, parameterization 1.
    Lublin1,
    /// Synthetic Lublin model, parameterization 2 (bigger, shorter jobs).
    Lublin2,
    /// SDSC-SP2-alike (1998, 128 processors).
    SdscSp2,
    /// HPC2N-alike (2002, 240 processors, dominant user).
    Hpc2n,
    /// PIK-IPLEX-2009-alike (2560 processors, extremely bursty arrivals).
    PikIplex,
    /// ANL-Intrepid-alike (2009, Blue Gene/P, 163 840 cores).
    AnlIntrepid,
}

impl NamedWorkload {
    /// All six workloads in Table II order.
    pub fn all() -> [NamedWorkload; 6] {
        [
            NamedWorkload::SdscSp2,
            NamedWorkload::Hpc2n,
            NamedWorkload::PikIplex,
            NamedWorkload::AnlIntrepid,
            NamedWorkload::Lublin1,
            NamedWorkload::Lublin2,
        ]
    }

    /// The four training workloads of Figs 8–13 / Tables V–VI.
    pub fn training_four() -> [NamedWorkload; 4] {
        [
            NamedWorkload::Lublin1,
            NamedWorkload::SdscSp2,
            NamedWorkload::Hpc2n,
            NamedWorkload::Lublin2,
        ]
    }

    /// Display name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            NamedWorkload::Lublin1 => "Lublin-1",
            NamedWorkload::Lublin2 => "Lublin-2",
            NamedWorkload::SdscSp2 => "SDSC-SP2",
            NamedWorkload::Hpc2n => "HPC2N",
            NamedWorkload::PikIplex => "PIK-IPLEX",
            NamedWorkload::AnlIntrepid => "ANL-Intrepid",
        }
    }

    /// Parse a display or CLI name.
    pub fn from_name(s: &str) -> Option<NamedWorkload> {
        let k = s.to_ascii_lowercase().replace(['-', '_', ' '], "");
        Some(match k.as_str() {
            "lublin1" => NamedWorkload::Lublin1,
            "lublin2" => NamedWorkload::Lublin2,
            "sdscsp2" | "sdsc" => NamedWorkload::SdscSp2,
            "hpc2n" => NamedWorkload::Hpc2n,
            "pikiplex" | "pik" | "pikiplex2009" => NamedWorkload::PikIplex,
            "anlintrepid" | "anl" | "intrepid" => NamedWorkload::AnlIntrepid,
            _ => return None,
        })
    }

    /// Table II targets.
    pub fn targets(self) -> Table2Targets {
        match self {
            NamedWorkload::SdscSp2 => Table2Targets {
                size: 128,
                it: 1055.0,
                rt: 6687.0,
                nt: 11.0,
            },
            NamedWorkload::Hpc2n => Table2Targets {
                size: 240,
                it: 538.0,
                rt: 17024.0,
                nt: 6.0,
            },
            NamedWorkload::PikIplex => Table2Targets {
                size: 2560,
                it: 140.0,
                rt: 30889.0,
                nt: 12.0,
            },
            NamedWorkload::AnlIntrepid => Table2Targets {
                size: 163_840,
                it: 301.0,
                rt: 5176.0,
                nt: 5063.0,
            },
            NamedWorkload::Lublin1 => Table2Targets {
                size: 256,
                it: 771.0,
                rt: 4862.0,
                nt: 22.0,
            },
            NamedWorkload::Lublin2 => Table2Targets {
                size: 256,
                it: 460.0,
                rt: 1695.0,
                nt: 39.0,
            },
        }
    }

    /// Generate `n` jobs of this workload, calibrated to Table II moments.
    pub fn generate(self, n: usize, seed: u64) -> JobTrace {
        let raw = self.generate_raw(n, seed);
        calibrate(&raw, self.targets())
    }

    /// Generate without the final moment calibration (used by calibration
    /// tests and the Table II harness).
    pub fn generate_raw(self, n: usize, seed: u64) -> JobTrace {
        match self {
            NamedWorkload::Lublin1 => LublinModel::new(LublinParams::lublin1()).generate(n, seed),
            NamedWorkload::Lublin2 => LublinModel::new(LublinParams::lublin2()).generate(n, seed),
            NamedWorkload::SdscSp2 => TraceAlikeModel::new(sdsc_sp2_params()).generate(n, seed),
            NamedWorkload::Hpc2n => TraceAlikeModel::new(hpc2n_params()).generate(n, seed),
            NamedWorkload::PikIplex => TraceAlikeModel::new(pik_params()).generate(n, seed),
            NamedWorkload::AnlIntrepid => TraceAlikeModel::new(anl_params()).generate(n, seed),
        }
    }
}

/// SDSC-SP2-alike: a small 128-way SP2 with mid-sized power-of-two jobs and
/// heavy-tailed runtimes. Its mean request (11 procs) is large relative to
/// the machine, so ordering decisions are consequential — the property that
/// makes it the paper's most RL-favorable trace.
fn sdsc_sp2_params() -> TraceAlikeParams {
    TraceAlikeParams {
        cluster_size: 128,
        arrival: ArrivalProcess::LogNormal {
            mean: 1055.0,
            cv: 2.6,
        },
        runtime_mean: 9500.0,
        runtime_cv: 2.2,
        short_frac: 0.30,
        short_mean: 120.0,
        big_job_runtime_mult: 2.0,
        estimates: true,
        overestimate: (1.3, 3.4),
        max_runtime: 18.0 * 3600.0,
        size_menu: vec![
            (1, 2.6),
            (2, 1.2),
            (4, 1.6),
            (8, 1.6),
            (16, 1.1),
            (32, 0.8),
            (64, 0.45),
            (128, 0.12),
        ],
        users: UserModel::zipf(96, 0.8),
    }
}

/// HPC2N-alike: 240 processors, small (mean 6 procs) but very long jobs,
/// and one dominant user (~40% of submissions) — the §V-F fairness setup.
fn hpc2n_params() -> TraceAlikeParams {
    TraceAlikeParams {
        cluster_size: 240,
        arrival: ArrivalProcess::LogNormal {
            mean: 538.0,
            cv: 2.2,
        },
        runtime_mean: 22600.0,
        runtime_cv: 2.2,
        short_frac: 0.25,
        short_mean: 180.0,
        big_job_runtime_mult: 1.5,
        estimates: true,
        overestimate: (1.3, 3.0),
        max_runtime: 120.0 * 3600.0,
        size_menu: vec![
            (1, 4.5),
            (2, 1.8),
            (4, 1.6),
            (8, 1.1),
            (16, 0.7),
            (32, 0.35),
            (64, 0.12),
            (128, 0.04),
        ],
        users: UserModel::zipf_with_dominant(256, 0.9, 0.40),
    }
}

/// PIK-IPLEX-2009-alike: 2560 cores, very long jobs, and Markov-modulated
/// arrival bursts. The bursts produce the rare catastrophic 256-job windows
/// of Fig 3 (average bounded slowdowns in the tens of thousands) that make
/// trajectory filtering necessary (§IV-C).
fn pik_params() -> TraceAlikeParams {
    TraceAlikeParams {
        cluster_size: 2560,
        // Bursts are rare (every ~100 calm arrivals) but long (~125
        // arrivals at ~15 s gaps): most 256-job windows are calm and
        // schedule at bsld ≈ 1, while windows hitting a burst overload the
        // machine by an order of magnitude — the Fig 3 shape.
        arrival: ArrivalProcess::Mmpp {
            calm_gap: 330.0,
            burst_gap: 15.0,
            enter_burst: 0.002,
            exit_burst: 0.004,
        },
        runtime_mean: 56000.0,
        runtime_cv: 1.8,
        short_frac: 0.45,
        short_mean: 60.0,
        big_job_runtime_mult: 4.0,
        estimates: false,
        overestimate: (1.2, 2.8),
        max_runtime: 30.0 * 24.0 * 3600.0,
        // Mostly small jobs, but a whale tail (1024–2048 procs) that can
        // serialize the 2560-core machine for hours during a burst.
        size_menu: vec![
            (1, 3.2),
            (2, 1.6),
            (4, 1.6),
            (8, 1.4),
            (16, 0.9),
            (32, 0.45),
            (64, 0.2),
            (128, 0.1),
            (256, 0.05),
            (512, 0.03),
            (1024, 0.020),
            (2048, 0.008),
        ],
        users: UserModel::zipf(128, 0.9),
    }
}

/// ANL-Intrepid-alike: Blue Gene/P. Allocations are partition-sized
/// (multiples of 512 nodes) and huge (mean 5063), runtimes moderate.
fn anl_params() -> TraceAlikeParams {
    TraceAlikeParams {
        cluster_size: 163_840,
        arrival: ArrivalProcess::LogNormal {
            mean: 301.0,
            cv: 2.0,
        },
        runtime_mean: 6800.0,
        runtime_cv: 1.5,
        short_frac: 0.25,
        short_mean: 240.0,
        big_job_runtime_mult: 1.5,
        estimates: true,
        overestimate: (1.2, 2.5),
        max_runtime: 24.0 * 3600.0,
        size_menu: vec![
            (512, 3.6),
            (1024, 2.4),
            (2048, 1.7),
            (4096, 1.3),
            (8192, 1.0),
            (16384, 0.6),
            (32768, 0.35),
            (65536, 0.13),
            (131072, 0.03),
        ],
        users: UserModel::zipf(64, 0.8),
    }
}

/// Linearly rescale submit gaps and runtimes so the trace's mean
/// interarrival and mean **actual** runtime equal the targets exactly.
///
/// Table II's `rt` is taken as the actual-runtime mean: the archive traces
/// with the paper's load levels are only consistent with that reading
/// (PIK-IPLEX records no user estimates at all, so its requested times
/// *are* the actual runtimes; for the others the demand ratio
/// `nt·rt/(it·size)` matches their documented utilization only on actual
/// runtimes). Rescaling actual and requested runtimes by the same factor
/// keeps `requested >= actual` and every ratio-based metric consistent.
pub fn calibrate(trace: &JobTrace, targets: Table2Targets) -> JobTrace {
    let stats = TraceStats::from_trace(trace);
    let it_scale = if stats.mean_interarrival > 0.0 {
        targets.it / stats.mean_interarrival
    } else {
        1.0
    };
    let rt_scale = if stats.mean_run_time > 0.0 {
        targets.rt / stats.mean_run_time
    } else {
        1.0
    };
    let t0 = trace.jobs().first().map(|j| j.submit_time).unwrap_or(0.0);
    let jobs = trace
        .jobs()
        .iter()
        .map(|j| {
            let mut j = j.clone();
            j.submit_time = t0 + (j.submit_time - t0) * it_scale;
            j.run_time = (j.run_time * rt_scale).max(1.0);
            j.requested_time = (j.requested_time * rt_scale).max(j.run_time);
            j
        })
        .collect();
    JobTrace::new(jobs, targets.size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_moments_match_table2() {
        for w in NamedWorkload::all() {
            let t = w.generate(4_000, 100);
            let s = TraceStats::from_trace(&t);
            let tg = w.targets();
            assert!(
                (s.mean_interarrival - tg.it).abs() / tg.it < 1e-9,
                "{}: it {} vs {}",
                w.name(),
                s.mean_interarrival,
                tg.it
            );
            assert!(
                (s.mean_run_time - tg.rt).abs() / tg.rt < 1e-9,
                "{}: rt {} vs {}",
                w.name(),
                s.mean_run_time,
                tg.rt
            );
            assert_eq!(s.max_procs, tg.size);
        }
    }

    #[test]
    fn nt_is_structurally_close() {
        for w in NamedWorkload::all() {
            let s = TraceStats::from_trace(&w.generate(8_000, 101));
            let tg = w.targets();
            let rel = (s.mean_requested_procs - tg.nt).abs() / tg.nt;
            assert!(
                rel < 0.30,
                "{}: nt {} vs target {} (rel {rel:.2})",
                w.name(),
                s.mean_requested_procs,
                tg.nt
            );
        }
    }

    /// Per-window offered load: Σ procs·runtime / (arrival span · cluster).
    fn window_demands(t: &JobTrace, win: usize) -> Vec<f64> {
        let mut out = Vec::new();
        let mut start = 0;
        while start + win <= t.len() {
            let jobs = &t.jobs()[start..start + win];
            let span = (jobs.last().unwrap().submit_time - jobs[0].submit_time).max(1.0);
            let work: f64 = jobs.iter().map(|j| j.procs() as f64 * j.run_time).sum();
            out.push(work / (span * t.max_procs() as f64));
            start += win;
        }
        out
    }

    #[test]
    fn pik_window_load_is_extreme_and_dispersed() {
        // The property Figs 3/7/9 need: PIK 256-job windows vary wildly in
        // offered load — quiet stretches plus burst windows that overload
        // the machine severely — and far more so than SDSC's.
        let pik = NamedWorkload::PikIplex.generate(8_000, 102);
        let mut d = window_demands(&pik, 256);
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = d[d.len() / 2];
        let peak = *d.last().unwrap();
        eprintln!("PIK window demand: median {median:.2} peak {peak:.2}");
        assert!(peak > 3.0, "PIK peak window demand {peak}");
        assert!(peak / median > 4.0, "PIK dispersion {}", peak / median);

        let sdsc = NamedWorkload::SdscSp2.generate(8_000, 102);
        let ds = window_demands(&sdsc, 256);
        let peak_s = ds.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 2.0 * peak_s, "PIK peak {peak} vs SDSC peak {peak_s}");
    }

    #[test]
    fn hpc2n_has_a_dominant_user() {
        let t = NamedWorkload::Hpc2n.generate(8_000, 103);
        let s = TraceStats::from_trace(&t);
        let share = s.max_user_jobs as f64 / s.jobs as f64;
        assert!(share > 0.30, "dominant share {share}");
        // SDSC by contrast is balanced.
        let s2 = TraceStats::from_trace(&NamedWorkload::SdscSp2.generate(8_000, 103));
        let share2 = s2.max_user_jobs as f64 / s2.jobs as f64;
        assert!(share2 < 0.15, "SDSC share {share2}");
    }

    #[test]
    fn names_round_trip() {
        for w in NamedWorkload::all() {
            assert_eq!(NamedWorkload::from_name(w.name()), Some(w));
        }
        assert_eq!(
            NamedWorkload::from_name("pik"),
            Some(NamedWorkload::PikIplex)
        );
        assert_eq!(NamedWorkload::from_name("nonesuch"), None);
    }

    #[test]
    fn anl_sizes_are_partition_multiples() {
        let t = NamedWorkload::AnlIntrepid.generate(2_000, 104);
        for j in t.jobs() {
            assert_eq!(j.procs() % 512, 0, "size {}", j.procs());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NamedWorkload::SdscSp2.generate(500, 7);
        let b = NamedWorkload::SdscSp2.generate(500, 7);
        assert_eq!(a.jobs(), b.jobs());
    }

    #[test]
    fn calibrate_preserves_request_dominates_runtime() {
        let t = NamedWorkload::Hpc2n.generate(3_000, 105);
        for j in t.jobs() {
            assert!(j.requested_time >= j.run_time);
        }
    }
}
