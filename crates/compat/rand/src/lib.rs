//! Offline shim for the `rand` crate.
//!
//! Implements the subset of rand 0.8's API this workspace uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, a deterministic [`rngs::StdRng`]
//! (SplitMix64-seeded xoshiro256++), uniform `gen`/`gen_range`, the
//! [`distributions::Distribution`] trait, and `seq::SliceRandom::shuffle`.
//!
//! Streams differ from upstream rand (which uses ChaCha12 for `StdRng`),
//! but are fully deterministic given a seed, which is all the workspace
//! relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Derive a generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full range for integers, `[0, 1)`
    /// for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw a uniform sample of `T` from itself.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + $unit(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + $unit(rng) * (hi - lo)
            }
        }
    )*};
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

impl_float_range!(f64, unit_f64; f32, unit_f32);

pub mod distributions {
    //! The `Distribution` trait and the `Standard` distribution.

    use super::{unit_f32, unit_f64, RngCore};

    /// Types that can produce values of `T` from raw randomness.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution of a type: full range for
    /// integers and bools, `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! std_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f32(rng)
        }
    }

    fn _assert_object_safe(_: &dyn super::RngCore) {}

    /// Uniform distribution over a half-open range (rarely used directly;
    /// `gen_range` is the common entry point).
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Uniform { lo, hi }
        }
    }

    macro_rules! uniform_impl {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    use super::SampleRange;
                    (self.lo..self.hi).sample_single(rng)
                }
            }
        )*};
    }
    uniform_impl!(u32, u64, usize, i64, f32, f64);

    #[allow(unused)]
    use super::RngCore as _;
    #[allow(unused)]
    fn _touch<R: RngCore>(_r: &R) {}
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice utilities.

    use super::Rng;

    /// Random re-ordering / selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A fresh generator seeded from the system clock and a process-local
/// counter (upstream's thread-local generator, simplified).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    SeedableRng::seed_from_u64(
        nanos
            ^ COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_mul(0x9E37_79B9),
    )
}

pub mod prelude {
    //! Glob-import surface matching upstream.
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = r.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-2.0f64..=3.0);
            assert!((-2.0..=3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn(rng: &mut dyn super::RngCore) -> u64 {
            rng.next_u64()
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = takes_dyn(&mut r);

        fn takes_generic<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let _ = takes_generic(&mut r);
    }
}
