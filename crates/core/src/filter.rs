//! Trajectory filtering (§IV-C of the paper).
//!
//! High-variance traces (PIK-IPLEX-2009) contain "easy sequences" where
//! any policy scores well — teaching nothing — and rare "hard sequences"
//! whose enormous slowdowns wreck whatever the agent has learned. The
//! paper's remedy: schedule randomly sampled sequences with a *known*
//! heuristic (SJF), look at the distribution of the resulting metric
//! (Fig 7), and train phase 1 only on sequences whose SJF metric falls in
//! `R = (median, 2·mean)`; phase 2 then trains on everything.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rlsched_sched::{HeuristicKind, PriorityScheduler};
use rlsched_sim::{run_episode, MetricKind, SimConfig};
use rlsched_swf::{JobTrace, SequenceSampler};

/// The fitted filter: the SJF-metric distribution over sampled sequences
/// and the acceptance range derived from it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajectoryFilter {
    metric: MetricKind,
    /// SJF metric of every sampled sequence, sorted ascending.
    samples: Vec<f64>,
    median: f64,
    mean: f64,
    lo: f64,
    hi: f64,
}

impl TrajectoryFilter {
    /// Fit the filter: sample `n_samples` windows of `seq_len` jobs from
    /// `trace`, schedule each with SJF under `sim_cfg`, and derive
    /// `R = (median, 2·mean)` from the metric distribution.
    pub fn fit(
        trace: &JobTrace,
        seq_len: usize,
        n_samples: usize,
        metric: MetricKind,
        sim_cfg: SimConfig,
        seed: u64,
    ) -> Self {
        assert!(n_samples >= 2, "need at least two samples to fit a range");
        let sampler = SequenceSampler::new(trace.len(), seq_len)
            .expect("trace long enough for the requested sequences");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples: Vec<f64> = (0..n_samples)
            .map(|_| {
                let off = sampler.offset_from_draw(rng.gen());
                let window = trace.window(off, seq_len).expect("offset in range");
                sjf_metric(&window, metric, sim_cfg)
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        TrajectoryFilter {
            metric,
            samples,
            median,
            mean,
            lo: median,
            hi: 2.0 * mean,
        }
    }

    /// Does a sequence (by its SJF metric value) pass the phase-1 filter?
    /// The range is `(median, 2·mean)`, both exclusive, per §IV-C.
    pub fn accepts(&self, sjf_metric_value: f64) -> bool {
        sjf_metric_value > self.lo && sjf_metric_value < self.hi
    }

    /// The acceptance range `R`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Override the acceptance range (ablation benches).
    pub fn set_range(&mut self, lo: f64, hi: f64) {
        assert!(lo <= hi);
        self.lo = lo;
        self.hi = hi;
    }

    /// Median of the fitted SJF-metric distribution.
    pub fn median(&self) -> f64 {
        self.median
    }

    /// Mean of the fitted SJF-metric distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The sorted per-sequence SJF metrics (the Fig 7 histogram data).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The metric the filter was fitted for.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// Fraction of fitted samples the range accepts.
    pub fn acceptance_rate(&self) -> f64 {
        let n = self.samples.iter().filter(|&&v| self.accepts(v)).count();
        n as f64 / self.samples.len() as f64
    }
}

/// Schedule a window with SJF and return the metric — the filter's
/// yardstick ("we use a known heuristic scheduling algorithm, i.e.,
/// Shortest Job First", §IV-C).
pub fn sjf_metric(window: &JobTrace, metric: MetricKind, sim_cfg: SimConfig) -> f64 {
    let mut sjf = PriorityScheduler::new(HeuristicKind::Sjf);
    let m = run_episode(window, sim_cfg, &mut sjf).expect("window is schedulable");
    m.metric(metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_swf::Job;

    /// A trace with calm stretches and one catastrophic burst, so sampled
    /// windows have very different SJF slowdowns.
    fn bimodal_trace() -> JobTrace {
        let mut jobs = Vec::new();
        let mut id = 0;
        let mut t = 0.0;
        // calm: arrivals far apart
        for _ in 0..300 {
            id += 1;
            t += 500.0;
            jobs.push(Job::new(id, t, 100.0, 1, 100.0));
        }
        // burst: long jobs all at once
        for i in 0..100 {
            id += 1;
            jobs.push(Job::new(id, t + 1.0 + i as f64 * 0.01, 5000.0, 4, 5000.0));
        }
        // calm again
        for _ in 0..300 {
            id += 1;
            t += 500.0;
            jobs.push(Job::new(id, t + 600_000.0, 100.0, 1, 100.0));
        }
        JobTrace::new(jobs, 4)
    }

    #[test]
    fn fit_produces_ordered_range() {
        let t = bimodal_trace();
        let f = TrajectoryFilter::fit(
            &t,
            64,
            50,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            1,
        );
        let (lo, hi) = f.range();
        assert_eq!(lo, f.median());
        assert!((hi - 2.0 * f.mean()).abs() < 1e-9);
        assert!(
            f.samples().windows(2).all(|w| w[0] <= w[1]),
            "samples sorted"
        );
        assert_eq!(f.samples().len(), 50);
    }

    #[test]
    fn skewed_distribution_median_below_mean() {
        // The Fig 7 shape: median ~1, mean pulled up by the burst tail.
        let t = bimodal_trace();
        let f = TrajectoryFilter::fit(
            &t,
            64,
            60,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            2,
        );
        assert!(
            f.median() < f.mean(),
            "median {} should sit below mean {} in a right-skewed distribution",
            f.median(),
            f.mean()
        );
    }

    #[test]
    fn accepts_mid_range_rejects_extremes() {
        let t = bimodal_trace();
        let f = TrajectoryFilter::fit(
            &t,
            64,
            60,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            3,
        );
        let (lo, hi) = f.range();
        assert!(
            !f.accepts(lo),
            "exactly-median ('easy') sequences are filtered"
        );
        assert!(
            !f.accepts(hi + 1.0),
            "beyond-2·mean ('hard') sequences are filtered"
        );
        if hi > lo {
            assert!(f.accepts((lo + hi) / 2.0));
        }
    }

    #[test]
    fn acceptance_rate_is_a_fraction() {
        let t = bimodal_trace();
        let f = TrajectoryFilter::fit(
            &t,
            64,
            60,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            4,
        );
        let r = f.acceptance_rate();
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn set_range_overrides() {
        let t = bimodal_trace();
        let mut f = TrajectoryFilter::fit(
            &t,
            64,
            20,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            5,
        );
        f.set_range(0.0, f64::INFINITY);
        assert!(f.accepts(1e12));
    }

    #[test]
    fn sjf_metric_matches_direct_episode() {
        let t = bimodal_trace();
        let w = t.window(10, 64).unwrap();
        let v = sjf_metric(&w, MetricKind::BoundedSlowdown, SimConfig::default());
        let mut sjf = PriorityScheduler::new(HeuristicKind::Sjf);
        let direct = run_episode(&w, SimConfig::default(), &mut sjf)
            .unwrap()
            .avg_bounded_slowdown();
        assert_eq!(v, direct);
    }

    #[test]
    fn deterministic_fit() {
        let t = bimodal_trace();
        let a = TrajectoryFilter::fit(
            &t,
            64,
            30,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            7,
        );
        let b = TrajectoryFilter::fit(
            &t,
            64,
            30,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            7,
        );
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.range(), b.range());
    }
}
