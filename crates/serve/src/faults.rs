//! Deterministic fault injection for the serving tier.
//!
//! A [`FaultPlan`] is a script, not a dice roll: each entry names the
//! shard and the (lifetime) batch index at which the fault fires, so a
//! chaos test replays the exact same failure sequence every run. The
//! plan is installed through [`crate::ServeConfig::faults`]; shard
//! workers call [`FaultPlan::before_score`] right before each batched
//! forward, which is where a scripted panic (a poisoned model batch, a
//! kernel bug) or stall (a page-cache hiccup, a noisy neighbour) lands
//! in a real tier.
//!
//! The panic a `Panic` fault raises is an ordinary Rust panic — it
//! exercises the production `catch_unwind` supervision path, not a
//! special test hook. `Stall` sleeps in the scoring position, so
//! requests queued behind it age past their in-queue deadline and take
//! the fallback arm.
//!
//! [`write_torn_frame`] is the client-side counterpart: it writes a
//! deliberately truncated frame (with or without the terminating
//! newline) so tests can drive the server's resync path and the
//! client's reconnect path.

use std::collections::HashMap;
use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

use serde::Serialize;

/// One scripted fault on one shard, keyed by that shard's lifetime
/// attempted-batch counter (batch 0 is the shard's first coalesced
/// batch; a panicked attempt still advances the counter).
#[derive(Debug, Clone, Copy)]
enum ScriptedFault {
    /// Panic before scoring batches `[batch, batch + times)`.
    Panic { batch: u64, times: u64 },
    /// Sleep `stall` before scoring batch `batch`.
    Stall { batch: u64, stall: Duration },
}

/// A deterministic, replayable schedule of shard faults.
#[derive(Debug, Default)]
pub struct FaultPlan {
    shards: Mutex<HashMap<usize, Vec<ScriptedFault>>>,
}

impl FaultPlan {
    /// An empty plan (no faults fire until scripted).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Script `times` consecutive panics on `shard`, starting at its
    /// `batch`-th attempted batch. `times > budget` consecutive panics
    /// drives the shard into `Failed`; fewer exercises respawn.
    pub fn panic_at(&self, shard: usize, batch: u64, times: u64) {
        self.script(shard, ScriptedFault::Panic { batch, times });
    }

    /// Script one `stall`-long sleep on `shard` before its `batch`-th
    /// attempted batch.
    pub fn stall_at(&self, shard: usize, batch: u64, stall: Duration) {
        self.script(shard, ScriptedFault::Stall { batch, stall });
    }

    fn script(&self, shard: usize, fault: ScriptedFault) {
        self.lock().entry(shard).or_default().push(fault);
    }

    /// The shard-worker hook: called with the shard's lifetime batch
    /// counter immediately before each batched forward. Panics or
    /// sleeps per the script; a no-op for unscripted (shard, batch)
    /// pairs — and for every shard when the plan is empty, so leaving a
    /// plan installed in production config costs one map lookup.
    pub fn before_score(&self, shard: usize, batch: u64) {
        let stall = {
            let shards = self.lock();
            let Some(faults) = shards.get(&shard) else {
                return;
            };
            let mut stall = None;
            for f in faults {
                match *f {
                    ScriptedFault::Panic { batch: b, times } => {
                        if batch >= b && batch < b + times {
                            // The guard must drop before the unwind so a
                            // panicking shard cannot poison the plan for
                            // its siblings — but Mutex poisoning is also
                            // tolerated in lock() for belt and braces.
                            drop(shards);
                            panic!("injected fault: shard {shard} panic at batch {batch}");
                        }
                    }
                    ScriptedFault::Stall { batch: b, stall: d } => {
                        if batch == b {
                            stall = Some(d);
                        }
                    }
                }
            }
            stall
        };
        if let Some(d) = stall {
            std::thread::sleep(d);
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<usize, Vec<ScriptedFault>>> {
        // A scripted panic unwinds through the scope that held this lock
        // only via explicit drop-before-panic above; if a future edit
        // gets that wrong, recover the map instead of cascading.
        self.shards
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Serialize `frame` as the wire would, then write only its first
/// `keep` bytes (newline included in the count). `keep` at or beyond
/// the full frame length writes the frame intact. Tests follow this
/// with a stream shutdown to model a client dying mid-write, or with a
/// valid frame to model a corrupted line the server must resync past.
pub fn write_torn_frame<T: Serialize, W: Write>(
    w: &mut W,
    frame: &T,
    keep: usize,
) -> std::io::Result<()> {
    let mut line = serde_json::to_string(frame).map_err(std::io::Error::from)?;
    line.push('\n');
    let torn = &line.as_bytes()[..keep.min(line.len())];
    w.write_all(torn)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscripted_shards_and_batches_are_untouched() {
        let plan = FaultPlan::new();
        plan.before_score(0, 0); // empty plan: no-op
        plan.panic_at(1, 5, 1);
        plan.before_score(0, 5); // other shard
        plan.before_score(1, 4); // before the window
        plan.before_score(1, 6); // after the window
    }

    #[test]
    fn scripted_panic_fires_for_exactly_its_window() {
        let plan = FaultPlan::new();
        plan.panic_at(0, 2, 2);
        plan.before_score(0, 1);
        for batch in [2, 3] {
            let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan.before_score(0, batch)
            }));
            assert!(hit.is_err(), "batch {batch} must panic");
        }
        // The plan survives its own panics (no poisoned-lock cascade).
        plan.before_score(0, 4);
    }

    #[test]
    fn torn_frames_truncate_at_the_requested_byte() {
        let req = crate::protocol::Request::Stats { id: 7 };
        let mut full = Vec::new();
        write_torn_frame(&mut full, &req, usize::MAX).unwrap();
        assert!(full.ends_with(b"\n"));
        let mut torn = Vec::new();
        write_torn_frame(&mut torn, &req, 5).unwrap();
        assert_eq!(&torn[..], &full[..5]);
    }
}
