//! Heap-allocation counting, shared by the benches and the
//! allocation-regression tests.
//!
//! The crate installs [`CountingAlloc`] as the global allocator for every
//! binary linking it (benches, tests, the repro harness): a single relaxed
//! atomic increment per allocation, negligible next to the allocation
//! itself. The fast paths this repo builds exist to drive
//! allocations-per-call to zero, so the counter is the number to watch
//! across PRs — `benches/ppo_update.rs` prints it, and
//! `tests/alloc_regression.rs` turns it into hard regression bounds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation (and reallocation) through the system
/// allocator.
pub struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Total allocations since process start.
pub fn allocations_so_far() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Run `f` once and return how many heap allocations it performed.
///
/// The count is process-global: concurrent allocating threads inflate
/// it, so measurements must not race each other (run them from a single
/// test, or serialize with a lock).
pub fn count_allocs<T>(mut f: impl FnMut() -> T) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    std::hint::black_box(f());
    ALLOCS.load(Ordering::Relaxed) - before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sees_allocations() {
        let n = count_allocs(|| Vec::<u64>::with_capacity(32));
        assert!(n >= 1, "a fresh Vec must register at least one allocation");
        let mut buf: Vec<u64> = Vec::with_capacity(8);
        let reuse = count_allocs(|| {
            buf.clear();
            buf.extend(0..8);
        });
        assert_eq!(reuse, 0, "refilling within capacity must not allocate");
    }
}
