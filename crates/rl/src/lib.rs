//! Reinforcement-learning substrate: the PPO actor–critic machinery the
//! RLScheduler paper builds on (§II-B, §V-A: "We implement RLScheduler
//! based on the Proximal Policy Optimization (PPO) algorithm from OpenAI
//! Spinning Up").
//!
//! The crate is environment-agnostic: anything implementing [`Env`] (a
//! masked discrete-action episodic environment) can be trained. The
//! scheduling environment itself lives in the `rlscheduler` crate.
//!
//! Components:
//!
//! * [`categorical`] — masked categorical action distributions over
//!   log-probabilities (sampling during training, argmax during testing —
//!   §IV-B1 of the paper).
//! * [`buffer`] — per-episode rollout storage with GAE(γ, λ) advantage
//!   estimation and reward-to-go returns.
//! * [`ppo`] — the clipped-surrogate PPO update with early stopping on
//!   approximate KL, separate Adam optimizers for policy and value nets.
//! * [`vecenv`] — vectorized environments ([`VecEnv`]) stepped in
//!   lockstep, plus the [`BatchPolicy`] batched-scoring trait every
//!   rollout/eval/serving path shares.
//! * [`sampler`] — trajectory collection over a [`VecEnv`]: every
//!   simulator tick scores all live episodes through one stacked policy
//!   forward (the "100 trajectories per epoch" of §V-A, batched).

pub mod buffer;
pub mod categorical;
pub mod env;
pub mod ppo;
pub mod sampler;
pub mod vecenv;

pub use buffer::{ArrivalArena, Batch, RolloutBuffer};
pub use categorical::MaskedCategorical;
pub use env::{Env, StepOutcome};
pub use ppo::{ActorScratch, PolicyModel, Ppo, PpoConfig, UpdateProfile, UpdateStats, ValueModel};
pub use sampler::{
    collect_episodes, collect_rollouts, collect_rollouts_par, collect_rollouts_vec, RolloutStats,
};
pub use vecenv::{greedy_batch, BatchPolicy, SlotOutcome, VecEnv};
