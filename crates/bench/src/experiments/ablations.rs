//! Ablation benches beyond the paper: sensitivity of the two design
//! choices DESIGN.md calls out — the observation window (MAX_OBSV_SIZE)
//! and the trajectory-filter acceptance range.

use serde_json::json;

use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{
    evaluate_policy, mean_metric, sample_eval_windows, train, FilterMode, ObsConfig, PolicyKind,
    TrajectoryFilter,
};

use crate::profile::Profile;
use crate::report::{fmt_metric, Report};

/// MAX_OBSV_SIZE sweep: how much does the FCFS cutoff window matter?
pub fn ablate_obs(p: &Profile, report: &mut Report) {
    report.section("Ablation: observation window MAX_OBSV_SIZE (Lublin-1, bsld)");
    let trace = p.trace(NamedWorkload::Lublin1);
    let windows = sample_eval_windows(&trace, p.eval_seqs, p.eval_len, p.seed ^ 0xAB0);
    let mut rows = Vec::new();
    for (i, max_obsv) in [16usize, 32, 64, 128].into_iter().enumerate() {
        let mut agent = {
            let mut a = p.agent(
                PolicyKind::Kernel,
                MetricKind::BoundedSlowdown,
                0xAB1 ^ (i as u64) << 2,
            );
            // Rebuild with the swept window size.
            let mut cfg = a.config().clone();
            cfg.obs = ObsConfig {
                max_obsv,
                ..cfg.obs
            };
            a = rlscheduler::Agent::new(cfg);
            a
        };
        let curve = train(
            &mut agent,
            &trace,
            &p.train_cfg(SimConfig::default(), FilterMode::Off),
        );
        let results = evaluate_policy(&windows, SimConfig::default(), &mut agent.as_policy());
        let final_metric = mean_metric(&results, MetricKind::BoundedSlowdown);
        let last_train = curve.last().map(|e| e.mean_metric).unwrap_or(f64::NAN);
        report.record(
            &format!("obsv{max_obsv}"),
            json!({"eval_bsld": final_metric, "train_tail": last_train,
                   "params": agent.policy_param_count()}),
        );
        rows.push(vec![
            max_obsv.to_string(),
            agent.policy_param_count().to_string(),
            fmt_metric(last_train),
            fmt_metric(final_metric),
        ]);
    }
    report.table(
        &["MAX_OBSV", "policy params", "train tail bsld", "eval bsld"],
        &rows,
    );
}

/// Filter-range sweep on PIK-IPLEX: R ∈ {(med, mean), (med, 2·mean),
/// (med, 4·mean), off}.
pub fn ablate_filter_range(p: &Profile, report: &mut Report) {
    report.section("Ablation: trajectory-filter range R (PIK-IPLEX, bsld)");
    let trace = p.trace(NamedWorkload::PikIplex);
    let seq = p.train_seq;
    let base = TrajectoryFilter::fit(
        &trace,
        seq,
        p.filter_fit,
        MetricKind::BoundedSlowdown,
        SimConfig::default(),
        p.seed ^ 0xAB2,
    );
    println!(
        "fitted: median {}  mean {}",
        fmt_metric(base.median()),
        fmt_metric(base.mean())
    );

    let variants: Vec<(&str, Option<f64>)> = vec![
        ("(median, 1*mean)", Some(1.0)),
        ("(median, 2*mean)", Some(2.0)),
        ("(median, 4*mean)", Some(4.0)),
        ("no filter", None),
    ];
    let mut rows = Vec::new();
    for (i, (name, mult)) in variants.into_iter().enumerate() {
        let filter = match mult {
            Some(hi_mult) => FilterMode::TwoPhase {
                phase1_epochs: (p.epochs * 2 / 3).max(1),
                fit_samples: p.filter_fit,
                hi_mult,
            },
            None => FilterMode::Off,
        };
        let acceptance = mult
            .map(|m| {
                let mut f = base.clone();
                f.set_range(f.median(), m * f.mean());
                f.acceptance_rate()
            })
            .unwrap_or(1.0);
        let (_agent, curve) = p.train_agent(
            NamedWorkload::PikIplex,
            PolicyKind::Kernel,
            MetricKind::BoundedSlowdown,
            SimConfig::default(),
            filter,
            0xAB3 ^ (i as u64) << 3,
        );
        let tail: Vec<f64> = curve[curve.len() * 2 / 3..]
            .iter()
            .map(|e| e.mean_metric)
            .collect();
        let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        report.record(
            &format!("variant{i}"),
            json!({"range": name, "acceptance": acceptance, "tail_bsld": tail_mean}),
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.0}%", acceptance * 100.0),
            fmt_metric(tail_mean),
        ]);
    }
    report.table(&["Range R", "acceptance", "tail bsld"], &rows);
}
