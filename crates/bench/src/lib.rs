//! Reproduction harness for the RLScheduler paper.
//!
//! Every table and figure of the evaluation section (§V + appendix) has a
//! generator here, dispatched by the `repro` binary:
//!
//! ```text
//! cargo run --release -p rlsched-bench --bin repro -- <experiment> [--full] [--seed N]
//! ```
//!
//! Two profiles are provided: the default **quick** profile shrinks traces,
//! training epochs and evaluation windows so the whole suite runs on a
//! laptop in minutes; `--full` restores the paper's scale (first 10K jobs,
//! 100 epochs × 100 × 256-job trajectories, 10 × 1024-job evaluations).
//! Shapes — who wins, by roughly what factor — are expected to hold in
//! both; absolute numbers are profile-dependent.

pub mod alloc;
pub mod experiments;
pub mod profile;
pub mod report;

pub use profile::Profile;
pub use report::Report;
