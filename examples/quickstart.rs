//! Quickstart: train a small RLScheduler agent on a synthetic Lublin
//! workload, then compare it against the classic heuristics on held-out
//! job sequences.
//!
//! ```text
//! cargo run --release --example quickstart                     # ~a minute
//! cargo run --release --example quickstart -- --tiny           # seconds (CI smoke)
//! cargo run --release --example quickstart -- --tiny --serve   # + serving-tier demo
//! cargo run --release --example quickstart -- --threads 4      # multi-core training
//! ```
//!
//! `--threads N` (N ≥ 2) trains multi-core: rollout collection fans the
//! epoch's seed schedule out over per-worker env groups and the PPO
//! update shards its backward into fixed chunks. Results are
//! deterministic at *any* N — rerunning with a different `--threads`
//! value reproduces the same curve bit for bit (`RLSCHED_THREADS` caps
//! the pool; see crates/compat/README.md for the threading model).
//!
//! With `--serve`, the trained agent is additionally stood up behind the
//! sharded `rlsched-serve` tier and every held-out window is scheduled
//! by a concurrent remote client — first as newline-JSON over TCP, then
//! again as binary frames over a unix domain socket. Decisions coalesce
//! into batches on the shards and must come back bit-identical to
//! in-process scoring on both wire stacks.

use rlsched_repro::core::prelude::*;
use rlsched_repro::core::{CanaryBatch, PolicyNet, ScorerSnapshot};
use rlsched_repro::sched::{HeuristicKind, PriorityScheduler};
use rlsched_repro::serve::{
    ListenAddr, RemotePolicy, ServeClient, ServeConfig, Server, ServerAddr, WireProtocol,
};
use rlsched_repro::workload::NamedWorkload;

/// Problem sizes for the two run modes: the default "see it learn" scale
/// and a `--tiny` smoke scale CI uses to prove the binary still drives
/// the whole train→eval→checkpoint pipeline after API changes.
struct Scale {
    jobs: usize,
    max_obsv: usize,
    epochs: usize,
    trajectories: usize,
    seq_len: usize,
    eval_windows: usize,
    eval_len: usize,
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let serve = std::env::args().any(|a| a == "--serve");
    let threads = {
        let mut args = std::env::args();
        args.find(|a| a == "--threads")
            .and_then(|_| args.next())
            .map(|v| v.parse().expect("--threads takes a worker count"))
            .unwrap_or(1)
    };
    let scale = if tiny {
        Scale {
            jobs: 400,
            max_obsv: 16,
            epochs: 2,
            trajectories: 4,
            seq_len: 32,
            eval_windows: 2,
            eval_len: 64,
        }
    } else {
        Scale {
            jobs: 1500,
            max_obsv: 32,
            epochs: 10,
            trajectories: 12,
            seq_len: 128,
            eval_windows: 5,
            eval_len: 256,
        }
    };

    // 1. A workload: jobs from the Lublin-Feitelson model, calibrated to
    //    the paper's Table II moments (256-processor cluster).
    let trace = NamedWorkload::Lublin1.generate(scale.jobs, 42);
    println!(
        "workload: {} jobs on {} processors",
        trace.len(),
        trace.max_procs()
    );

    // 2. An agent: the paper's kernel-based policy network, shrunk a little
    //    so this example runs in ~a minute (or seconds with --tiny).
    let mut cfg = AgentConfig::paper_default();
    cfg.obs.max_obsv = scale.max_obsv;
    cfg.ppo.train_pi_iters = 15;
    cfg.ppo.train_v_iters = 15;
    cfg.ppo.minibatch = Some(512);
    let mut agent = Agent::new(cfg);
    println!(
        "policy parameters: {} (<1000, §IV-B1)",
        agent.policy_param_count()
    );

    // 3. Train toward minimizing average bounded slowdown. Collection
    //    steps 8 env slots in lockstep, scoring every live trajectory
    //    through one stacked policy forward per simulator tick.
    let train_cfg = TrainConfig {
        epochs: scale.epochs,
        trajectories_per_epoch: scale.trajectories,
        seq_len: scale.seq_len,
        sim: SimConfig::default(),
        filter: FilterMode::Off,
        seed: 7,
        n_envs: 8,
        n_threads: threads,
    };
    println!(
        "\ntraining ({} epochs{})…",
        train_cfg.epochs,
        if threads >= 2 {
            format!(", {threads} worker threads")
        } else {
            String::new()
        }
    );
    let curve = train(&mut agent, &trace, &train_cfg);
    for e in &curve {
        println!("  epoch {:>2}: mean bsld {:>10.2}", e.epoch, e.mean_metric);
    }

    // 4. Evaluate on held-out sequences — the *same* sequences for every
    //    scheduler, as the paper's protocol requires. The RL agent is
    //    evaluated twice: through the per-decision Policy adapter (like
    //    any heuristic) and through the lockstep batched evaluator, which
    //    scores all windows' decision points in one forward per tick.
    let windows = sample_eval_windows(&trace, scale.eval_windows, scale.eval_len, 99);
    println!(
        "\nscheduling {} held-out sequences of {} jobs (avg bounded slowdown):",
        windows.len(),
        windows[0].len()
    );
    for kind in HeuristicKind::table3() {
        let mut sched = PriorityScheduler::new(kind);
        let results = evaluate_policy(&windows, SimConfig::default(), &mut sched);
        println!(
            "  {:<10} {:>10.2}",
            kind.name(),
            mean_metric(&results, MetricKind::BoundedSlowdown)
        );
    }
    let results = evaluate_policy(&windows, SimConfig::default(), &mut agent.as_policy());
    println!(
        "  {:<10} {:>10.2}",
        "RL",
        mean_metric(&results, MetricKind::BoundedSlowdown)
    );
    let batched = evaluate_agent(&agent, &windows, SimConfig::default());
    println!(
        "  {:<10} {:>10.2}  (lockstep batched evaluator)",
        "RL-vec",
        mean_metric(&batched, MetricKind::BoundedSlowdown)
    );
    assert_eq!(
        mean_metric(&results, MetricKind::BoundedSlowdown),
        mean_metric(&batched, MetricKind::BoundedSlowdown),
        "batched greedy evaluation must match the sequential protocol"
    );

    // 5. Persist the trained model (Table VII transfer-style usage).
    let json = agent.save_json();
    let restored = Agent::load_json(&json).expect("checkpoint is valid");
    let again = evaluate_policy(&windows, SimConfig::default(), &mut restored.as_policy());
    assert_eq!(
        mean_metric(&results, MetricKind::BoundedSlowdown),
        mean_metric(&again, MetricKind::BoundedSlowdown),
        "restored model schedules identically"
    );
    println!("\ncheckpoint round-trip OK ({} bytes of JSON)", json.len());

    // 6. (--serve) Stand the trained agent up behind the sharded,
    //    request-coalescing serving tier and schedule every held-out
    //    window through a concurrent remote client — once per wire
    //    stack. The decisions cross the wire as queue snapshots,
    //    coalesce into batches on the shards, and must match in-process
    //    scoring bit for bit on both stacks.
    if serve {
        // JSON over TCP: the `nc`-able, greppable stack.
        let handle = Server::spawn(
            agent.scorer_snapshot(),
            *agent.encoder(),
            ServeConfig {
                shards: 2,
                addr: ListenAddr::Tcp("127.0.0.1:0".into()),
                ..ServeConfig::default()
            },
        )
        .expect("serving tier binds a local port");
        println!(
            "\nserving tier up on tcp:{} (JSON frames, 2 shards, {} held-out windows as \
             concurrent clients)…",
            handle.addr(),
            windows.len()
        );
        let addr = handle.addr();
        let window = agent.encoder().cfg.max_obsv;
        let (remote_results, client_decisions): (Vec<_>, Vec<u64>) = std::thread::scope(|s| {
            let handles: Vec<_> = windows
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    s.spawn(move || {
                        let client = ServeClient::connect(addr)
                            .expect("client connects")
                            .with_protocol(WireProtocol::Json)
                            .with_id_base(1 + 10_000 * i as u64);
                        let mut policy = RemotePolicy::new(client, window);
                        let m = evaluate_policy(
                            std::slice::from_ref(w),
                            SimConfig::default(),
                            &mut policy,
                        );
                        assert_eq!(policy.sheds(), 0, "no shedding at demo load");
                        (
                            m.into_iter().next().expect("one window, one result"),
                            policy.remote_decisions(),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("remote scheduling thread"))
                .unzip()
        });
        assert_eq!(
            mean_metric(&results, MetricKind::BoundedSlowdown),
            mean_metric(&remote_results, MetricKind::BoundedSlowdown),
            "remote coalesced decisions must match in-process scoring"
        );

        // Scrape the tier's telemetry registry over the wire
        // (`Request::Metrics`) and reconcile it against what the clients
        // counted themselves: the server's decision counters must equal
        // the requests the clients know they sent — telemetry that
        // can't survive that cross-check isn't telemetry.
        let sent: u64 = client_decisions.iter().sum();
        let mut probe = ServeClient::connect(addr).expect("metrics probe connects");
        let scrape = probe.metrics().expect("metrics round trip");
        drop(probe);
        let served = scrape.counter_sum("rlsched_serve_served_total");
        let fallbacks = scrape.counter_sum("rlsched_serve_fallbacks_total");
        let latency = scrape.histogram_merged("rlsched_serve_latency_ns");
        println!(
            "registry scrape: {} metrics — served {} (+{} fallback) across {} batches \
             (largest {}), decision p50 {:.0} µs / p99 {:.0} µs",
            scrape.metrics.len(),
            served,
            fallbacks,
            scrape.counter_sum("rlsched_serve_batches_total"),
            scrape.histogram_merged("rlsched_serve_batch_rows").max_ns,
            latency.quantile_ns(0.5) as f64 / 1e3,
            latency.quantile_ns(0.99) as f64 / 1e3,
        );
        assert_eq!(
            served + fallbacks,
            sent,
            "server decision counters must equal the client-side request count"
        );
        assert_eq!(
            scrape.counter_sum("rlsched_serve_shed_total"),
            0,
            "demo load must not shed"
        );
        assert_eq!(
            latency.count, served,
            "every model-served decision carries one latency sample"
        );

        // Binary frames over a unix domain socket: the zero-copy stack
        // the load benches prefer. Same weights, same coalescing tier —
        // the decisions (and therefore the metrics) must be identical.
        #[cfg(unix)]
        {
            let uds = Server::spawn(
                agent.scorer_snapshot(),
                *agent.encoder(),
                ServeConfig {
                    shards: 2,
                    addr: ListenAddr::unix_temp("quickstart"),
                    ..ServeConfig::default()
                },
            )
            .expect("serving tier binds a unix socket");
            let ServerAddr::Unix(path) = uds.server_addr().clone() else {
                unreachable!("a unix listener binds a unix address")
            };
            println!(
                "serving tier up on unix:{} (binary frames)…",
                path.display()
            );
            let uds_results: Vec<_> = std::thread::scope(|s| {
                let handles: Vec<_> = windows
                    .iter()
                    .enumerate()
                    .map(|(i, w)| {
                        let path = path.clone();
                        s.spawn(move || {
                            let client = ServeClient::connect_uds(&path)
                                .expect("client connects over UDS")
                                .with_protocol(WireProtocol::Binary)
                                .with_id_base(1 + 10_000 * i as u64);
                            let mut policy = RemotePolicy::new(client, window);
                            let m = evaluate_policy(
                                std::slice::from_ref(w),
                                SimConfig::default(),
                                &mut policy,
                            );
                            assert_eq!(policy.sheds(), 0, "no shedding at demo load");
                            m.into_iter().next().expect("one window, one result")
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("remote scheduling thread"))
                    .collect()
            });
            uds.shutdown();
            assert_eq!(
                mean_metric(&results, MetricKind::BoundedSlowdown),
                mean_metric(&uds_results, MetricKind::BoundedSlowdown),
                "binary-over-UDS decisions must match in-process scoring"
            );
            println!("binary-UDS remote scheduling matches in-process scoring too");
        }
        // Checkpoint lifecycle: propose → validate → commit. The canary
        // probe carries expected decisions from in-process scoring, so
        // the restored weights must reproduce them bit for bit before
        // they are allowed to serve — and a poisoned checkpoint is
        // rejected without ever touching the serving weights.
        let canary = CanaryBatch::probe(&agent, 8, 42);
        let generation = handle
            .propose_scorer(restored.scorer_snapshot(), &canary)
            .expect("the restored checkpoint passes validation");
        println!("validated checkpoint committed (generation {generation})");
        let poisoned = {
            use rlsched_repro::rl::PolicyModel;
            let mut net = PolicyNet::build(PolicyKind::Kernel, scale.max_obsv, 99);
            for v in net
                .params_mut()
                .last_mut()
                .expect("net has params")
                .data_mut()
            {
                *v = f32::NAN;
            }
            ScorerSnapshot::new(&net, agent.encoder().obs_dim(), agent.encoder().n_actions())
        };
        assert!(
            handle.propose_scorer(poisoned, &canary).is_err(),
            "a NaN-poisoned checkpoint must be rejected"
        );
        let mut probe = ServeClient::connect(addr).expect("probe connects");
        let stats = probe.stats().expect("stats round trip");
        drop(probe);
        let final_stats = handle.shutdown();
        println!(
            "served {} decisions in {} batches (mean batch {:.1}, max {}), \
             latency p50 {:.0} µs / p99 {:.0} µs / max {:.0} µs, {} hot-swap",
            final_stats.served,
            final_stats.batches,
            final_stats.mean_batch(),
            final_stats.max_batch,
            final_stats.p50_us,
            final_stats.p99_us,
            final_stats.max_us,
            final_stats.swaps,
        );
        assert_eq!(stats.shed, 0, "demo load must not shed");
        assert!(final_stats.served >= stats.served);
        println!("remote scheduling matches in-process scoring — serving tier OK");
    }

    // Emit any buffered trace spans (no-op unless RLSCHED_TRACE is set).
    let _ = rlsched_repro::obs::trace::flush();
}
