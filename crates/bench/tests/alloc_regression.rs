//! Allocation-regression tests: the zero-allocation fast paths are load
//! bearing (they are the PR-over-PR performance story), so pin them with
//! hard bounds from the same counting allocator the benches report with.
//!
//! Everything runs inside ONE test: the counter is process-global, so
//! concurrent tests would inflate each other's measurements.

use rlsched_bench::alloc::count_allocs;
use rlsched_rl::{
    collect_rollouts, ActorScratch, Env, MaskedCategorical, PolicyModel, PpoConfig, ValueModel,
    VecEnv,
};
use rlsched_serve::{ScorerSlot, ShardEngine};
use rlsched_sim::{MetricKind, QueueView, SimConfig, WaitingJob};
use rlsched_workload::NamedWorkload;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SchedulingEnv};

const SEQ_LEN: usize = 48;

fn agent() -> Agent {
    Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 16,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig {
            train_pi_iters: 3,
            train_v_iters: 3,
            minibatch: Some(256),
            ..PpoConfig::default()
        },
        seed: 5,
    })
}

fn env_for(agent: &Agent, sim: SimConfig) -> SchedulingEnv {
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(512, 3));
    SchedulingEnv::new(trace, SEQ_LEN, sim, *agent.encoder(), agent.objective())
}

/// Drive one full episode with a head-of-queue policy (manual
/// single-env driving: clear the append-contract buffers per call).
fn run_episode(env: &mut SchedulingEnv, seed: u64, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
    obs.clear();
    mask.clear();
    env.reset(seed, obs, mask);
    loop {
        obs.clear();
        mask.clear();
        if env.step(0, obs, mask).done {
            break;
        }
    }
}

/// Warm an env, then count allocations across every non-terminal step of
/// a fresh episode (the terminal step computes the episode metrics and
/// may allocate the outcome table — that is reset-scale work, not
/// stepping).
fn steady_state_step_allocs(
    env: &mut SchedulingEnv,
    obs: &mut Vec<f32>,
    mask: &mut Vec<f32>,
) -> (u64, u64) {
    run_episode(env, 1, obs, mask);
    run_episode(env, 2, obs, mask);
    obs.clear();
    mask.clear();
    env.reset(3, obs, mask);
    let mut steps = 0u64;
    let mut allocs = 0u64;
    loop {
        let mut done = false;
        let step_allocs = count_allocs(|| {
            obs.clear();
            mask.clear();
            done = env.step(0, obs, mask).done
        });
        if done {
            break;
        }
        allocs += step_allocs;
        steps += 1;
    }
    (steps, allocs)
}

#[test]
fn fast_paths_do_not_regress_allocations() {
    let mut agent = agent();
    let (mut obs, mut mask) = (Vec::new(), Vec::new());

    // ---- env stepping: 0 heap allocations per step at steady state ----
    let mut env = env_for(&agent, SimConfig::default());
    let (steps, step_allocs) = steady_state_step_allocs(&mut env, &mut obs, &mut mask);
    assert!(steps >= 40, "episode long enough to be a real measurement");
    assert_eq!(
        step_allocs, 0,
        "env.step must not allocate at steady state ({step_allocs} allocations over {steps} steps)"
    );

    // Same property with EASY backfilling (exercises the reservation /
    // shadow-time path and its reusable release buffer).
    let mut bf_env = env_for(&agent, SimConfig::with_backfill());
    let (_, bf_allocs) = steady_state_step_allocs(&mut bf_env, &mut obs, &mut mask);
    assert_eq!(bf_allocs, 0, "backfilling env.step must not allocate");

    // ---- streaming replay tick: 0 heap allocations at steady state.
    // The one-pass StreamSession exists to make multi-million-job
    // replays cheap, so its hot loop (streaming heuristic selection +
    // step: admission, indexed-calendar ops, backfill, metric folding)
    // must not touch the heap once the slab, calendar, running heap and
    // per-user table have warmed to their high-water marks. The job
    // source is a formula (no per-job state), arrivals are paced just
    // under the cluster's capacity so the queue depth is stationary. ----
    {
        use rlsched_sched::select_streaming;
        use rlsched_sim::StreamSession;
        let source = (0..10_000u32).map(|i| {
            rlsched_swf::Job::new(
                i + 1,
                i as f64 * 5.0,
                10.0 + (i as f64 * 37.0) % 100.0,
                1 + (i % 4),
                20.0 + (i as f64 * 53.0) % 150.0,
            )
            .with_user(i % 8)
        });
        let mut s = StreamSession::new(source, 32, SimConfig::with_backfill())
            .expect("synthetic stream is schedulable");
        // Warm: most of the episode, growing every buffer to its
        // high-water mark.
        while !s.done() && s.started_count() < 9_000 {
            let pos = select_streaming(rlsched_sched::HeuristicKind::Sjf, s.waiting())
                .expect("decision point has waiting jobs");
            s.step(pos).expect("synthetic stream replays cleanly");
        }
        let mut replay_ticks = 0u64;
        let mut replay_allocs = 0u64;
        while !s.done() && replay_ticks < 400 {
            replay_allocs += count_allocs(|| {
                let pos = select_streaming(rlsched_sched::HeuristicKind::Sjf, s.waiting())
                    .expect("decision point has waiting jobs");
                s.step(pos).expect("synthetic stream replays cleanly");
            });
            replay_ticks += 1;
        }
        assert!(
            replay_ticks >= 100,
            "enough replay ticks to be a real measurement ({replay_ticks})"
        );
        assert_eq!(
            replay_allocs, 0,
            "streaming replay tick must not allocate at steady state \
             ({replay_allocs} allocations over {replay_ticks} ticks)"
        );
    }

    // ---- greedy decision fast path: 0 allocations ----
    obs.clear();
    mask.clear();
    env.reset(4, &mut obs, &mut mask);
    let mut scratch = ActorScratch::new();
    let _ = agent.ppo().greedy_with(&obs, &mask, &mut scratch);
    let greedy_allocs = count_allocs(|| agent.ppo().greedy_with(&obs, &mask, &mut scratch));
    assert_eq!(greedy_allocs, 0, "greedy fast path must not allocate");

    // ---- PPO update, fused fast path: ZERO allocations at steady
    // state. The first call warms the minibatch gather buffers, the
    // per-layer activation stashes and the Adam moment state; every
    // later update must not touch the heap at all — the whole point of
    // the tape-free analytic backward. `update_fused` is pinned
    // directly so the bound holds regardless of the RLSCHED_FORCE_TAPE
    // dispatch arm CI sets. ----
    let mut envs: Vec<SchedulingEnv> = (0..4).map(|_| env.clone()).collect();
    let seeds: Vec<u64> = (0..4).collect();
    let (batch, _stats) = collect_rollouts(agent.ppo(), &mut envs, &seeds);
    let _ = agent
        .ppo_mut()
        .update_fused(&batch)
        .expect("kernel policy is fused-eligible"); // warm-up iteration
    let fused_allocs = count_allocs(|| {
        agent.ppo_mut().update_fused(&batch);
    });
    assert_eq!(
        fused_allocs, 0,
        "fused Ppo::update must not allocate at steady state \
         ({fused_allocs} allocations after warm-up)"
    );

    // ---- PPO update, sharded multi-core arm: ZERO allocations at
    // steady state on the inline (1-worker) path — per-chunk scratches,
    // the stitched diagnostics and the tree-merge all reuse persistent
    // buffers. Worker spawns allocate per fan-out by design, so the pin
    // runs under `with_threads(1)`: the bound isolates the sharded
    // arm's own buffer discipline from thread bring-up. ----
    let _ = rayon::with_threads(1, || agent.ppo_mut().update_fused_sharded(&batch))
        .expect("kernel policy is fused-eligible"); // warm-up iteration
    let sharded_allocs = count_allocs(|| {
        rayon::with_threads(1, || {
            agent.ppo_mut().update_fused_sharded(&batch);
        });
    });
    assert_eq!(
        sharded_allocs, 0,
        "sharded Ppo::update must not allocate at steady state on the \
         inline path ({sharded_allocs} allocations after warm-up)"
    );

    // ---- PPO update, tape fallback: bounded by the measured baseline ----
    let _ = agent.ppo_mut().update_tape(&batch); // warm graph pools + optimizer state
    let update_allocs = count_allocs(|| agent.ppo_mut().update_tape(&batch));
    // Measured baseline for this configuration (3+3 iterations,
    // minibatch 256) is ~200 allocations — op metadata (`SelectCols`
    // index vectors) and per-iteration gradient collections. The bound
    // leaves ~50% headroom for noise; a real regression (e.g. losing the
    // graph buffer pool) is an order of magnitude.
    assert!(
        update_allocs <= 300,
        "Ppo::update allocations regressed: {update_allocs} > 300"
    );

    // ---- rollout collection: with the per-step terms gone, a whole
    // 4-episode round must fit a small per-episode budget. The lockstep
    // VecEnv path replaced the per-env thread fan-out, so the bound
    // tightens from the historical 600 (measured ~561 on the old path)
    // to 400: what remains is per-episode RolloutBuffer growth plus the
    // one-time lockstep scratch, not per-step or per-thread work. ----
    let rollout_allocs = count_allocs(|| collect_rollouts(agent.ppo(), &mut envs, &seeds));
    assert!(
        rollout_allocs <= 400,
        "collect_rollouts allocations regressed: {rollout_allocs} > 400 \
         (per-step allocations must stay out of the lockstep loop)"
    );

    // ---- lockstep tick: VecEnv::step_all + batched actor/critic scoring
    // + per-row sampling must be allocation-free at steady state. All
    // episodes share one seq_len, so every slot finishes on the same
    // tick; measuring seq_len - 1 ticks from a fresh schedule stays clear
    // of the terminal/metrics work and any auto-reset. ----
    let mut venv = VecEnv::new((0..8).map(|_| env.clone()).collect::<Vec<_>>());
    let vec_seeds: Vec<u64> = (100..108).collect();
    let na = venv.n_actions();
    let mut scratch = ActorScratch::new();
    let (mut vobs, mut vmasks) = (Vec::new(), Vec::new());
    let (mut logps, mut values) = (Vec::new(), Vec::new());
    let mut actions: Vec<usize> = Vec::new();
    let mut outcomes = Vec::new();
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(17)
    };
    let tick = |venv: &mut VecEnv<SchedulingEnv>,
                vobs: &mut Vec<f32>,
                vmasks: &mut Vec<f32>,
                scratch: &mut ActorScratch,
                logps: &mut Vec<f32>,
                values: &mut Vec<f64>,
                actions: &mut Vec<usize>,
                outcomes: &mut Vec<rlsched_rl::SlotOutcome>,
                rng: &mut rand::rngs::StdRng| {
        let rows = venv.live_count();
        agent
            .ppo()
            .policy
            .log_probs_fast_batch(vobs, vmasks, rows, &mut scratch.nn, logps);
        agent
            .ppo()
            .value
            .value_fast_batch(vobs, rows, &mut scratch.nn, values);
        actions.clear();
        for r in 0..rows {
            let dist = MaskedCategorical::new(&logps[r * na..(r + 1) * na]);
            actions.push(dist.sample(rng));
        }
        venv.step_all(actions, vobs, vmasks, outcomes);
    };
    // Warm a full round over MORE seeds than slots (grows every buffer
    // to its high-water mark and exercises the auto-reset path, which
    // legitimately allocates reset-scale state), then restart with a
    // seeds == slots schedule so the measured window contains no
    // auto-reset: the measurement pins the steady-state tick only.
    let warm_seeds: Vec<u64> = (200..212).collect();
    venv.reset_all(&warm_seeds, &mut vobs, &mut vmasks);
    while !venv.is_done() {
        tick(
            &mut venv,
            &mut vobs,
            &mut vmasks,
            &mut scratch,
            &mut logps,
            &mut values,
            &mut actions,
            &mut outcomes,
            &mut rng,
        );
    }
    venv.reset_all(&vec_seeds, &mut vobs, &mut vmasks);
    let mut tick_allocs = 0u64;
    let mut ticks = 0u64;
    for _ in 0..SEQ_LEN - 1 {
        tick_allocs += count_allocs(|| {
            tick(
                &mut venv,
                &mut vobs,
                &mut vmasks,
                &mut scratch,
                &mut logps,
                &mut values,
                &mut actions,
                &mut outcomes,
                &mut rng,
            )
        });
        ticks += 1;
    }
    assert!(
        ticks >= 40,
        "enough lockstep ticks to be a real measurement"
    );
    assert_eq!(
        tick_allocs, 0,
        "VecEnv::step_all + batched scoring must not allocate at steady \
         state ({tick_allocs} allocations over {ticks} ticks of 8 envs)"
    );

    // ---- Agent::score_batch convenience path: with the thread-local
    // scratch, the only steady-state heap traffic is the returned Vec
    // itself (exactly one allocation per call). ----
    let jobs: Vec<rlsched_swf::Job> = (0..8)
        .map(|i| rlsched_swf::Job::new(i + 1, i as f64 * 10.0, 60.0 + i as f64, 1 + (i % 3), 600.0))
        .collect();
    let make_view = |lo: usize, hi: usize| QueueView {
        time: 200.0,
        free_procs: 3,
        total_procs: 8,
        waiting: jobs[lo..hi]
            .iter()
            .enumerate()
            .map(|(i, job)| WaitingJob {
                job,
                job_index: lo + i,
                wait: 200.0 - job.submit_time,
                can_run_now: job.procs() <= 3,
            })
            .collect(),
    };
    let views = [make_view(0, 3), make_view(2, 7), make_view(4, 8)];
    let _ = agent.score_batch(&views); // warm the thread-local buffers
    let batch_allocs = count_allocs(|| {
        std::hint::black_box(agent.score_batch(&views));
    });
    assert_eq!(
        batch_allocs, 1,
        "score_batch must only allocate its result Vec at steady state \
         ({batch_allocs} allocations)"
    );

    // ---- serving: a ShardEngine push+flush cycle (coalesce, one
    // batched forward, clamp) is allocation-free at steady state — the
    // same discipline as the infer/fused fast paths, now holding for
    // the serve tier's hot loop (hot-swap generation check included).
    // ----
    let slot = ScorerSlot::new(agent.scorer_snapshot());
    let mut engine = ShardEngine::new(slot, 8);
    let (mut row_obs, mut row_mask) = (Vec::new(), Vec::new());
    obs.clear();
    mask.clear();
    env.reset(5, &mut obs, &mut mask);
    row_obs.extend_from_slice(&obs);
    row_mask.extend_from_slice(&mask);
    for _ in 0..2 {
        for _ in 0..8 {
            engine.push_row(&row_obs, &row_mask, 3);
        }
        let _ = engine.flush(); // warm the stacked matrices + scratch
    }
    let engine_allocs = count_allocs(|| {
        for _ in 0..8 {
            engine.push_row(&row_obs, &row_mask, 3);
        }
        std::hint::black_box(engine.flush().len());
    });
    assert_eq!(
        engine_allocs, 0,
        "ShardEngine push+flush must not allocate at steady state \
         ({engine_allocs} allocations for an 8-row batch)"
    );

    // ---- telemetry recording: the whole point of rlsched-obs is that
    // instrumentation rides the hot paths for free, so every recording
    // primitive — counter inc, gauge set/set_max, striped histogram
    // record, and a *disabled* span guard — is pinned to exactly 0
    // allocations, and an *instrumented* ShardEngine keeps the
    // zero-allocation cycle pinned above. Registration allocates
    // (registry map entry); that happens once, outside the window. ----
    {
        use rlsched_obs::Registry;
        use rlsched_serve::EngineMetrics;
        let reg = Registry::new();
        let counter = reg.counter("alloc_pin_total", &[("k", "v")]);
        let gauge = reg.gauge("alloc_pin_depth", &[]);
        let ohist = reg.histogram("alloc_pin_ns", &[]);
        // Warm: first record on this thread claims its histogram
        // stripe, and the first span performs the process-wide one-time
        // init (the cached RLSCHED_TRACE read; plus, when tracing is
        // enabled, the preallocated trace ring). After that a span is
        // allocation-free on BOTH arms: disabled it never touches the
        // ring, enabled it writes a fixed-size record into preallocated
        // slots — so the 0-alloc pin below holds under RLSCHED_TRACE=1
        // too (CI runs that arm).
        counter.inc();
        gauge.set(1.0);
        ohist.record_value(500);
        {
            rlsched_obs::span!("alloc.warm");
        }
        let record_allocs = count_allocs(|| {
            for i in 0..64u64 {
                counter.inc();
                counter.add(3);
                gauge.set(i as f64);
                gauge.set_max(i as f64 * 2.0);
                ohist.record_value(1 + i * 997);
                rlsched_obs::span!("alloc.pin");
            }
        });
        assert_eq!(
            record_allocs, 0,
            "obs recording primitives must not allocate \
             ({record_allocs} allocations over 64 rounds)"
        );

        // Instrumented engine: same cycle as the pin above, now with
        // registry handles attached — still allocation-free.
        engine.instrument(EngineMetrics {
            rows: reg.counter("alloc_pin_rows_total", &[]),
            batches: reg.counter("alloc_pin_batches_total", &[]),
            batch_rows: reg.histogram("alloc_pin_batch_rows", &[]),
            batch_max: reg.gauge("alloc_pin_batch_max", &[]),
        });
        for _ in 0..8 {
            engine.push_row(&row_obs, &row_mask, 3);
        }
        let _ = engine.flush(); // warm the metric handles
        let inst_allocs = count_allocs(|| {
            for _ in 0..8 {
                engine.push_row(&row_obs, &row_mask, 3);
            }
            std::hint::black_box(engine.flush().len());
        });
        assert_eq!(
            inst_allocs, 0,
            "instrumented ShardEngine push+flush must not allocate at \
             steady state ({inst_allocs} allocations for an 8-row batch)"
        );
    }

    // ---- binary wire codec: a ScoreRaw encode + decode round trip is
    // allocation-free at steady state. The client encodes straight from
    // its borrowed observation slices into a reused wire buffer; the
    // reader decodes into a reused frame buffer and a reused Request
    // whose vectors have warmed to the row size. This is the whole
    // point of the binary format — no intermediate String, no
    // serde_json Value, no per-float parse — so pin it to exactly 0.
    // (Pure codec: no sockets or threads inside the counted window.)
    // ----
    {
        use rlsched_serve::protocol::{encode_score_raw_frame, read_frame_any_into};
        use rlsched_serve::{Request, WireFrame};
        let row_f32: Vec<f32> = obs.clone();
        let mask_f32: Vec<f32> = mask.clone();
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        let mut text_line = String::new();
        let mut decoded = Request::scratch();
        let cycle = |wire: &mut Vec<u8>,
                     payload: &mut Vec<u8>,
                     text_line: &mut String,
                     decoded: &mut Request| {
            encode_score_raw_frame(wire, 7, &row_f32, &mask_f32, 3);
            let mut reader = &wire[..];
            read_frame_any_into(&mut reader, payload, text_line, decoded)
                .expect("well-formed frame")
                .expect("frame present");
        };
        // Warm: grows the wire buffer, the payload buffer and the
        // decoded request's obs/mask vectors to this row shape.
        cycle(&mut wire, &mut payload, &mut text_line, &mut decoded);
        let codec_allocs = count_allocs(|| {
            for _ in 0..16 {
                cycle(&mut wire, &mut payload, &mut text_line, &mut decoded);
            }
        });
        assert_eq!(
            codec_allocs, 0,
            "binary ScoreRaw encode+decode must not allocate at steady \
             state ({codec_allocs} allocations over 16 round trips)"
        );
        match &decoded {
            Request::ScoreRaw {
                obs: got_obs,
                mask: got_mask,
                ..
            } => {
                assert_eq!(got_obs.len(), row_f32.len());
                assert_eq!(got_mask.len(), mask_f32.len());
            }
            other => panic!("wrong variant decoded: {other:?}"),
        }
    }

    // ---- degraded-mode hot path: when a shard is down, every request
    // still crosses the heuristic fallback decision and the per-request
    // health accounting (histogram record). A tier surviving a failure
    // storm must not trade the model's zero-allocation discipline for a
    // malloc-per-request fallback. ----
    use rlsched_sched::{select_parts, HeuristicKind};
    use rlsched_serve::LatencyHistogram;
    let parts: Vec<(f64, f64, u32)> = (0..16)
        .map(|i| {
            (
                i as f64 * 37.0,
                600.0 + (i % 5) as f64 * 120.0,
                1 + (i as u32 % 4),
            )
        })
        .collect();
    let mut hist = LatencyHistogram::new(); // new() allocates; record() must not
    hist.record(std::time::Duration::from_micros(3));
    let fallback_allocs = count_allocs(|| {
        for kind in [
            HeuristicKind::Fcfs,
            HeuristicKind::Sjf,
            HeuristicKind::Wfp3,
            HeuristicKind::Unicep,
        ] {
            std::hint::black_box(select_parts(kind, parts.iter().copied()));
        }
        hist.record(std::time::Duration::from_micros(7));
        std::hint::black_box(hist.quantile_ns(0.99));
    });
    assert_eq!(
        fallback_allocs, 0,
        "fallback scoring + health accounting must not allocate \
         ({fallback_allocs} allocations)"
    );
}
