//! Table IX microbenchmarks: scheduling-decision latency for 128 pending
//! jobs — SJF's sort-and-pick vs the RLScheduler DNN forward pass — plus
//! the MLP v1 baseline for architecture comparison.
//!
//! Every network decision is measured twice: through the autodiff tape
//! (`*_tape`, the seed's only path: fresh graph + parameter copies +
//! node bookkeeping per decision) and through the allocation-free
//! inference fast path (`*_fast`, `nn::infer` via `Agent::as_policy`
//! buffers). The gap between the two is the price of carrying training
//! machinery onto the serving path.

use criterion::{criterion_group, criterion_main, Criterion};

use rlsched_sched::{HeuristicKind, PriorityScheduler};
use rlsched_sim::{MetricKind, Policy, QueueView, WaitingJob};
use rlsched_swf::Job;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind};

fn decision_view(jobs: &[Job]) -> QueueView<'_> {
    QueueView {
        time: 5000.0,
        free_procs: 64,
        total_procs: 256,
        waiting: jobs
            .iter()
            .enumerate()
            .map(|(i, job)| WaitingJob {
                job,
                job_index: i,
                wait: 5000.0 - job.submit_time,
                can_run_now: job.procs() <= 64,
            })
            .collect(),
    }
}

fn pending_jobs(n: usize) -> Vec<Job> {
    (0..n as u32)
        .map(|i| {
            Job::new(
                i + 1,
                i as f64,
                30.0 + (i % 37) as f64 * 120.0,
                1 + i % 16,
                60.0 + (i % 29) as f64 * 180.0,
            )
        })
        .collect()
}

fn agent_of(kind: PolicyKind) -> Agent {
    Agent::new(AgentConfig {
        policy: kind,
        obs: ObsConfig {
            max_obsv: 128,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        seed: 1,
        ..AgentConfig::paper_default()
    })
}

fn bench_decisions(c: &mut Criterion) {
    let jobs = pending_jobs(128);
    let view = decision_view(&jobs);

    let mut group = c.benchmark_group("decision_128_jobs");
    let mut sjf = PriorityScheduler::new(HeuristicKind::Sjf);
    group.bench_function("sjf_sort_pick", |b| {
        b.iter(|| std::hint::black_box(sjf.select(&view)))
    });

    let kernel = agent_of(PolicyKind::Kernel);
    group.bench_function("rl_kernel_dnn_tape", |b| {
        b.iter(|| std::hint::black_box(kernel.greedy_select_tape(&view)))
    });
    group.bench_function("rl_kernel_dnn_fast", |b| {
        let mut policy = kernel.as_policy();
        b.iter(|| std::hint::black_box(policy.select(&view)))
    });

    let mlp = agent_of(PolicyKind::MlpV1);
    group.bench_function("rl_mlp_v1_dnn_tape", |b| {
        b.iter(|| std::hint::black_box(mlp.greedy_select_tape(&view)))
    });
    group.bench_function("rl_mlp_v1_dnn_fast", |b| {
        let mut policy = mlp.as_policy();
        b.iter(|| std::hint::black_box(policy.select(&view)))
    });

    // Batched multi-view scoring: 16 concurrent scheduling requests
    // through one forward, amortizing the weight stream (divide the
    // median by 16 for the per-decision cost).
    let views: Vec<_> = (0..16).map(|_| decision_view(&jobs)).collect();
    for (name, agent) in [
        ("rl_kernel_score_batch16", &kernel),
        ("rl_mlp_v1_score_batch16", &mlp),
    ] {
        group.bench_function(name, |b| {
            let (mut obs, mut mask) = (Vec::new(), Vec::new());
            let mut scratch = rlsched_rl::ActorScratch::new();
            let mut actions = Vec::new();
            b.iter(|| {
                agent.score_batch_with(&views, &mut obs, &mut mask, &mut scratch, &mut actions);
                std::hint::black_box(actions.len())
            })
        });
    }
    group.finish();
}

fn bench_queue_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_decision_vs_queue_len");
    let kernel = agent_of(PolicyKind::Kernel);
    for n in [16usize, 64, 128, 256] {
        let jobs = pending_jobs(n);
        let view = decision_view(&jobs);
        // Past MAX_OBSV (128) the cost must plateau: extra jobs are cut off.
        group.bench_function(format!("queue_{n}"), |b| {
            let mut policy = kernel.as_policy();
            b.iter(|| std::hint::black_box(policy.select(&view)))
        });
    }
    group.finish();
}

/// Short, CI-friendly measurement settings: these are latency gauges, not
/// regression-grade statistics.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
criterion_group! {name = benches; config = short_config(); targets = bench_decisions, bench_queue_scaling}
criterion_main!(benches);
