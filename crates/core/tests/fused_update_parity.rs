//! Fused ≡ tape update parity at the agent level: for every fused-eligible
//! Table IV architecture, `Ppo::update_fused` must reproduce
//! `Ppo::update_tape` **bit for bit** — per-parameter gradients (pinned
//! transitively through identical post-Adam weights), diagnostics, the
//! minibatch RNG stream, and whole multi-update training trajectories.
//! CI runs this suite on both kernel dispatch arms (default SIMD and
//! `RLSCHED_FORCE_SCALAR=1`), so the contract holds on each.

use rlsched_rl::{collect_rollouts, Batch, PpoConfig};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SchedulingEnv};

fn agent_for(kind: PolicyKind, max_obsv: usize, ppo: PpoConfig) -> Agent {
    Agent::new(AgentConfig {
        policy: kind,
        obs: ObsConfig {
            max_obsv,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo,
        seed: 11,
    })
}

/// One collected batch for a given agent (trajectory contents only
/// depend on the policy weights and seeds, which are fixed).
fn batch_for(agent: &Agent, episodes: usize, seq_len: usize) -> Batch {
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(512, 3));
    let mut envs: Vec<SchedulingEnv> = (0..episodes)
        .map(|_| {
            SchedulingEnv::new(
                trace.clone(),
                seq_len,
                SimConfig::default(),
                *agent.encoder(),
                agent.objective(),
            )
        })
        .collect();
    let seeds: Vec<u64> = (0..episodes as u64).collect();
    let (batch, _stats) = collect_rollouts(agent.ppo(), &mut envs, &seeds);
    batch
}

/// Run `updates` tape updates on one clone and `updates` fused updates on
/// another; every step's diagnostics and the final checkpoints must be
/// bit-identical.
fn assert_fused_matches_tape(kind: PolicyKind, ppo: PpoConfig, updates: usize, what: &str) {
    let proto = agent_for(kind, 16, ppo);
    let batch = batch_for(&proto, 4, 40);
    // Two identical clones with fresh optimizer state each.
    let mut tape = Agent::load_json(&proto.save_json()).expect("clone");
    let mut fused = Agent::load_json(&proto.save_json()).expect("clone");
    for step in 0..updates {
        let st = tape.ppo_mut().update_tape(&batch);
        let sf = fused
            .ppo_mut()
            .update_fused(&batch)
            .expect("architecture must be fused-eligible");
        assert_eq!(st, sf, "{what}: stats diverged at update {step}");
    }
    assert_eq!(
        tape.save_json(),
        fused.save_json(),
        "{what}: weights diverged after {updates} updates"
    );
}

#[test]
fn kernel_policy_fused_update_is_bit_identical() {
    // The paper's architecture, with a ragged (non-multiple-of-4/8)
    // minibatch so kernel row tails are exercised.
    let ppo = PpoConfig {
        train_pi_iters: 4,
        train_v_iters: 4,
        minibatch: Some(37),
        ..PpoConfig::default()
    };
    assert_fused_matches_tape(PolicyKind::Kernel, ppo, 3, "kernel, mb=37");
}

#[test]
fn flat_mlps_fused_update_is_bit_identical() {
    for (kind, what) in [
        (PolicyKind::MlpV1, "MLP v1"),
        (PolicyKind::MlpV2, "MLP v2"),
        (PolicyKind::MlpV3, "MLP v3"),
    ] {
        let ppo = PpoConfig {
            train_pi_iters: 3,
            train_v_iters: 3,
            minibatch: Some(53),
            ..PpoConfig::default()
        };
        assert_fused_matches_tape(kind, ppo, 2, what);
    }
}

#[test]
fn full_batch_and_entropy_bonus_match() {
    // No minibatching (the view borrows the whole batch) and a nonzero
    // entropy coefficient (the extra gradient term must accumulate in
    // the tape's order).
    let ppo = PpoConfig {
        train_pi_iters: 3,
        train_v_iters: 3,
        minibatch: None,
        ent_coef: 0.01,
        ..PpoConfig::default()
    };
    assert_fused_matches_tape(PolicyKind::Kernel, ppo, 2, "full batch + entropy");
}

#[test]
fn grad_clipping_matches() {
    let ppo = PpoConfig {
        train_pi_iters: 3,
        train_v_iters: 3,
        minibatch: Some(64),
        max_grad_norm: Some(0.05),
        ..PpoConfig::default()
    };
    assert_fused_matches_tape(PolicyKind::MlpV2, ppo, 2, "grad clip");
}

#[test]
fn lenet_has_no_fused_arm_and_dispatch_falls_back() {
    // The CNN baseline is not an MLP chain: update_fused must decline,
    // and the dispatching update must transparently produce the tape
    // result.
    let ppo = PpoConfig {
        train_pi_iters: 2,
        train_v_iters: 2,
        minibatch: Some(48),
        ..PpoConfig::default()
    };
    let proto = agent_for(PolicyKind::LeNet, 64, ppo);
    let batch = batch_for(&proto, 2, 24);
    let mut a = Agent::load_json(&proto.save_json()).expect("clone");
    let mut b = Agent::load_json(&proto.save_json()).expect("clone");
    assert!(
        a.ppo_mut().update_fused(&batch).is_none(),
        "LeNet must not claim fused support"
    );
    assert!(!a.ppo().fused_supported());
    let s1 = a.ppo_mut().update(&batch);
    let s2 = b.ppo_mut().update_tape(&batch);
    assert_eq!(s1, s2, "dispatching update must fall back to the tape");
    assert_eq!(a.save_json(), b.save_json());
}

#[test]
fn dispatching_update_takes_the_fused_path_bit_identically() {
    // `update()` (what training calls) must be indistinguishable from
    // the pinned arms: same stats, same weights.
    let ppo = PpoConfig {
        train_pi_iters: 4,
        train_v_iters: 4,
        minibatch: Some(96),
        ..PpoConfig::default()
    };
    let proto = agent_for(PolicyKind::Kernel, 16, ppo);
    let batch = batch_for(&proto, 4, 40);
    let mut auto = Agent::load_json(&proto.save_json()).expect("clone");
    let mut tape = Agent::load_json(&proto.save_json()).expect("clone");
    for _ in 0..3 {
        let sa = auto.ppo_mut().update(&batch);
        let st = tape.ppo_mut().update_tape(&batch);
        assert_eq!(sa, st, "dispatching update diverged from the tape arm");
    }
    assert_eq!(auto.save_json(), tape.save_json());
}
