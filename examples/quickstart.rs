//! Quickstart: train a small RLScheduler agent on a synthetic Lublin
//! workload, then compare it against the classic heuristics on held-out
//! job sequences.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rlsched_repro::core::prelude::*;
use rlsched_repro::sched::{HeuristicKind, PriorityScheduler};
use rlsched_repro::workload::NamedWorkload;

fn main() {
    // 1. A workload: 1 500 jobs from the Lublin-Feitelson model, calibrated
    //    to the paper's Table II moments (256-processor cluster).
    let trace = NamedWorkload::Lublin1.generate(1500, 42);
    println!(
        "workload: {} jobs on {} processors",
        trace.len(),
        trace.max_procs()
    );

    // 2. An agent: the paper's kernel-based policy network, shrunk a little
    //    (32 observable jobs, 10 epochs) so this example runs in ~a minute.
    let mut cfg = AgentConfig::paper_default();
    cfg.obs.max_obsv = 32;
    cfg.ppo.train_pi_iters = 15;
    cfg.ppo.train_v_iters = 15;
    cfg.ppo.minibatch = Some(512);
    let mut agent = Agent::new(cfg);
    println!(
        "policy parameters: {} (<1000, §IV-B1)",
        agent.policy_param_count()
    );

    // 3. Train toward minimizing average bounded slowdown.
    let train_cfg = TrainConfig {
        epochs: 10,
        trajectories_per_epoch: 12,
        seq_len: 128,
        sim: SimConfig::default(),
        filter: FilterMode::Off,
        seed: 7,
    };
    println!("\ntraining ({} epochs)…", train_cfg.epochs);
    let curve = train(&mut agent, &trace, &train_cfg);
    for e in &curve {
        println!("  epoch {:>2}: mean bsld {:>10.2}", e.epoch, e.mean_metric);
    }

    // 4. Evaluate on five held-out 256-job sequences — the *same* sequences
    //    for every scheduler, as the paper's protocol requires.
    let windows = sample_eval_windows(&trace, 5, 256, 99);
    println!("\nscheduling 5 held-out sequences of 256 jobs (avg bounded slowdown):");
    for kind in HeuristicKind::table3() {
        let mut sched = PriorityScheduler::new(kind);
        let results = evaluate_policy(&windows, SimConfig::default(), &mut sched);
        println!(
            "  {:<10} {:>10.2}",
            kind.name(),
            mean_metric(&results, MetricKind::BoundedSlowdown)
        );
    }
    let results = evaluate_policy(&windows, SimConfig::default(), &mut agent.as_policy());
    println!(
        "  {:<10} {:>10.2}",
        "RL",
        mean_metric(&results, MetricKind::BoundedSlowdown)
    );

    // 5. Persist the trained model (Table VII transfer-style usage).
    let json = agent.save_json();
    let restored = Agent::load_json(&json).expect("checkpoint is valid");
    let again = evaluate_policy(&windows, SimConfig::default(), &mut restored.as_policy());
    assert_eq!(
        mean_metric(&results, MetricKind::BoundedSlowdown),
        mean_metric(&again, MetricKind::BoundedSlowdown),
        "restored model schedules identically"
    );
    println!("\ncheckpoint round-trip OK ({} bytes of JSON)", json.len());
}
