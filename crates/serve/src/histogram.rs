//! Latency accounting. The log-linear [`LatencyHistogram`] started
//! life in this crate; it now lives in `rlsched-obs` (so the metrics
//! registry's concurrent histograms share the same bucket axis) and is
//! re-exported here unchanged — existing call sites keep compiling.

pub use rlsched_obs::LatencyHistogram;
