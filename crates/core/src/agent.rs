//! The RLScheduler agent: policy + value networks behind a PPO trainer,
//! with checkpointing and a [`rlsched_sim::Policy`] adapter so a trained
//! model schedules jobs exactly like any heuristic (Tables V–XI).

use serde::{Deserialize, Serialize};

use rlsched_rl::{greedy_batch, ActorScratch, PolicyModel, Ppo, PpoConfig};
use rlsched_sim::{MetricKind, Policy, QueueView, WaitingJob};

use crate::nets::{PackedScorer, PolicyKind, PolicyNet, ScorerSnapshot, ValueNet};
use crate::obs::{ObsConfig, ObsEncoder};
use crate::reward::Objective;

/// Everything needed to reconstruct an agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Policy architecture (Table IV).
    pub policy: PolicyKind,
    /// Observation encoding.
    pub obs: ObsConfig,
    /// The optimization goal the agent is trained for.
    pub metric: MetricKind,
    /// PPO hyperparameters.
    pub ppo: PpoConfig,
    /// Weight-initialization / update seed.
    pub seed: u64,
}

impl AgentConfig {
    /// The paper's default agent: kernel policy over 128 observable jobs,
    /// trained for average bounded slowdown.
    pub fn paper_default() -> Self {
        AgentConfig {
            policy: PolicyKind::Kernel,
            obs: ObsConfig::default(),
            metric: MetricKind::BoundedSlowdown,
            ppo: PpoConfig::default(),
            seed: 0,
        }
    }

    /// Same defaults with a different metric.
    pub fn for_metric(metric: MetricKind) -> Self {
        AgentConfig {
            metric,
            ..Self::paper_default()
        }
    }
}

/// A (possibly trained) RLScheduler agent.
pub struct Agent {
    cfg: AgentConfig,
    encoder: ObsEncoder,
    ppo: Ppo<PolicyNet, ValueNet>,
}

/// On-disk checkpoint layout.
#[derive(Serialize, Deserialize)]
struct Checkpoint {
    cfg: AgentConfig,
    policy: PolicyNet,
    value: ValueNet,
}

impl Agent {
    /// Fresh agent with randomly initialized networks.
    pub fn new(cfg: AgentConfig) -> Self {
        let encoder = ObsEncoder::new(cfg.obs);
        let mut ppo_cfg = cfg.ppo;
        ppo_cfg.update_seed = cfg.seed;
        let policy = PolicyNet::build(cfg.policy, cfg.obs.max_obsv, cfg.seed);
        let value = ValueNet::new(cfg.obs.max_obsv, cfg.seed.wrapping_add(1));
        let ppo = Ppo::new(policy, value, ppo_cfg);
        Agent { cfg, encoder, ppo }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.cfg
    }

    /// The observation encoder.
    pub fn encoder(&self) -> &ObsEncoder {
        &self.encoder
    }

    /// The objective derived from the configured metric.
    pub fn objective(&self) -> Objective {
        Objective::new(self.cfg.metric)
    }

    /// The underlying PPO trainer.
    pub fn ppo(&self) -> &Ppo<PolicyNet, ValueNet> {
        &self.ppo
    }

    /// Mutable access for the training loop.
    pub fn ppo_mut(&mut self) -> &mut Ppo<PolicyNet, ValueNet> {
        &mut self.ppo
    }

    /// Policy parameter count (Table IV / §IV-B1).
    pub fn policy_param_count(&self) -> usize {
        self.ppo.policy.param_count()
    }

    /// Inference entry point: greedy action for an already-encoded
    /// observation window, through the allocation-free fast path (no
    /// autodiff tape). Implemented for every Table IV `PolicyKind`.
    pub fn score(&self, obs: &[f32], mask: &[f32], scratch: &mut ActorScratch) -> usize {
        self.ppo.greedy_with(obs, mask, scratch)
    }

    /// Masking guarantees the chosen slot `< waiting.len()`; clamp
    /// defensively anyway (shared by every decision entry point).
    fn clamp_to_queue(view: &QueueView<'_>, a: usize) -> usize {
        a.min(view.waiting.len().saturating_sub(1))
    }

    /// Greedy (test-time) action for a raw queue view through
    /// caller-owned buffers: encode, score, clamp — the single decision
    /// path every other entry point delegates to.
    pub fn greedy_select_with(
        &self,
        view: &QueueView<'_>,
        obs: &mut Vec<f32>,
        mask: &mut Vec<f32>,
        scratch: &mut ActorScratch,
    ) -> usize {
        self.encoder.encode_into(view, obs, mask);
        Self::clamp_to_queue(view, self.score(obs, mask, scratch))
    }

    /// Greedy (test-time) action for a raw queue view. Allocates per
    /// call; scheduling loops should use [`Agent::as_policy`] (which
    /// carries its own buffers) or [`Agent::greedy_select_with`].
    pub fn greedy_select(&self, view: &QueueView<'_>) -> usize {
        self.greedy_select_with(
            view,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut ActorScratch::new(),
        )
    }

    /// Greedy actions for several concurrent queue views through **one**
    /// batched forward: the views stack into a `[views, obs_dim]` matrix,
    /// so the policy's weight stream is amortized across all of them —
    /// what a sharded scheduling server wants for simultaneous requests.
    /// The scoring runs through the same [`rlsched_rl::BatchPolicy`] path as training
    /// rollouts and greedy evaluation. All buffers are caller-owned; for
    /// the kernel and flat-MLP policies the call is allocation-free at
    /// steady state (the CNN has no batched forward and loops per view
    /// with a temporary row buffer). Since the forward kernels are
    /// row-count invariant, row `i` of `actions` is exactly
    /// [`Agent::score`] on view `i` alone.
    pub fn score_batch_with(
        &self,
        views: &[QueueView<'_>],
        obs: &mut Vec<f32>,
        mask: &mut Vec<f32>,
        scratch: &mut ActorScratch,
        actions: &mut Vec<usize>,
    ) {
        assert!(!views.is_empty(), "score_batch needs at least one view");
        obs.clear();
        mask.clear();
        for view in views {
            self.encoder.encode_extend(view, obs, mask);
        }
        self.ppo
            .greedy_batch_with(obs, mask, views.len(), scratch, actions);
        for (a, view) in actions.iter_mut().zip(views) {
            *a = Self::clamp_to_queue(view, *a);
        }
    }

    /// [`Agent::score_batch_with`] through thread-local reusable buffers:
    /// the convenience API pays the same zero-allocation discipline as
    /// the explicit-scratch variant — at steady state the only heap
    /// traffic per call is the returned `Vec` itself (pinned by the
    /// alloc-regression suite). Loops that can hold buffers should still
    /// prefer [`Agent::score_batch_with`], which also reuses the output.
    pub fn score_batch(&self, views: &[QueueView<'_>]) -> Vec<usize> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<(Vec<f32>, Vec<f32>, ActorScratch)> =
                std::cell::RefCell::new((Vec::new(), Vec::new(), ActorScratch::new()));
        }
        SCRATCH.with(|cell| {
            let (obs, mask, scratch) = &mut *cell.borrow_mut();
            let mut actions = Vec::with_capacity(views.len());
            self.score_batch_with(views, obs, mask, scratch, &mut actions);
            actions
        })
    }

    /// A frozen, `Arc`-shared scoring replica for serving tiers (see
    /// [`ScorerSnapshot`]): same per-architecture representation as
    /// [`Agent::as_policy`], so served decisions reproduce the policy
    /// adapter's bits exactly. Re-take after training; a live server
    /// hot-swaps the fresh snapshot in without dropping requests.
    pub fn scorer_snapshot(&self) -> ScorerSnapshot {
        ScorerSnapshot::new(
            &self.ppo.policy,
            self.encoder.obs_dim(),
            self.encoder.n_actions(),
        )
    }

    /// Greedy action through the full autodiff tape — the benchmark
    /// baseline the fast path is measured against (`decision_latency`).
    pub fn greedy_select_tape(&self, view: &QueueView<'_>) -> usize {
        let (obs, mask) = self.encoder.encode(view);
        Self::clamp_to_queue(view, self.ppo.greedy_tape(&obs, &mask))
    }

    /// Borrow the agent as a simulator policy (inference only). The
    /// returned policy owns encode and network scratch buffers, so
    /// repeated decisions allocate nothing. Flat-MLP policies also take a
    /// weight-transposed [`PackedScorer`] snapshot here (safe: the borrow
    /// freezes the agent's weights for the policy's lifetime) so their
    /// decisions run the cache-friendly transposed layout — through the
    /// same [`rlsched_rl::BatchPolicy`] scoring path as batch serving.
    pub fn as_policy(&self) -> RlPolicy<'_> {
        RlPolicy {
            agent: self,
            name: format!("RL-{}", self.cfg.metric.name()),
            scratch: ActorScratch::new(),
            obs: Vec::new(),
            mask: Vec::new(),
            packed: self.ppo.policy.packed_scorer(),
            actions: Vec::new(),
        }
    }

    /// Borrow the agent as a *streaming* decision head: the same frozen
    /// weights, packed-scorer fast path, and owned buffers as
    /// [`Agent::as_policy`], but fed straight from a waiting-job iterator
    /// (no [`QueueView`] is ever materialized) — what a one-pass
    /// trace-scale replay drives. Decisions are bit-identical to
    /// [`RlPolicy::select`] on the equivalent view: both funnel through
    /// the same encode loop and scoring kernels.
    pub fn stream_decider(&self) -> StreamDecider<'_> {
        StreamDecider {
            agent: self,
            scratch: ActorScratch::new(),
            obs: Vec::new(),
            mask: Vec::new(),
            packed: self.ppo.policy.packed_scorer(),
            actions: Vec::new(),
        }
    }

    /// Serialize configuration and weights to JSON.
    pub fn save_json(&self) -> String {
        let ckpt = Checkpoint {
            cfg: self.cfg.clone(),
            policy: self.ppo.policy.clone(),
            value: self.ppo.value.clone(),
        };
        serde_json::to_string(&ckpt).expect("agent serialization is infallible")
    }

    /// Restore an agent (fresh optimizer state) from [`Agent::save_json`]
    /// output.
    pub fn load_json(s: &str) -> Result<Agent, serde_json::Error> {
        let ckpt: Checkpoint = serde_json::from_str(s)?;
        let encoder = ObsEncoder::new(ckpt.cfg.obs);
        let mut ppo_cfg = ckpt.cfg.ppo;
        ppo_cfg.update_seed = ckpt.cfg.seed;
        let ppo = Ppo::new(ckpt.policy, ckpt.value, ppo_cfg);
        Ok(Agent {
            cfg: ckpt.cfg,
            encoder,
            ppo,
        })
    }
}

/// A trained agent plugged into the episode driver: selects greedily, no
/// exploration (§IV-B1's test path). Owns the encode and inference
/// buffers, so steady-state decisions are allocation-free. For flat-MLP
/// agents it also carries a weight-transposed [`PackedScorer`] snapshot
/// (taken while the agent borrow freezes the weights) and serves
/// decisions through it as 1-row [`rlsched_rl::BatchPolicy`] scoring calls.
pub struct RlPolicy<'a> {
    agent: &'a Agent,
    name: String,
    scratch: ActorScratch,
    obs: Vec<f32>,
    mask: Vec<f32>,
    packed: Option<PackedScorer>,
    actions: Vec<usize>,
}

impl Policy for RlPolicy<'_> {
    fn select(&mut self, view: &QueueView<'_>) -> usize {
        let Some(packed) = &self.packed else {
            return self.agent.greedy_select_with(
                view,
                &mut self.obs,
                &mut self.mask,
                &mut self.scratch,
            );
        };
        // Transposed-layout serving path: same encode, same masked
        // log-softmax tail, but the dense forwards read `[out, in]`
        // weights as contiguous dot products (NT kernel), batch size 1.
        // The packed accumulation order can differ from the tape's in
        // the last few ulps, so decisions match the unpacked path except
        // on floating-point near-ties.
        self.agent
            .encoder
            .encode_into(view, &mut self.obs, &mut self.mask);
        greedy_batch(
            packed,
            &self.obs,
            &self.mask,
            1,
            &mut self.scratch,
            &mut self.actions,
        );
        Agent::clamp_to_queue(view, self.actions[0])
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A trained agent's decision head for streaming replay: encodes a
/// decision point directly from a waiting-job iterator and scores it
/// greedily, reusing owned buffers so steady-state decisions are
/// allocation-free. Mirrors [`RlPolicy::select`] bit for bit (same
/// encoder loop, same packed/unpacked scoring split, same clamp).
pub struct StreamDecider<'a> {
    agent: &'a Agent,
    scratch: ActorScratch,
    obs: Vec<f32>,
    mask: Vec<f32>,
    packed: Option<PackedScorer>,
    actions: Vec<usize>,
}

impl StreamDecider<'_> {
    /// Pick a queue rank for one decision point. `queue_len` must be the
    /// number of jobs `waiting` yields (FCFS order, as the simulator
    /// streams them).
    pub fn decide<'j>(
        &mut self,
        free_procs: u32,
        total_procs: u32,
        queue_len: usize,
        waiting: impl Iterator<Item = WaitingJob<'j>>,
    ) -> usize {
        self.obs.clear();
        self.mask.clear();
        self.agent.encoder.encode_jobs_extend(
            free_procs,
            total_procs,
            queue_len,
            waiting,
            &mut self.obs,
            &mut self.mask,
        );
        let action = match &self.packed {
            Some(packed) => {
                greedy_batch(
                    packed,
                    &self.obs,
                    &self.mask,
                    1,
                    &mut self.scratch,
                    &mut self.actions,
                );
                self.actions[0]
            }
            None => self.agent.score(&self.obs, &self.mask, &mut self.scratch),
        };
        action.min(queue_len.saturating_sub(1))
    }

    /// Name tag matching the policy adapter's.
    pub fn metric_name(&self) -> &'static str {
        self.agent.cfg.metric.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_sim::{run_episode, SimConfig};
    use rlsched_swf::{Job, JobTrace};

    fn small_cfg() -> AgentConfig {
        AgentConfig {
            policy: PolicyKind::Kernel,
            obs: ObsConfig {
                max_obsv: 8,
                ..ObsConfig::default()
            },
            metric: MetricKind::BoundedSlowdown,
            ppo: PpoConfig::default(),
            seed: 7,
        }
    }

    fn toy_trace() -> JobTrace {
        let jobs = (0..30u32)
            .map(|i| {
                Job::new(
                    i + 1,
                    i as f64 * 20.0,
                    50.0 + (i % 4) as f64 * 200.0,
                    1 + (i % 3),
                    900.0,
                )
            })
            .collect();
        JobTrace::new(jobs, 4)
    }

    #[test]
    fn fresh_agent_schedules_a_trace() {
        let agent = Agent::new(small_cfg());
        let mut policy = agent.as_policy();
        let m = run_episode(&toy_trace(), SimConfig::default(), &mut policy).unwrap();
        assert_eq!(m.outcomes().len(), 30);
    }

    #[test]
    fn save_load_round_trip_preserves_decisions() {
        let agent = Agent::new(small_cfg());
        let json = agent.save_json();
        let loaded = Agent::load_json(&json).unwrap();
        let t = toy_trace();
        let m1 = run_episode(&t, SimConfig::default(), &mut agent.as_policy()).unwrap();
        let m2 = run_episode(&t, SimConfig::default(), &mut loaded.as_policy()).unwrap();
        assert_eq!(m1, m2, "loaded agent must schedule identically");
    }

    #[test]
    fn greedy_is_deterministic_across_calls() {
        let agent = Agent::new(small_cfg());
        let t = toy_trace();
        let a = run_episode(&t, SimConfig::with_backfill(), &mut agent.as_policy()).unwrap();
        let b = run_episode(&t, SimConfig::with_backfill(), &mut agent.as_policy()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn policy_name_reflects_metric() {
        let agent = Agent::new(AgentConfig {
            metric: MetricKind::Utilization,
            obs: ObsConfig {
                max_obsv: 8,
                ..ObsConfig::default()
            },
            ..AgentConfig::paper_default()
        });
        assert_eq!(agent.as_policy().name(), "RL-util");
    }

    #[test]
    fn paper_default_matches_section_4() {
        let cfg = AgentConfig::paper_default();
        assert_eq!(cfg.obs.max_obsv, 128);
        assert_eq!(cfg.policy, PolicyKind::Kernel);
        let agent = Agent::new(cfg);
        assert!(agent.policy_param_count() < 1000);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Agent::load_json("{}").is_err());
    }

    #[test]
    fn stream_decider_matches_policy_adapter() {
        // Every architecture, including the packed flat-MLP path: the
        // streaming decision head must pick the same slot as RlPolicy on
        // the equivalent materialized view, for a full replayed episode.
        use rlsched_sim::{SchedSession, StreamSession};
        for kind in PolicyKind::all() {
            let mut cfg = AgentConfig {
                policy: kind,
                ..small_cfg()
            };
            if kind == PolicyKind::LeNet {
                // The CNN needs the full-size observation window.
                cfg.obs.max_obsv = 64;
            }
            let agent = Agent::new(cfg);
            let t = toy_trace();
            let mut sess = SchedSession::new(&t, SimConfig::with_backfill()).unwrap();
            let mut policy = agent.as_policy();
            let mut stream = StreamSession::new(
                t.jobs().iter().cloned(),
                t.max_procs(),
                SimConfig::with_backfill(),
            )
            .unwrap()
            .with_outcome_log();
            let mut decider = agent.stream_decider();
            while !sess.done() {
                let view = sess.view();
                let a = policy.select(&view);
                let b = decider.decide(
                    stream.free_procs(),
                    stream.total_procs(),
                    stream.queue_len(),
                    stream.waiting(),
                );
                assert_eq!(a, b, "{kind:?} diverged at t={}", sess.time());
                sess.step(a).unwrap();
                stream.step(b).unwrap();
            }
            assert!(stream.done());
            assert_eq!(
                sess.metrics().unwrap(),
                stream.log_metrics().unwrap(),
                "{kind:?} episode metrics diverged"
            );
        }
    }
}
