//! End-to-end RL integration: training improves scheduling, models
//! transfer through checkpoints, and the trained policy plugs into the
//! same evaluation protocol as the heuristics.

use rlsched_repro::core::prelude::*;
use rlsched_repro::sched::RandomPolicy;
use rlsched_repro::workload::NamedWorkload;

fn small_agent(seed: u64) -> Agent {
    let mut cfg = AgentConfig::paper_default();
    cfg.obs.max_obsv = 16;
    cfg.ppo.train_pi_iters = 12;
    cfg.ppo.train_v_iters = 12;
    cfg.ppo.minibatch = Some(384);
    cfg.seed = seed;
    Agent::new(cfg)
}

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        trajectories_per_epoch: 10,
        seq_len: 64,
        sim: SimConfig::default(),
        filter: FilterMode::Off,
        seed: 31,
        n_envs: 8,
        n_threads: 1,
    }
}

#[test]
fn trained_agent_beats_its_untrained_self() {
    let trace = NamedWorkload::Lublin2.generate(1200, 21);
    let windows = sample_eval_windows(&trace, 4, 128, 77);

    let untrained = small_agent(5);
    let before = mean_metric(
        &evaluate_policy(&windows, SimConfig::default(), &mut untrained.as_policy()),
        MetricKind::BoundedSlowdown,
    );

    let mut agent = small_agent(5);
    train(&mut agent, &trace, &train_cfg(10));
    let after = mean_metric(
        &evaluate_policy(&windows, SimConfig::default(), &mut agent.as_policy()),
        MetricKind::BoundedSlowdown,
    );

    assert!(
        after < before,
        "training should improve eval bsld: before {before:.2}, after {after:.2}"
    );
}

#[test]
fn trained_agent_beats_random() {
    let trace = NamedWorkload::Lublin2.generate(1200, 22);
    let windows = sample_eval_windows(&trace, 4, 128, 78);
    let mut agent = small_agent(6);
    train(&mut agent, &trace, &train_cfg(10));
    let rl = mean_metric(
        &evaluate_policy(&windows, SimConfig::default(), &mut agent.as_policy()),
        MetricKind::BoundedSlowdown,
    );
    let rnd = mean_metric(
        &evaluate_policy(&windows, SimConfig::default(), &mut RandomPolicy::new(9)),
        MetricKind::BoundedSlowdown,
    );
    assert!(rl < rnd, "RL ({rl:.2}) should beat Random ({rnd:.2})");
}

#[test]
fn checkpoint_transfer_matches_original_everywhere() {
    // The Table VII mechanism: a model trained on X is serialized and
    // applied to trace Y; the loaded copy must act identically.
    let train_trace = NamedWorkload::Lublin1.generate(800, 23);
    let mut agent = small_agent(7);
    train(&mut agent, &train_trace, &train_cfg(4));

    let loaded = Agent::load_json(&agent.save_json()).expect("valid checkpoint");
    for target in [NamedWorkload::Lublin2, NamedWorkload::SdscSp2] {
        let trace = target.generate(500, 24);
        let windows = sample_eval_windows(&trace, 3, 100, 50);
        let a = evaluate_policy(&windows, SimConfig::with_backfill(), &mut agent.as_policy());
        let b = evaluate_policy(
            &windows,
            SimConfig::with_backfill(),
            &mut loaded.as_policy(),
        );
        assert_eq!(a, b, "transfer decisions differ on {}", target.name());
    }
}

#[test]
fn training_is_reproducible() {
    let trace = NamedWorkload::Lublin2.generate(600, 25);
    let mut a = small_agent(8);
    let ca = train(&mut a, &trace, &train_cfg(3));
    let mut b = small_agent(8);
    let cb = train(&mut b, &trace, &train_cfg(3));
    let ma: Vec<f64> = ca.iter().map(|e| e.mean_metric).collect();
    let mb: Vec<f64> = cb.iter().map(|e| e.mean_metric).collect();
    assert_eq!(ma, mb, "same seeds must give the same curve");
    // And the resulting policies act identically.
    let windows = sample_eval_windows(&trace, 2, 80, 51);
    assert_eq!(
        evaluate_policy(&windows, SimConfig::default(), &mut a.as_policy()),
        evaluate_policy(&windows, SimConfig::default(), &mut b.as_policy())
    );
}

#[test]
fn training_yields_bit_identical_params_for_identical_seeds() {
    // The SIMD-training-path determinism contract: with the same seed,
    // two training runs must produce *bit-identical* trained parameters
    // and episode metrics — on whichever kernel dispatch arm is active
    // (CI runs the suite on both: default, and RLSCHED_FORCE_SCALAR=1).
    // Dispatch is decided once per process from CPU features, never from
    // data, and the rayon matmul split uses fixed-size chunks, so thread
    // scheduling cannot perturb a single bit.
    let trace = NamedWorkload::Lublin1.generate(600, 27);
    let mut a = small_agent(9);
    let ca = train(&mut a, &trace, &train_cfg(3));
    let mut b = small_agent(9);
    let cb = train(&mut b, &trace, &train_cfg(3));
    assert_eq!(
        a.save_json(),
        b.save_json(),
        "trained checkpoints (policy + value weights) must be bit-identical"
    );
    let ma: Vec<f64> = ca.iter().map(|e| e.mean_metric).collect();
    let mb: Vec<f64> = cb.iter().map(|e| e.mean_metric).collect();
    assert_eq!(ma, mb, "per-epoch episode metrics must be bit-identical");
}

#[test]
fn fairness_objective_trains_and_reports() {
    let trace = NamedWorkload::Hpc2n.generate(800, 26);
    let mut cfg = AgentConfig::for_metric(MetricKind::FairMaxBoundedSlowdown);
    cfg.obs.max_obsv = 16;
    cfg.ppo.train_pi_iters = 8;
    cfg.ppo.train_v_iters = 8;
    let mut agent = Agent::new(cfg);
    let curve = train(&mut agent, &trace, &train_cfg(3));
    assert_eq!(curve.len(), 3);
    for e in &curve {
        assert!(e.mean_metric >= 1.0, "max per-user bsld is at least 1");
    }
    // Evaluation exposes the per-user aggregation.
    let windows = sample_eval_windows(&trace, 2, 100, 52);
    let results = evaluate_policy(&windows, SimConfig::default(), &mut agent.as_policy());
    for m in &results {
        assert!(m.max_user_bounded_slowdown() >= m.avg_bounded_slowdown() - 1e-9);
    }
}
