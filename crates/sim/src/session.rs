//! The gym-style scheduling session: the heart of SchedGym.
//!
//! One [`SchedSession`] replays one job sequence ("episode" in RL terms).
//! The control flow mirrors the reference environment of the paper:
//!
//! 1. Virtual time starts at the first job's submission; arrivals enter the
//!    wait queue in submit order.
//! 2. Whenever the wait queue is non-empty the caller picks one waiting job
//!    ([`SchedSession::step`]).
//! 3. If the job fits it starts immediately. Otherwise it becomes the
//!    *reservation*: time advances through completion/arrival events until
//!    the job fits, and — with [`BackfillMode::Easy`] — queued jobs that
//!    finish (by their *requested* runtime) before the reservation's
//!    estimated start are backfilled in FCFS order.
//! 4. The episode is done when every job has started; completion times then
//!    follow deterministically from actual runtimes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rlsched_swf::{Job, JobTrace};

use crate::calendar::{IndexedQueue, LinearQueue, QueueBackend};
use crate::error::SimError;
use crate::metrics::{EpisodeMetrics, JobOutcome};
use crate::policy::{QueueView, WaitingJob};

/// Whether the simulator backfills around a blocked reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum BackfillMode {
    /// No backfilling: while the selected job waits for resources, the queue
    /// simply waits with it.
    #[default]
    None,
    /// EASY backfilling: queued jobs may start out of order if, by their
    /// requested runtimes, they cannot delay the reserved job's estimated
    /// start (§II-A4 of the paper).
    Easy,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct SimConfig {
    /// Backfilling mode. The paper evaluates every scheduler both with and
    /// without backfilling (Tables V–XI).
    pub backfill: BackfillMode,
}

impl SimConfig {
    /// Configuration with EASY backfilling enabled.
    pub fn with_backfill() -> Self {
        SimConfig {
            backfill: BackfillMode::Easy,
        }
    }

    /// Configuration without backfilling.
    pub fn no_backfill() -> Self {
        SimConfig {
            backfill: BackfillMode::None,
        }
    }
}

/// A running job, ordered by its *actual* completion time (simulator-private
/// knowledge). Shared with the streaming session, whose event loop must
/// order completions identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RunningJob {
    pub(crate) end_time: f64,
    /// Estimated completion per the user's request — what EASY uses.
    pub(crate) est_end_time: f64,
    pub(crate) job_index: usize,
    pub(crate) procs: u32,
}

impl Eq for RunningJob {}

impl Ord for RunningJob {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap pops the earliest completion first;
        // tie-break on job index for determinism.
        other
            .end_time
            .partial_cmp(&self.end_time)
            .expect("finite end times")
            .then_with(|| other.job_index.cmp(&self.job_index))
    }
}

impl PartialOrd for RunningJob {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One scheduling episode over a job sequence.
///
/// Generic over the wait-queue backend: the default [`IndexedQueue`] keeps
/// rank addressing O(log n) at trace-scale queue depths, while
/// [`LinearSession`] pins the seed `Vec` behavior for parity tests. Both
/// produce bit-identical trajectories.
#[derive(Debug, Clone)]
pub struct SchedSession<Q: QueueBackend = IndexedQueue> {
    jobs: Vec<Job>,
    total_procs: u32,
    cfg: SimConfig,

    time: f64,
    free_procs: u32,
    next_arrival: usize,
    /// Wait queue in arrival (FCFS) order, as indices into `jobs`.
    queue: Q,
    running: BinaryHeap<RunningJob>,
    /// `start[i]` is `Some(t)` once job `i` has started.
    start_times: Vec<Option<f64>>,
    scheduled: usize,
    /// Reused scratch for `estimated_start`'s release schedule, so
    /// blocked-reservation steps stay allocation-free.
    release_buf: Vec<(f64, u32)>,
}

/// A session on the seed `Vec` wait queue — the calendar-parity reference.
pub type LinearSession = SchedSession<LinearQueue>;

impl SchedSession {
    /// Start an episode over `trace` with the default indexed wait queue.
    /// The trace is sanitized and clamped to the cluster size so every job
    /// is schedulable.
    pub fn new(trace: &JobTrace, cfg: SimConfig) -> Result<Self, SimError> {
        Self::with_queue(trace, cfg)
    }
}

impl<Q: QueueBackend> SchedSession<Q> {
    /// Start an episode over `trace` on an explicit queue backend.
    pub fn with_queue(trace: &JobTrace, cfg: SimConfig) -> Result<Self, SimError> {
        let trace = trace.sanitized().clamp_to_cluster();
        if trace.is_empty() {
            return Err(SimError::EmptyTrace);
        }
        let total_procs = trace.max_procs();
        for (i, j) in trace.jobs().iter().enumerate() {
            if j.procs() > total_procs {
                return Err(SimError::JobTooLarge {
                    job_index: i,
                    procs: j.procs(),
                    cluster: total_procs,
                });
            }
        }
        let jobs = trace.jobs().to_vec();
        let n = jobs.len();
        let first_arrival = jobs[0].submit_time;
        let mut s = SchedSession {
            jobs,
            total_procs,
            cfg,
            time: first_arrival,
            free_procs: total_procs,
            next_arrival: 0,
            queue: Q::with_capacity(n.min(1024)),
            running: BinaryHeap::with_capacity(64),
            start_times: vec![None; n],
            scheduled: 0,
            // Sized with the running heap so the first blocked-reservation
            // step doesn't have to grow it mid-episode.
            release_buf: Vec::with_capacity(64),
        };
        s.absorb_arrivals();
        s.advance_to_decision();
        Ok(s)
    }

    /// Current virtual time (seconds from episode start).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Processors currently idle.
    pub fn free_procs(&self) -> u32 {
        self.free_procs
    }

    /// Total processors in the cluster.
    pub fn total_procs(&self) -> u32 {
        self.total_procs
    }

    /// Number of jobs in the episode.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Jobs scheduled (started) so far.
    pub fn scheduled_count(&self) -> usize {
        self.scheduled
    }

    /// True once every job has been started.
    pub fn done(&self) -> bool {
        self.scheduled == self.jobs.len()
    }

    /// Number of jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Access a job record by its trace index.
    pub fn job(&self, index: usize) -> &Job {
        &self.jobs[index]
    }

    /// The waiting jobs as a policy would see them, in FCFS order,
    /// without materializing a [`QueueView`] — the allocation-free way to
    /// walk the queue each decision (observation encoders stream this
    /// straight into their buffers).
    pub fn waiting_jobs(&self) -> impl Iterator<Item = WaitingJob<'_>> + '_ {
        self.queue.iter().map(move |i| {
            let job = &self.jobs[i];
            WaitingJob {
                job,
                job_index: i,
                wait: self.time - job.submit_time,
                can_run_now: job.procs() <= self.free_procs,
            }
        })
    }

    /// A policy-facing snapshot of the current decision point. Allocates
    /// the waiting vector; per-step hot paths should iterate
    /// [`SchedSession::waiting_jobs`] instead.
    pub fn view(&self) -> QueueView<'_> {
        QueueView {
            time: self.time,
            free_procs: self.free_procs,
            total_procs: self.total_procs,
            waiting: self.waiting_jobs().collect(),
        }
    }

    /// Pull every arrival with `submit_time <= self.time` into the queue.
    fn absorb_arrivals(&mut self) {
        while self.next_arrival < self.jobs.len()
            && self.jobs[self.next_arrival].submit_time <= self.time
        {
            self.queue.push_back(self.next_arrival);
            self.next_arrival += 1;
        }
    }

    /// Advance through events until a decision is pending (a job waits in
    /// the queue) or the episode is done. Between decisions the simulator
    /// needs no scheduler: running jobs complete and arrivals accumulate.
    fn advance_to_decision(&mut self) {
        while self.queue.is_empty() && !self.done() {
            let advanced = self.advance_one_event();
            debug_assert!(advanced, "undone episode must still have pending arrivals");
            if !advanced {
                break;
            }
        }
    }

    /// Start `job_index` at the current time.
    fn start_job(&mut self, job_index: usize) {
        let job = &self.jobs[job_index];
        let procs = job.procs();
        debug_assert!(
            procs <= self.free_procs,
            "start_job must only run when the job fits"
        );
        self.free_procs -= procs;
        self.running.push(RunningJob {
            end_time: self.time + job.actual_runtime(),
            est_end_time: self.time + job.time_bound(),
            job_index,
            procs,
        });
        self.start_times[job_index] = Some(self.time);
        self.scheduled += 1;
        debug_assert!(self.free_procs <= self.total_procs);
    }

    /// Advance to the next event (earliest of: next completion, next
    /// arrival), process everything at that instant, completions first so
    /// the freed processors are visible to same-instant arrivals.
    ///
    /// Returns `false` when no event remains (queue drained, nothing
    /// running, no future arrivals).
    fn advance_one_event(&mut self) -> bool {
        let next_completion = self.running.peek().map(|r| r.end_time);
        let next_arrival = self.jobs.get(self.next_arrival).map(|j| j.submit_time);
        let t = match (next_completion, next_arrival) {
            (Some(c), Some(a)) => c.min(a),
            (Some(c), None) => c,
            (None, Some(a)) => a,
            (None, None) => return false,
        };
        self.time = self.time.max(t);
        while let Some(r) = self.running.peek() {
            if r.end_time <= self.time {
                let r = self.running.pop().expect("peeked entry exists");
                self.free_procs += r.procs;
                debug_assert!(self.free_procs <= self.total_procs);
            } else {
                break;
            }
        }
        self.absorb_arrivals();
        true
    }

    /// Estimated earliest start time of the job at `job_index`, assuming
    /// running jobs release their processors at their *requested*
    /// completion times. This is the EASY "shadow time": backfilled jobs
    /// must finish (by request) before it. Uses the session's reusable
    /// release buffer, so repeated blocked steps allocate nothing.
    fn estimated_start(&mut self, job_index: usize) -> f64 {
        let needed = self.jobs[job_index].procs();
        if needed <= self.free_procs {
            return self.time;
        }
        let mut releases = std::mem::take(&mut self.release_buf);
        releases.clear();
        releases.extend(self.running.iter().map(|r| (r.est_end_time, r.procs)));
        // Unstable sort (no allocation); ties on time yield the same
        // shadow value regardless of their relative order.
        releases.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite estimates"));
        let mut free = self.free_procs;
        let mut shadow = None;
        for &(t, p) in &releases {
            free += p;
            if free >= needed {
                shadow = Some(t);
                break;
            }
        }
        self.release_buf = releases;
        // The fallback is unreachable for clamped traces (every job fits
        // in an empty cluster), but stay total: never before all running
        // jobs end.
        shadow.unwrap_or_else(|| {
            self.running
                .iter()
                .map(|r| r.est_end_time)
                .fold(self.time, f64::max)
        })
    }

    /// EASY backfilling pass: start queued jobs (FCFS order) that fit now
    /// and whose *requested* completion does not cross `shadow_start`.
    fn backfill_pass(&mut self, shadow_start: f64) {
        loop {
            let mut started_any = false;
            let mut rank = 0;
            while rank < self.queue.len() {
                let job_index = self.queue.get(rank).expect("rank < len");
                let job = &self.jobs[job_index];
                let fits = job.procs() <= self.free_procs;
                let finishes_in_hole = self.time + job.time_bound() <= shadow_start;
                if fits && finishes_in_hole {
                    self.queue.remove_at(rank);
                    self.start_job(job_index);
                    started_any = true;
                    // continue at the same rank: the tail shifted into it
                } else {
                    rank += 1;
                }
            }
            if !started_any {
                break;
            }
        }
    }

    /// Schedule the waiting job at queue position `pos` (FCFS order view).
    ///
    /// On return the selected job has started; virtual time may have
    /// advanced past arrivals and completions, and (with EASY) other queued
    /// jobs may have been backfilled.
    pub fn step(&mut self, pos: usize) -> Result<(), SimError> {
        if self.queue.is_empty() {
            return Err(SimError::EmptyQueue);
        }
        if pos >= self.queue.len() {
            return Err(SimError::BadQueuePosition {
                pos,
                queue_len: self.queue.len(),
            });
        }
        let job_index = self.queue.remove_at(pos);

        if self.jobs[job_index].procs() <= self.free_procs {
            self.start_job(job_index);
        } else {
            // The selected job becomes the reservation; compute its shadow
            // start once from requested runtimes, as EASY does.
            let shadow = self.estimated_start(job_index);
            while self.jobs[job_index].procs() > self.free_procs {
                if self.cfg.backfill == BackfillMode::Easy {
                    self.backfill_pass(shadow);
                }
                if self.jobs[job_index].procs() <= self.free_procs {
                    break;
                }
                let advanced = self.advance_one_event();
                debug_assert!(
                    advanced || self.jobs[job_index].procs() <= self.free_procs,
                    "reserved job must eventually fit: events exhausted while blocked"
                );
                if !advanced {
                    break;
                }
            }
            self.start_job(job_index);
        }

        // Move on to the next decision point (or to completion).
        self.advance_to_decision();
        Ok(())
    }

    /// Final metrics; errors until [`SchedSession::done`].
    pub fn metrics(&self) -> Result<EpisodeMetrics, SimError> {
        if !self.done() {
            return Err(SimError::NotDone {
                scheduled: self.scheduled,
                total: self.jobs.len(),
            });
        }
        let outcomes = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let start = self.start_times[i].expect("done implies every job started");
                JobOutcome {
                    job_index: i,
                    submit: j.submit_time,
                    start,
                    end: start + j.actual_runtime(),
                    procs: j.procs(),
                    user: j.user_id,
                }
            })
            .collect();
        Ok(EpisodeMetrics::new(outcomes, self.total_procs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_swf::Job;

    fn trace(jobs: Vec<Job>, procs: u32) -> JobTrace {
        JobTrace::new(jobs, procs)
    }

    /// Always schedule the head of the queue (FCFS).
    fn run_fcfs(t: &JobTrace, cfg: SimConfig) -> EpisodeMetrics {
        let mut s = SchedSession::new(t, cfg).unwrap();
        while !s.done() {
            s.step(0).unwrap();
        }
        s.metrics().unwrap()
    }

    #[test]
    fn empty_trace_is_rejected() {
        assert_eq!(
            SchedSession::new(&trace(vec![], 4), SimConfig::default()).unwrap_err(),
            SimError::EmptyTrace
        );
    }

    #[test]
    fn single_job_runs_at_submit() {
        let t = trace(vec![Job::new(1, 5.0, 100.0, 2, 100.0)], 4);
        let m = run_fcfs(&t, SimConfig::default());
        let o = m.outcomes()[0];
        assert_eq!(o.submit, 5.0);
        assert_eq!(o.start, 5.0);
        assert_eq!(o.end, 105.0);
    }

    #[test]
    fn sequential_when_cluster_full() {
        // Two jobs each needing the whole cluster, submitted together.
        let t = trace(
            vec![
                Job::new(1, 0.0, 100.0, 4, 100.0),
                Job::new(2, 0.0, 50.0, 4, 50.0),
            ],
            4,
        );
        let m = run_fcfs(&t, SimConfig::default());
        assert_eq!(m.outcomes()[0].start, 0.0);
        assert_eq!(m.outcomes()[1].start, 100.0);
        assert_eq!(m.outcomes()[1].wait(), 100.0);
    }

    #[test]
    fn parallel_when_cluster_fits_both() {
        let t = trace(
            vec![
                Job::new(1, 0.0, 100.0, 2, 100.0),
                Job::new(2, 0.0, 50.0, 2, 50.0),
            ],
            4,
        );
        let m = run_fcfs(&t, SimConfig::default());
        assert_eq!(m.outcomes()[0].start, 0.0);
        assert_eq!(m.outcomes()[1].start, 0.0);
    }

    #[test]
    fn idle_gap_is_skipped() {
        let t = trace(
            vec![
                Job::new(1, 0.0, 10.0, 1, 10.0),
                Job::new(2, 1000.0, 10.0, 1, 10.0),
            ],
            4,
        );
        let m = run_fcfs(&t, SimConfig::default());
        assert_eq!(m.outcomes()[1].start, 1000.0);
        assert_eq!(m.outcomes()[1].wait(), 0.0);
    }

    #[test]
    fn without_backfill_small_job_waits_behind_reservation() {
        // t=0: job A (3 procs, 100s) starts, 1 proc stays free. B needs all
        // 4 procs -> blocked until t=100. Small job C (1 proc, 5s) arrives
        // at t=1 and fits, but without backfilling it must wait behind B.
        let t = trace(
            vec![
                Job::new(1, 0.0, 100.0, 3, 100.0),
                Job::new(2, 0.5, 100.0, 4, 100.0),
                Job::new(3, 1.0, 5.0, 1, 5.0),
            ],
            4,
        );
        let m = run_fcfs(&t, SimConfig::no_backfill());
        assert_eq!(m.outcomes()[1].start, 100.0);
        // C starts only after B started (next decision is at t=100).
        assert!(m.outcomes()[2].start >= 100.0);
    }

    #[test]
    fn easy_backfill_lets_small_job_jump() {
        // Same situation with EASY: C (1 proc, 5s) fits the free processor
        // and finishes well before the reservation's shadow start (t=100),
        // so it backfills at t=1.
        let t = trace(
            vec![
                Job::new(1, 0.0, 100.0, 3, 100.0),
                Job::new(2, 0.5, 100.0, 4, 100.0),
                Job::new(3, 1.0, 5.0, 1, 5.0),
            ],
            4,
        );
        let m = run_fcfs(&t, SimConfig::with_backfill());
        assert_eq!(m.outcomes()[1].start, 100.0, "reservation start unchanged");
        assert_eq!(m.outcomes()[2].start, 1.0, "small job backfilled");
    }

    #[test]
    fn backfill_never_delays_reservation() {
        // A long small job that would overrun the shadow window must NOT
        // backfill: D requests 60s but the hole is only 50s wide.
        let t = trace(
            vec![
                Job::new(1, 0.0, 50.0, 3, 50.0),   // A: leaves 1 proc free
                Job::new(2, 1.0, 100.0, 4, 100.0), // B: reservation, shadow t=50
                Job::new(3, 2.0, 60.0, 1, 60.0),   // D: fits but too long
            ],
            4,
        );
        let m = run_fcfs(&t, SimConfig::with_backfill());
        assert_eq!(m.outcomes()[1].start, 50.0, "reservation honored");
        assert!(
            m.outcomes()[2].start >= 50.0,
            "overlong job did not backfill"
        );
    }

    #[test]
    fn out_of_order_selection_is_respected() {
        // Select queue position 1 (SJF-style): the short job goes first.
        let t = trace(
            vec![
                Job::new(1, 0.0, 100.0, 4, 100.0),
                Job::new(2, 0.0, 10.0, 4, 10.0),
            ],
            4,
        );
        let mut s = SchedSession::new(&t, SimConfig::default()).unwrap();
        s.step(1).unwrap(); // schedule job 2 first
        s.step(0).unwrap();
        let m = s.metrics().unwrap();
        assert_eq!(m.outcomes()[1].start, 0.0);
        assert_eq!(m.outcomes()[0].start, 10.0);
    }

    #[test]
    fn step_errors() {
        let t = trace(vec![Job::new(1, 0.0, 10.0, 1, 10.0)], 4);
        let mut s = SchedSession::new(&t, SimConfig::default()).unwrap();
        assert!(matches!(
            s.step(3),
            Err(SimError::BadQueuePosition {
                pos: 3,
                queue_len: 1
            })
        ));
        s.step(0).unwrap();
        assert_eq!(s.step(0).unwrap_err(), SimError::EmptyQueue);
        assert!(s.metrics().is_ok());
    }

    #[test]
    fn metrics_before_done_errors() {
        let t = trace(
            vec![
                Job::new(1, 0.0, 10.0, 1, 10.0),
                Job::new(2, 0.0, 10.0, 1, 10.0),
            ],
            4,
        );
        let mut s = SchedSession::new(&t, SimConfig::default()).unwrap();
        s.step(0).unwrap();
        assert!(matches!(
            s.metrics(),
            Err(SimError::NotDone {
                scheduled: 1,
                total: 2
            })
        ));
    }

    #[test]
    fn oversized_job_is_clamped_not_rejected() {
        let t = trace(vec![Job::new(1, 0.0, 10.0, 100, 10.0)], 4);
        let m = run_fcfs(&t, SimConfig::default());
        assert_eq!(m.outcomes()[0].procs, 4);
    }

    #[test]
    fn view_reports_waits_and_fit() {
        let t = trace(
            vec![
                Job::new(1, 0.0, 100.0, 4, 100.0),
                Job::new(2, 0.0, 10.0, 2, 10.0),
                Job::new(3, 0.0, 10.0, 8, 10.0),
            ],
            4,
        );
        let mut s = SchedSession::new(&t, SimConfig::default()).unwrap();
        s.step(0).unwrap(); // big job takes everything at t=0
        let v = s.view();
        assert_eq!(v.waiting.len(), 2);
        assert_eq!(v.free_procs, 0);
        assert!(!v.waiting[0].can_run_now);
        assert_eq!(v.time, 0.0);
    }

    #[test]
    fn arrivals_during_block_join_queue_and_backfill() {
        // While the reservation waits, a later tiny arrival backfills.
        let t = trace(
            vec![
                Job::new(1, 0.0, 100.0, 3, 100.0),
                Job::new(2, 1.0, 100.0, 4, 100.0),
                Job::new(3, 10.0, 5.0, 1, 5.0), // arrives mid-block
            ],
            4,
        );
        let mut s = SchedSession::new(&t, SimConfig::with_backfill()).unwrap();
        s.step(0).unwrap(); // A starts
        s.step(0).unwrap(); // B reserved; during wait, C arrives & backfills
        assert!(s.done() || s.queue_len() == 0 || !s.done());
        while !s.done() {
            s.step(0).unwrap();
        }
        let m = s.metrics().unwrap();
        assert_eq!(m.outcomes()[2].start, 10.0);
    }

    #[test]
    fn conservation_invariants_random_policy() {
        // A randomized stress test of the core invariants.
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for case in 0..30 {
            let n = 20 + (case % 5) * 10;
            let jobs: Vec<Job> = (0..n)
                .map(|i| {
                    Job::new(
                        i as u32 + 1,
                        rng.gen_range(0.0..500.0),
                        rng.gen_range(1.0..200.0),
                        rng.gen_range(1..=8),
                        rng.gen_range(1.0..250.0),
                    )
                })
                .collect();
            let t = trace(jobs, 8);
            for cfg in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
                let mut s = SchedSession::new(&t, cfg).unwrap();
                while !s.done() {
                    let pos = rng.gen_range(0..s.queue_len());
                    s.step(pos).unwrap();
                    assert!(s.free_procs() <= s.total_procs());
                }
                let m = s.metrics().unwrap();
                assert_eq!(m.outcomes().len(), n);
                for o in m.outcomes() {
                    assert!(o.start >= o.submit, "no job starts before submission");
                    assert!(o.end > o.start);
                }
            }
        }
    }
}
