//! Runtime-dispatched dense microkernels shared by the whole stack.
//!
//! One set of register-blocked AVX2/FMA kernels serves the inference fast
//! path ([`crate::infer`]), the autodiff tape forward
//! ([`crate::Graph::linear`], [`crate::Tensor::matmul_into`]) and the
//! backward passes (`dA = dC·Bᵀ` via [`gemm_nt`], `dB = Aᵀ·dC` via
//! [`gemm_tn`]). Keeping every caller on the same kernels means the tape
//! and the fast path compute *bit-identical* values on both dispatch arms.
//!
//! # Dispatch rules
//!
//! * [`simd_enabled`] gates everything: x86-64 with AVX2+FMA detected at
//!   runtime (checked once, cached), unless the `RLSCHED_FORCE_SCALAR`
//!   environment variable is set — CI runs the whole test suite once with
//!   it set so the scalar arm stays green.
//! * Each `gemm*` entry point returns `false` (having written nothing)
//!   when it does not dispatch; the caller then runs the matching
//!   `*_scalar` reference kernel. [`gemm`]/[`gemm_tn`] need at least 8
//!   output columns to fill a vector lane; [`gemm_nt`] needs an inner
//!   dimension of at least 8. Ragged shapes are handled with scalar
//!   column/row tails inside the SIMD kernels.
//!
//! # Layout rules
//!
//! All matrices are dense row-major `f32`. [`gemm`] walks `B` row-major
//! (broadcast-A × row-of-B), which is the natural layout for `[in, out]`
//! weight matrices with many input rows. For a *single* input row that
//! access pattern touches every cache line of `B` but uses only part of
//! each; the transposed layout (`B` stored `[n, k]`, each output one
//! contiguous dot product) fixes that, and is exactly what [`gemm_nt`]
//! computes — see [`crate::infer::PackedMlp`] for the rows==1 serving
//! path that packs weights transposed and runs on the NT kernel.
//!
//! # Numerics
//!
//! The scalar kernels accumulate in the same order as the original tape
//! loops, so the scalar arm is bit-for-bit the pre-SIMD behavior. The
//! AVX2 kernels fuse multiply-adds (no intermediate rounding) and widen
//! the accumulation, so values can drift by a few ulps; see
//! `tests/simd_parity_prop.rs` for the tolerance contract. That contract
//! assumes finite inputs: [`gemm_scalar`]/[`gemm_tn_scalar`] skip
//! zero-valued contributions (so `0 × inf` drops out) while the SIMD
//! kernels compute them (`0 × inf → NaN`) — a diverged model with
//! non-finite weights can therefore NaN on one arm and not the other.
//!
//! # Row-count invariance
//!
//! The *forward* kernels ([`gemm`], [`gemm_nt`], [`dense_any`]) guarantee
//! a stronger property on both arms: each output **row** is computed with
//! an accumulation order that does not depend on how many rows are in the
//! batch. Row `i` of an `m`-row product is bit-identical to the single
//! row of the `m == 1` product over the same inputs. This is what lets
//! the vectorized rollout path (`rlsched-rl`'s `VecEnv`) score every live
//! environment through one stacked matmul and still produce trajectories
//! bit-identical to sequential per-env stepping — the batched≡sequential
//! parity tests lean on it, so treat it as part of the kernel contract.

use std::sync::OnceLock;

/// True when the AVX2+FMA kernels may run: detected at runtime once and
/// cached, and forced off by setting `RLSCHED_FORCE_SCALAR` (to anything
/// but `0`/empty) before the first dispatch.
pub fn simd_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if std::env::var_os("RLSCHED_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

// ------------------------------------------------------------- C = A·B

/// SIMD `C[m,n] = A[m,k] @ B[k,n]`, optionally seeded with a broadcast
/// `bias[n]` row (otherwise zero). Returns `false` without touching `out`
/// when SIMD is unavailable or `n < 8`; `out` must hold `m * n` elements.
pub fn gemm(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    out: &mut [f32],
) -> bool {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n);
    if n < 8 || !simd_enabled() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        unsafe { gemm_avx2(a, m, k, b, n, bias, out) };
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Scalar reference for [`gemm`] (zero-seed variant): the tape's original
/// `i-k-j` loop, zero-contribution rows skipped. Bit-identical to the
/// pre-SIMD [`crate::Tensor::matmul`].
pub fn gemm_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        o_row.fill(0.0);
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Register-blocked AVX2/FMA kernel: 4 rows × 16 columns per block (eight
/// independent FMA chains — enough to cover FMA latency at two issues per
/// cycle), stepping down to 4×8, then a 1-row remainder (16- and 8-wide),
/// then a scalar column tail.
///
/// Every output element is accumulated by its own k-ascending FMA chain
/// in its own vector lane, so the tile geometry never changes a value:
/// each row is bit-identical whether it was computed in a full block or
/// as a tail (the row-count-invariance contract of the module docs), and
/// widening the tiles is invisible to every parity test.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available and slice lengths cover the
/// dims (`a ≥ m*k`, `b ≥ k*n`, `out ≥ m*n`, `bias ≥ n` when given).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_avx2(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n);
    if let Some(bv) = bias {
        assert!(bv.len() >= n);
    }
    let n16 = n - n % 16;
    let n8 = n - n % 8;
    unsafe {
        let seed = |j: usize| -> __m256 {
            match bias {
                Some(bv) => _mm256_loadu_ps(bv.as_ptr().add(j)),
                None => _mm256_setzero_ps(),
            }
        };
        let mut i = 0;
        while i + 4 <= m {
            let mut j = 0;
            while j < n16 {
                let s0 = seed(j);
                let s1 = seed(j + 8);
                let (mut a00, mut a01) = (s0, s1);
                let (mut a10, mut a11) = (s0, s1);
                let (mut a20, mut a21) = (s0, s1);
                let (mut a30, mut a31) = (s0, s1);
                for kk in 0..k {
                    let w0 = _mm256_loadu_ps(b.as_ptr().add(kk * n + j));
                    let w1 = _mm256_loadu_ps(b.as_ptr().add(kk * n + j + 8));
                    let x0 = _mm256_set1_ps(*a.get_unchecked(i * k + kk));
                    a00 = _mm256_fmadd_ps(x0, w0, a00);
                    a01 = _mm256_fmadd_ps(x0, w1, a01);
                    let x1 = _mm256_set1_ps(*a.get_unchecked((i + 1) * k + kk));
                    a10 = _mm256_fmadd_ps(x1, w0, a10);
                    a11 = _mm256_fmadd_ps(x1, w1, a11);
                    let x2 = _mm256_set1_ps(*a.get_unchecked((i + 2) * k + kk));
                    a20 = _mm256_fmadd_ps(x2, w0, a20);
                    a21 = _mm256_fmadd_ps(x2, w1, a21);
                    let x3 = _mm256_set1_ps(*a.get_unchecked((i + 3) * k + kk));
                    a30 = _mm256_fmadd_ps(x3, w0, a30);
                    a31 = _mm256_fmadd_ps(x3, w1, a31);
                }
                let o0 = out.as_mut_ptr().add(i * n + j);
                let o1 = out.as_mut_ptr().add((i + 1) * n + j);
                let o2 = out.as_mut_ptr().add((i + 2) * n + j);
                let o3 = out.as_mut_ptr().add((i + 3) * n + j);
                _mm256_storeu_ps(o0, a00);
                _mm256_storeu_ps(o0.add(8), a01);
                _mm256_storeu_ps(o1, a10);
                _mm256_storeu_ps(o1.add(8), a11);
                _mm256_storeu_ps(o2, a20);
                _mm256_storeu_ps(o2.add(8), a21);
                _mm256_storeu_ps(o3, a30);
                _mm256_storeu_ps(o3.add(8), a31);
                j += 16;
            }
            while j < n8 {
                let s = seed(j);
                let (mut a0, mut a1, mut a2, mut a3) = (s, s, s, s);
                for kk in 0..k {
                    let wr = _mm256_loadu_ps(b.as_ptr().add(kk * n + j));
                    a0 = _mm256_fmadd_ps(_mm256_set1_ps(*a.get_unchecked(i * k + kk)), wr, a0);
                    a1 =
                        _mm256_fmadd_ps(_mm256_set1_ps(*a.get_unchecked((i + 1) * k + kk)), wr, a1);
                    a2 =
                        _mm256_fmadd_ps(_mm256_set1_ps(*a.get_unchecked((i + 2) * k + kk)), wr, a2);
                    a3 =
                        _mm256_fmadd_ps(_mm256_set1_ps(*a.get_unchecked((i + 3) * k + kk)), wr, a3);
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j), a0);
                _mm256_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j), a1);
                _mm256_storeu_ps(out.as_mut_ptr().add((i + 2) * n + j), a2);
                _mm256_storeu_ps(out.as_mut_ptr().add((i + 3) * n + j), a3);
                j += 8;
            }
            i += 4;
        }
        // Row remainder: 16- then 8-wide tiles with the same per-lane
        // k-ascending FMA chain as the 4-row blocks above (row-count
        // invariance).
        while i < m {
            let mut j = 0;
            while j < n16 {
                let mut acc0 = seed(j);
                let mut acc1 = seed(j + 8);
                for kk in 0..k {
                    let x = _mm256_set1_ps(*a.get_unchecked(i * k + kk));
                    acc0 = _mm256_fmadd_ps(x, _mm256_loadu_ps(b.as_ptr().add(kk * n + j)), acc0);
                    acc1 =
                        _mm256_fmadd_ps(x, _mm256_loadu_ps(b.as_ptr().add(kk * n + j + 8)), acc1);
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j), acc0);
                _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j + 8), acc1);
                j += 16;
            }
            while j < n8 {
                let mut acc = seed(j);
                for kk in 0..k {
                    let wr = _mm256_loadu_ps(b.as_ptr().add(kk * n + j));
                    acc = _mm256_fmadd_ps(_mm256_set1_ps(*a.get_unchecked(i * k + kk)), wr, acc);
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j), acc);
                j += 8;
            }
            i += 1;
        }
        // Column tail: plain bias-seeded dots (per row, k ascending).
        for j in n8..n {
            for i in 0..m {
                let mut acc = bias.map_or(0.0, |bv| bv[j]);
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
    }
}

// --------------------------------------------------------- C = A·Bᵀ (NT)

/// SIMD `C[m,n] = A[m,k] @ B[n,k]ᵀ` without materializing the transpose:
/// every output is a dot product of two contiguous k-long rows — the
/// "transposed layout" kernel. Returns `false` (nothing written) when
/// SIMD is unavailable or `k < 8`.
pub fn gemm_nt(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) -> bool {
    debug_assert!(a.len() >= m * k && b.len() >= n * k && out.len() >= m * n);
    if k < 8 || !simd_enabled() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        unsafe { gemm_nt_avx2(a, m, k, b, n, out) };
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Scalar reference for [`gemm_nt`]: one dot product per output element,
/// k ascending — bit-identical to the pre-SIMD `matmul_nt`.
pub fn gemm_nt_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
        }
    }
}

/// Dot-product kernel. Each output element is an independent 8-lane
/// k-ascending FMA chain + horizontal sum + scalar k-tail, so blocking
/// never changes a result's bits — which frees the loop structure to
/// chase bandwidth: A-rows are tiled 4 deep (2 B-rows per pass, 8 live
/// accumulators), so the B matrix streams once per *4* input rows
/// instead of once per row. For the packed-MLP serving case B is the
/// weight matrix and A the coalesced request batch: weight traffic per
/// decision drops ~4× at batch ≥ 4, which is what makes coalesced
/// serving beat request-at-a-time scoring (`m == 1` keeps the original
/// single-row path and its exact cost).
///
/// # Safety
/// Caller must ensure AVX2+FMA are available and slice lengths cover the
/// dims.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nt_avx2(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    assert!(a.len() >= m * k && b.len() >= n * k && out.len() >= m * n);
    let k8 = k - k % 8;
    unsafe {
        #[inline]
        unsafe fn hsum(v: __m256) -> f32 {
            unsafe {
                let hi = _mm256_extractf128_ps(v, 1);
                let lo = _mm256_castps256_ps128(v);
                let s = _mm_add_ps(lo, hi);
                let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
                let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
                _mm_cvtss_f32(s)
            }
        }
        // ---- 4-row A blocks: stream B once per four input rows ----
        let m4 = m - m % 4;
        let mut i = 0;
        while i < m4 {
            let a0 = a.as_ptr().add(i * k);
            let a1 = a.as_ptr().add((i + 1) * k);
            let a2 = a.as_ptr().add((i + 2) * k);
            let a3 = a.as_ptr().add((i + 3) * k);
            let mut j = 0;
            while j + 2 <= n {
                let b0 = b.as_ptr().add(j * k);
                let b1 = b.as_ptr().add((j + 1) * k);
                let mut acc00 = _mm256_setzero_ps();
                let mut acc01 = _mm256_setzero_ps();
                let mut acc10 = _mm256_setzero_ps();
                let mut acc11 = _mm256_setzero_ps();
                let mut acc20 = _mm256_setzero_ps();
                let mut acc21 = _mm256_setzero_ps();
                let mut acc30 = _mm256_setzero_ps();
                let mut acc31 = _mm256_setzero_ps();
                let mut kk = 0;
                while kk < k8 {
                    let bv0 = _mm256_loadu_ps(b0.add(kk));
                    let bv1 = _mm256_loadu_ps(b1.add(kk));
                    let av = _mm256_loadu_ps(a0.add(kk));
                    acc00 = _mm256_fmadd_ps(av, bv0, acc00);
                    acc01 = _mm256_fmadd_ps(av, bv1, acc01);
                    let av = _mm256_loadu_ps(a1.add(kk));
                    acc10 = _mm256_fmadd_ps(av, bv0, acc10);
                    acc11 = _mm256_fmadd_ps(av, bv1, acc11);
                    let av = _mm256_loadu_ps(a2.add(kk));
                    acc20 = _mm256_fmadd_ps(av, bv0, acc20);
                    acc21 = _mm256_fmadd_ps(av, bv1, acc21);
                    let av = _mm256_loadu_ps(a3.add(kk));
                    acc30 = _mm256_fmadd_ps(av, bv0, acc30);
                    acc31 = _mm256_fmadd_ps(av, bv1, acc31);
                    kk += 8;
                }
                let (mut s00, mut s01) = (hsum(acc00), hsum(acc01));
                let (mut s10, mut s11) = (hsum(acc10), hsum(acc11));
                let (mut s20, mut s21) = (hsum(acc20), hsum(acc21));
                let (mut s30, mut s31) = (hsum(acc30), hsum(acc31));
                while kk < k {
                    let (bv0, bv1) = (*b0.add(kk), *b1.add(kk));
                    let av = *a0.add(kk);
                    s00 += av * bv0;
                    s01 += av * bv1;
                    let av = *a1.add(kk);
                    s10 += av * bv0;
                    s11 += av * bv1;
                    let av = *a2.add(kk);
                    s20 += av * bv0;
                    s21 += av * bv1;
                    let av = *a3.add(kk);
                    s30 += av * bv0;
                    s31 += av * bv1;
                    kk += 1;
                }
                *out.as_mut_ptr().add(i * n + j) = s00;
                *out.as_mut_ptr().add(i * n + j + 1) = s01;
                *out.as_mut_ptr().add((i + 1) * n + j) = s10;
                *out.as_mut_ptr().add((i + 1) * n + j + 1) = s11;
                *out.as_mut_ptr().add((i + 2) * n + j) = s20;
                *out.as_mut_ptr().add((i + 2) * n + j + 1) = s21;
                *out.as_mut_ptr().add((i + 3) * n + j) = s30;
                *out.as_mut_ptr().add((i + 3) * n + j + 1) = s31;
                j += 2;
            }
            while j < n {
                let b0 = b.as_ptr().add(j * k);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let mut kk = 0;
                while kk < k8 {
                    let bv = _mm256_loadu_ps(b0.add(kk));
                    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a0.add(kk)), bv, acc0);
                    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a1.add(kk)), bv, acc1);
                    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a2.add(kk)), bv, acc2);
                    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a3.add(kk)), bv, acc3);
                    kk += 8;
                }
                let (mut s0, mut s1) = (hsum(acc0), hsum(acc1));
                let (mut s2, mut s3) = (hsum(acc2), hsum(acc3));
                while kk < k {
                    let bv = *b0.add(kk);
                    s0 += *a0.add(kk) * bv;
                    s1 += *a1.add(kk) * bv;
                    s2 += *a2.add(kk) * bv;
                    s3 += *a3.add(kk) * bv;
                    kk += 1;
                }
                *out.as_mut_ptr().add(i * n + j) = s0;
                *out.as_mut_ptr().add((i + 1) * n + j) = s1;
                *out.as_mut_ptr().add((i + 2) * n + j) = s2;
                *out.as_mut_ptr().add((i + 3) * n + j) = s3;
                j += 1;
            }
            i += 4;
        }
        // ---- remainder rows: the original per-row, 4-B-row path ----
        for i in m4..m {
            let a_row = a.as_ptr().add(i * k);
            let mut j = 0;
            while j + 4 <= n {
                let b0 = b.as_ptr().add(j * k);
                let b1 = b.as_ptr().add((j + 1) * k);
                let b2 = b.as_ptr().add((j + 2) * k);
                let b3 = b.as_ptr().add((j + 3) * k);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let mut kk = 0;
                while kk < k8 {
                    let av = _mm256_loadu_ps(a_row.add(kk));
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0.add(kk)), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1.add(kk)), acc1);
                    acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2.add(kk)), acc2);
                    acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3.add(kk)), acc3);
                    kk += 8;
                }
                let (mut s0, mut s1) = (hsum(acc0), hsum(acc1));
                let (mut s2, mut s3) = (hsum(acc2), hsum(acc3));
                while kk < k {
                    let av = *a_row.add(kk);
                    s0 += av * *b0.add(kk);
                    s1 += av * *b1.add(kk);
                    s2 += av * *b2.add(kk);
                    s3 += av * *b3.add(kk);
                    kk += 1;
                }
                let o = out.as_mut_ptr().add(i * n + j);
                *o = s0;
                *o.add(1) = s1;
                *o.add(2) = s2;
                *o.add(3) = s3;
                j += 4;
            }
            while j < n {
                let b_row = b.as_ptr().add(j * k);
                let mut acc = _mm256_setzero_ps();
                let mut kk = 0;
                while kk < k8 {
                    acc = _mm256_fmadd_ps(
                        _mm256_loadu_ps(a_row.add(kk)),
                        _mm256_loadu_ps(b_row.add(kk)),
                        acc,
                    );
                    kk += 8;
                }
                let mut s = hsum(acc);
                while kk < k {
                    s += *a_row.add(kk) * *b_row.add(kk);
                    kk += 1;
                }
                out[i * n + j] = s;
                j += 1;
            }
        }
    }
}

// --------------------------------------------------------- C = Aᵀ·B (TN)

/// SIMD `C[m,n] = A[r,m]ᵀ @ B[r,n]` without materializing the transpose
/// (the `dW = Xᵀ·dY` backward kernel): rank-1 updates blocked 4 deep over
/// `r` so each read-modify-write of an output row absorbs four FMAs.
/// Returns `false` (nothing written) when SIMD is unavailable or `n < 8`.
pub fn gemm_tn(a: &[f32], r: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) -> bool {
    debug_assert!(a.len() >= r * m && b.len() >= r * n && out.len() >= m * n);
    if n < 8 || !simd_enabled() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        unsafe { gemm_tn_avx2(a, r, m, b, n, out) };
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Scalar reference for [`gemm_tn`]: r-outer rank-1 updates with
/// zero-contribution skips — bit-identical to the pre-SIMD `matmul_tn`.
pub fn gemm_tn_scalar(a: &[f32], r: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    out[..m * n].fill(0.0);
    for row in 0..r {
        let a_row = &a[row * m..(row + 1) * m];
        let b_row = &b[row * n..(row + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let o_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Outer-product kernel with register-resident accumulators: a 4-row ×
/// 16-column output tile (eight independent FMA chains) accumulates
/// across a whole r-chunk before a single read-modify-write of `out`, so
/// B's column slice streams from cache and A contributes four broadcasts
/// per r; 2- and 1-row variants absorb the row remainder, 8-wide and
/// scalar tails handle ragged n. The r-chunking (512) keeps the streamed
/// slice L1/L2-resident.
///
/// Each output element accumulates in its own lane, r ascending within
/// every chunk — so the block geometry (4 vs 2 vs 1 rows per tile) never
/// changes a value.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available and slice lengths cover the
/// dims.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_tn_avx2(a: &[f32], r: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    assert!(a.len() >= r * m && b.len() >= r * n && out.len() >= m * n);
    const R_CHUNK: usize = 512;
    let n16 = n - n % 16;
    let n8 = n - n % 8;
    let m4 = m - m % 4;
    let m2 = m - m % 2;
    out[..m * n].fill(0.0);
    unsafe {
        let mut r0 = 0;
        while r0 < r {
            let r1 = (r0 + R_CHUNK).min(r);
            let mut j = 0;
            while j < n16 {
                let mut i = 0;
                while i < m4 {
                    let mut acc00 = _mm256_setzero_ps();
                    let mut acc01 = _mm256_setzero_ps();
                    let mut acc10 = _mm256_setzero_ps();
                    let mut acc11 = _mm256_setzero_ps();
                    let mut acc20 = _mm256_setzero_ps();
                    let mut acc21 = _mm256_setzero_ps();
                    let mut acc30 = _mm256_setzero_ps();
                    let mut acc31 = _mm256_setzero_ps();
                    for row in r0..r1 {
                        let bp = b.as_ptr().add(row * n + j);
                        let b0 = _mm256_loadu_ps(bp);
                        let b1 = _mm256_loadu_ps(bp.add(8));
                        let x0 = _mm256_set1_ps(*a.get_unchecked(row * m + i));
                        acc00 = _mm256_fmadd_ps(x0, b0, acc00);
                        acc01 = _mm256_fmadd_ps(x0, b1, acc01);
                        let x1 = _mm256_set1_ps(*a.get_unchecked(row * m + i + 1));
                        acc10 = _mm256_fmadd_ps(x1, b0, acc10);
                        acc11 = _mm256_fmadd_ps(x1, b1, acc11);
                        let x2 = _mm256_set1_ps(*a.get_unchecked(row * m + i + 2));
                        acc20 = _mm256_fmadd_ps(x2, b0, acc20);
                        acc21 = _mm256_fmadd_ps(x2, b1, acc21);
                        let x3 = _mm256_set1_ps(*a.get_unchecked(row * m + i + 3));
                        acc30 = _mm256_fmadd_ps(x3, b0, acc30);
                        acc31 = _mm256_fmadd_ps(x3, b1, acc31);
                    }
                    for (di, (lo, hi)) in [
                        (acc00, acc01),
                        (acc10, acc11),
                        (acc20, acc21),
                        (acc30, acc31),
                    ]
                    .into_iter()
                    .enumerate()
                    {
                        let o = out.as_mut_ptr().add((i + di) * n + j);
                        _mm256_storeu_ps(o, _mm256_add_ps(_mm256_loadu_ps(o), lo));
                        _mm256_storeu_ps(o.add(8), _mm256_add_ps(_mm256_loadu_ps(o.add(8)), hi));
                    }
                    i += 4;
                }
                while i < m2 {
                    let mut acc00 = _mm256_setzero_ps();
                    let mut acc01 = _mm256_setzero_ps();
                    let mut acc10 = _mm256_setzero_ps();
                    let mut acc11 = _mm256_setzero_ps();
                    for row in r0..r1 {
                        let bp = b.as_ptr().add(row * n + j);
                        let b0 = _mm256_loadu_ps(bp);
                        let b1 = _mm256_loadu_ps(bp.add(8));
                        let x0 = _mm256_set1_ps(*a.get_unchecked(row * m + i));
                        let x1 = _mm256_set1_ps(*a.get_unchecked(row * m + i + 1));
                        acc00 = _mm256_fmadd_ps(x0, b0, acc00);
                        acc01 = _mm256_fmadd_ps(x0, b1, acc01);
                        acc10 = _mm256_fmadd_ps(x1, b0, acc10);
                        acc11 = _mm256_fmadd_ps(x1, b1, acc11);
                    }
                    let o0 = out.as_mut_ptr().add(i * n + j);
                    let o1 = out.as_mut_ptr().add((i + 1) * n + j);
                    _mm256_storeu_ps(o0, _mm256_add_ps(_mm256_loadu_ps(o0), acc00));
                    _mm256_storeu_ps(o0.add(8), _mm256_add_ps(_mm256_loadu_ps(o0.add(8)), acc01));
                    _mm256_storeu_ps(o1, _mm256_add_ps(_mm256_loadu_ps(o1), acc10));
                    _mm256_storeu_ps(o1.add(8), _mm256_add_ps(_mm256_loadu_ps(o1.add(8)), acc11));
                    i += 2;
                }
                while i < m {
                    let mut acc0 = _mm256_setzero_ps();
                    let mut acc1 = _mm256_setzero_ps();
                    for row in r0..r1 {
                        let bp = b.as_ptr().add(row * n + j);
                        let x0 = _mm256_set1_ps(*a.get_unchecked(row * m + i));
                        acc0 = _mm256_fmadd_ps(x0, _mm256_loadu_ps(bp), acc0);
                        acc1 = _mm256_fmadd_ps(x0, _mm256_loadu_ps(bp.add(8)), acc1);
                    }
                    let o = out.as_mut_ptr().add(i * n + j);
                    _mm256_storeu_ps(o, _mm256_add_ps(_mm256_loadu_ps(o), acc0));
                    _mm256_storeu_ps(o.add(8), _mm256_add_ps(_mm256_loadu_ps(o.add(8)), acc1));
                    i += 1;
                }
                j += 16;
            }
            while j < n8 {
                let mut i = 0;
                while i < m4 {
                    let mut acc0 = _mm256_setzero_ps();
                    let mut acc1 = _mm256_setzero_ps();
                    let mut acc2 = _mm256_setzero_ps();
                    let mut acc3 = _mm256_setzero_ps();
                    for row in r0..r1 {
                        let b0 = _mm256_loadu_ps(b.as_ptr().add(row * n + j));
                        let x0 = _mm256_set1_ps(*a.get_unchecked(row * m + i));
                        acc0 = _mm256_fmadd_ps(x0, b0, acc0);
                        let x1 = _mm256_set1_ps(*a.get_unchecked(row * m + i + 1));
                        acc1 = _mm256_fmadd_ps(x1, b0, acc1);
                        let x2 = _mm256_set1_ps(*a.get_unchecked(row * m + i + 2));
                        acc2 = _mm256_fmadd_ps(x2, b0, acc2);
                        let x3 = _mm256_set1_ps(*a.get_unchecked(row * m + i + 3));
                        acc3 = _mm256_fmadd_ps(x3, b0, acc3);
                    }
                    for (di, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                        let o = out.as_mut_ptr().add((i + di) * n + j);
                        _mm256_storeu_ps(o, _mm256_add_ps(_mm256_loadu_ps(o), acc));
                    }
                    i += 4;
                }
                while i < m2 {
                    let mut acc0 = _mm256_setzero_ps();
                    let mut acc1 = _mm256_setzero_ps();
                    for row in r0..r1 {
                        let b0 = _mm256_loadu_ps(b.as_ptr().add(row * n + j));
                        let x0 = _mm256_set1_ps(*a.get_unchecked(row * m + i));
                        let x1 = _mm256_set1_ps(*a.get_unchecked(row * m + i + 1));
                        acc0 = _mm256_fmadd_ps(x0, b0, acc0);
                        acc1 = _mm256_fmadd_ps(x1, b0, acc1);
                    }
                    let o0 = out.as_mut_ptr().add(i * n + j);
                    let o1 = out.as_mut_ptr().add((i + 1) * n + j);
                    _mm256_storeu_ps(o0, _mm256_add_ps(_mm256_loadu_ps(o0), acc0));
                    _mm256_storeu_ps(o1, _mm256_add_ps(_mm256_loadu_ps(o1), acc1));
                    i += 2;
                }
                while i < m {
                    let mut acc = _mm256_setzero_ps();
                    for row in r0..r1 {
                        acc = _mm256_fmadd_ps(
                            _mm256_set1_ps(*a.get_unchecked(row * m + i)),
                            _mm256_loadu_ps(b.as_ptr().add(row * n + j)),
                            acc,
                        );
                    }
                    let o = out.as_mut_ptr().add(i * n + j);
                    _mm256_storeu_ps(o, _mm256_add_ps(_mm256_loadu_ps(o), acc));
                    i += 1;
                }
                j += 8;
            }
            for jj in n8..n {
                for i in 0..m {
                    let mut s = 0.0f32;
                    for row in r0..r1 {
                        s += a[row * m + i] * b[row * n + jj];
                    }
                    out[i * n + jj] += s;
                }
            }
            r0 = r1;
        }
    }
}

/// Transpose a `[rows, cols]` row-major matrix into `dst` as
/// `[cols, rows]`. Shared by the packed serving layout
/// ([`crate::infer::PackedMlp`]) and the Linear backward's
/// dX-via-transposed-W gemm, so the layout convention lives in one place.
pub fn transpose(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    debug_assert!(src.len() >= rows * cols, "transpose source volume");
    debug_assert!(dst.len() >= rows * cols, "transpose destination volume");
    for i in 0..rows {
        for j in 0..cols {
            dst[j * rows + i] = src[i * cols + j];
        }
    }
}

// ------------------------------------------------- shared dense forward

/// Portable dense-layer kernel: bias-seeded rows, k ascending — the tape's
/// original accumulation order, kept as the scalar arm of [`dense_any`].
pub fn dense_portable(
    x: &[f32],
    rows: usize,
    w: &[f32],
    b: &[f32],
    in_dim: usize,
    out_dim: usize,
    out: &mut [f32],
) {
    for i in 0..rows {
        let x_row = &x[i * in_dim..(i + 1) * in_dim];
        let o_row = &mut out[i * out_dim..(i + 1) * out_dim];
        o_row.copy_from_slice(b);
        for (k, &xa) in x_row.iter().enumerate() {
            let w_row = &w[k * out_dim..(k + 1) * out_dim];
            for (o, &wv) in o_row.iter_mut().zip(w_row) {
                *o += xa * wv;
            }
        }
    }
}

/// The one dense forward both the tape ([`crate::Graph::linear`]) and the
/// inference fast path (`infer::dense_forward`) call, so the two compute
/// bit-identical values on whichever dispatch arm is active:
/// `out = x @ w + b` (no activation), `x` `[rows, in]`, `w` `[in, out]`.
///
/// `out_dim == 1` heads take a scalar-dot specialization (same
/// accumulation order as [`dense_portable`], vectorizable over k without
/// strided weight access).
pub fn dense_any(
    x: &[f32],
    rows: usize,
    w: &[f32],
    b: &[f32],
    in_dim: usize,
    out_dim: usize,
    out: &mut [f32],
) {
    debug_assert!(x.len() >= rows * in_dim, "input volume");
    debug_assert_eq!(w.len(), in_dim * out_dim, "weight volume");
    debug_assert_eq!(b.len(), out_dim, "bias length");
    debug_assert!(out.len() >= rows * out_dim, "output volume");
    if out_dim == 1 {
        for i in 0..rows {
            let x_row = &x[i * in_dim..(i + 1) * in_dim];
            let mut acc = b[0];
            for (&xa, &wv) in x_row.iter().zip(w) {
                acc += xa * wv;
            }
            out[i] = acc;
        }
    } else if !gemm(x, rows, in_dim, w, out_dim, Some(b), out) {
        dense_portable(x, rows, w, b, in_dim, out_dim, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_matches_scalar_on_ragged_shapes() {
        for &(m, k, n) in &[(1, 3, 9), (4, 8, 8), (5, 7, 11), (9, 16, 24), (2, 1, 8)] {
            let a = filled(m * k, |i| (i as f32 * 0.37).sin());
            let b = filled(k * n, |i| (i as f32 * 0.21).cos());
            let mut simd = vec![f32::NAN; m * n];
            let mut scalar = vec![f32::NAN; m * n];
            gemm_scalar(&a, m, k, &b, n, &mut scalar);
            if gemm(&a, m, k, &b, n, None, &mut simd) {
                assert_close(&simd, &scalar);
            }
        }
    }

    #[test]
    fn gemm_bias_seed_matches_portable() {
        let (m, k, n) = (6, 5, 13);
        let a = filled(m * k, |i| (i as f32 * 0.11).sin());
        let w = filled(k * n, |i| (i as f32 * 0.07).cos());
        let b = filled(n, |i| i as f32 * 0.01 - 0.05);
        let mut simd = vec![f32::NAN; m * n];
        let mut portable = vec![f32::NAN; m * n];
        dense_portable(&a, m, &w, &b, k, n, &mut portable);
        if gemm(&a, m, k, &w, n, Some(&b), &mut simd) {
            assert_close(&simd, &portable);
        }
    }

    #[test]
    fn gemm_nt_matches_scalar_including_single_row() {
        for &(m, k, n) in &[(1, 8, 5), (1, 29, 128), (3, 12, 4), (7, 9, 10)] {
            let a = filled(m * k, |i| (i as f32 * 0.19).sin());
            let b = filled(n * k, |i| (i as f32 * 0.13).cos());
            let mut simd = vec![f32::NAN; m * n];
            let mut scalar = vec![f32::NAN; m * n];
            gemm_nt_scalar(&a, m, k, &b, n, &mut scalar);
            if gemm_nt(&a, m, k, &b, n, &mut simd) {
                assert_close(&simd, &scalar);
            }
        }
    }

    #[test]
    fn gemm_tn_matches_scalar() {
        for &(r, m, n) in &[(4, 3, 8), (5, 7, 11), (16, 2, 32), (3, 1, 9)] {
            let a = filled(r * m, |i| (i as f32 * 0.23).sin());
            let b = filled(r * n, |i| (i as f32 * 0.31).cos());
            let mut simd = vec![f32::NAN; m * n];
            let mut scalar = vec![f32::NAN; m * n];
            gemm_tn_scalar(&a, r, m, &b, n, &mut scalar);
            if gemm_tn(&a, r, m, &b, n, &mut simd) {
                assert_close(&simd, &scalar);
            }
        }
    }

    #[test]
    fn forward_kernels_are_row_count_invariant() {
        // Each output row must be bit-identical whether it is computed
        // alone (m = 1) or inside a larger batch — on whichever dispatch
        // arm is active. VecEnv's batched≡sequential rollout parity rests
        // on this. Shapes cover full 4-row blocks, row tails (m % 4 ≠ 0)
        // and ragged column tails (n % 8 ≠ 0).
        for &(m, k, n) in &[(4, 6, 8), (5, 7, 11), (9, 16, 24), (3, 32, 9), (6, 5, 16)] {
            let a = filled(m * k, |i| (i as f32 * 0.29).sin());
            let w = filled(k * n, |i| (i as f32 * 0.17).cos());
            let b = filled(n, |i| i as f32 * 0.03 - 0.1);

            let mut batched = vec![f32::NAN; m * n];
            dense_any(&a, m, &w, &b, k, n, &mut batched);
            let mut single = vec![f32::NAN; n];
            for i in 0..m {
                dense_any(&a[i * k..(i + 1) * k], 1, &w, &b, k, n, &mut single);
                assert_eq!(
                    &batched[i * n..(i + 1) * n],
                    single.as_slice(),
                    "dense_any row {i} of ({m},{k},{n}) depends on batch size"
                );
            }

            // Same property for the NT (transposed-layout) kernel.
            let bt = filled(n * k, |i| (i as f32 * 0.23).sin());
            let mut batched_nt = vec![f32::NAN; m * n];
            if !gemm_nt(&a, m, k, &bt, n, &mut batched_nt) {
                gemm_nt_scalar(&a, m, k, &bt, n, &mut batched_nt);
            }
            let mut single_nt = vec![f32::NAN; n];
            for i in 0..m {
                let row = &a[i * k..(i + 1) * k];
                if !gemm_nt(row, 1, k, &bt, n, &mut single_nt) {
                    gemm_nt_scalar(row, 1, k, &bt, n, &mut single_nt);
                }
                assert_eq!(
                    &batched_nt[i * n..(i + 1) * n],
                    single_nt.as_slice(),
                    "gemm_nt row {i} of ({m},{k},{n}) depends on batch size"
                );
            }
        }
    }

    #[test]
    fn small_widths_fall_back() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut out = [0.0f32; 1];
        assert!(
            !gemm(&a, 1, 2, &b, 1, None, &mut out),
            "n=1 must not dispatch"
        );
        assert!(!gemm_nt(&a, 1, 2, &b, 1, &mut out), "k=2 must not dispatch");
    }
}
