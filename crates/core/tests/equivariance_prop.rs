//! Property tests for the RLScheduler core: kernel-network permutation
//! equivariance (the Fig 2 requirement) and observation-encoder bounds.

use proptest::prelude::*;

use rlsched_nn::{Graph, ParamBinds, Tensor};
use rlsched_rl::categorical::MASK_OFF;
use rlsched_rl::PolicyModel;
use rlsched_sim::{QueueView, WaitingJob};
use rlsched_swf::Job;
use rlscheduler::{KernelPolicy, ObsConfig, ObsEncoder, JOB_FEATURES};

fn forward(policy: &KernelPolicy, obs: &[f32], mask: &[f32], k: usize) -> Vec<f32> {
    let mut g = Graph::new();
    let mut binds = ParamBinds::new();
    let o = g.input(Tensor::from_vec(obs.to_vec(), &[1, obs.len()]));
    let m = g.input(Tensor::from_vec(mask.to_vec(), &[1, k]));
    let lp = policy.log_probs(&mut g, o, m, &mut binds);
    g.value(lp).data().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernel_scores_commute_with_any_permutation(
        features in prop::collection::vec(0.0f32..1.0, 8 * JOB_FEATURES),
        perm_seed in any::<u64>(),
        net_seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let k = 8;
        let policy = KernelPolicy::new(k, net_seed);
        let mask = vec![0.0f32; k];

        let before = forward(&policy, &features, &mask, k);

        // Random permutation of the job rows.
        let mut order: Vec<usize> = (0..k).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        order.shuffle(&mut rng);
        let mut permuted = vec![0.0f32; features.len()];
        for (new_slot, &old_slot) in order.iter().enumerate() {
            permuted[new_slot * JOB_FEATURES..(new_slot + 1) * JOB_FEATURES]
                .copy_from_slice(&features[old_slot * JOB_FEATURES..(old_slot + 1) * JOB_FEATURES]);
        }
        let after = forward(&policy, &permuted, &mask, k);

        for (new_slot, &old_slot) in order.iter().enumerate() {
            prop_assert!(
                (after[new_slot] - before[old_slot]).abs() < 1e-4,
                "probability moved with the job: slot {} -> {}",
                old_slot,
                new_slot
            );
        }
    }

    #[test]
    fn kernel_output_is_a_distribution_over_valid_slots(
        features in prop::collection::vec(0.0f32..1.0, 8 * JOB_FEATURES),
        valid in 1usize..8,
        net_seed in any::<u64>(),
    ) {
        let k = 8;
        let policy = KernelPolicy::new(k, net_seed);
        let mask: Vec<f32> = (0..k).map(|i| if i < valid { 0.0 } else { MASK_OFF }).collect();
        let lp = forward(&policy, &features, &mask, k);
        let sum: f32 = lp.iter().map(|l| l.exp()).sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "sum {}", sum);
        for (i, &l) in lp.iter().enumerate() {
            if i >= valid {
                prop_assert!(l < -1e8, "masked slot {} has probability {}", i, l.exp());
            } else {
                prop_assert!(l.is_finite());
            }
        }
    }

    #[test]
    fn encoder_features_stay_in_unit_range(
        submits in prop::collection::vec(0.0f64..1e6, 1..12),
        runs in prop::collection::vec(1.0f64..1e7, 12),
        procs in prop::collection::vec(1u32..512, 12),
        now_offset in 0.0f64..1e6,
        free in 0u32..128,
    ) {
        let n = submits.len();
        let jobs: Vec<Job> = (0..n)
            .map(|i| Job::new(i as u32 + 1, submits[i], runs[i], procs[i], runs[i] * 1.5))
            .collect();
        let now = submits.iter().cloned().fold(0.0, f64::max) + now_offset;
        let view = QueueView {
            time: now,
            free_procs: free.min(128),
            total_procs: 128,
            waiting: jobs
                .iter()
                .enumerate()
                .map(|(i, job)| WaitingJob {
                    job,
                    job_index: i,
                    wait: now - job.submit_time,
                    can_run_now: job.procs() <= free.min(128),
                })
                .collect(),
        };
        let enc = ObsEncoder::new(ObsConfig { max_obsv: 16, ..ObsConfig::default() });
        let (obs, mask) = enc.encode(&view);
        prop_assert_eq!(obs.len(), 16 * JOB_FEATURES);
        for &x in &obs {
            prop_assert!((0.0..=1.0).contains(&x), "feature {} out of range", x);
        }
        for (i, &m) in mask.iter().enumerate() {
            if i < n.min(16) {
                prop_assert_eq!(m, 0.0);
            } else {
                prop_assert!(m < -1e8);
            }
        }
    }
}
