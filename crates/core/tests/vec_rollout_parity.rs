//! Batched ≡ sequential parity on the *real* scheduling stack: a
//! `VecEnv(n)` rollout over `SchedulingEnv`s with the paper's policy
//! architectures must produce bit-identical trajectories (observations,
//! actions, rewards/returns, advantages, sampled log-probs) to n
//! sequential single-env rollouts, and the lockstep greedy evaluator
//! must schedule exactly like the sequential per-decision protocol.
//! CI runs this suite on both the SIMD and `RLSCHED_FORCE_SCALAR=1`
//! dispatch arms.

use std::sync::Arc;

use rlsched_rl::{collect_episodes, Batch, PpoConfig, RolloutBuffer, VecEnv};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{
    evaluate_agent, evaluate_policy, sample_eval_windows, Agent, AgentConfig, ObsConfig,
    PolicyKind, SchedulingEnv,
};

fn agent_of(kind: PolicyKind, max_obsv: usize) -> Agent {
    Agent::new(AgentConfig {
        policy: kind,
        obs: ObsConfig {
            max_obsv,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig::default(),
        seed: 9,
    })
}

fn env_for(agent: &Agent, seq_len: usize) -> SchedulingEnv {
    let trace = Arc::new(NamedWorkload::Lublin1.generate(400, 7));
    SchedulingEnv::new(
        trace,
        seq_len,
        SimConfig::default(),
        *agent.encoder(),
        agent.objective(),
    )
}

fn assert_batches_identical(a: &Batch, b: &Batch, what: &str) {
    assert_eq!(a.obs.data(), b.obs.data(), "{what}: observations");
    assert_eq!(a.masks.data(), b.masks.data(), "{what}: masks");
    assert_eq!(a.actions, b.actions, "{what}: actions");
    assert_eq!(a.advantages, b.advantages, "{what}: advantages");
    assert_eq!(a.returns, b.returns, "{what}: returns");
    assert_eq!(a.logp_old, b.logp_old, "{what}: sampled log-probs");
}

/// VecEnv(n) vs n × VecEnv(1) over real scheduling episodes, for the
/// paper's kernel policy and a flat-MLP baseline (the two batched
/// fast-path families; the CNN routes through the same per-row default).
#[test]
fn batched_scheduling_rollout_matches_sequential() {
    for (kind, max_obsv) in [(PolicyKind::Kernel, 16), (PolicyKind::MlpV2, 16)] {
        let agent = agent_of(kind, max_obsv);
        let seeds: Vec<u64> = (40..44).collect();

        let mut venv = VecEnv::new(
            (0..seeds.len())
                .map(|_| env_for(&agent, 24))
                .collect::<Vec<_>>(),
        );
        let (batched_bufs, batched_stats) = collect_episodes(agent.ppo(), &mut venv, &seeds);

        let mut seq_bufs = Vec::new();
        let mut seq_metrics = Vec::new();
        for &seed in &seeds {
            let mut single = VecEnv::new(vec![env_for(&agent, 24)]);
            let (mut bufs, stats) = collect_episodes(agent.ppo(), &mut single, &[seed]);
            seq_bufs.append(&mut bufs);
            seq_metrics.extend(stats.metrics);
        }

        assert_eq!(
            batched_stats.metrics, seq_metrics,
            "{kind:?}: episode metrics"
        );
        let batched = RolloutBuffer::into_batch(batched_bufs);
        let sequential = RolloutBuffer::into_batch(seq_bufs);
        assert_batches_identical(&batched, &sequential, &format!("{kind:?} batched-vs-seq"));
    }
}

/// Lockstep width must be invisible: pipelining the same seed schedule
/// through 2 slots (with auto-reset) equals one slot per episode.
#[test]
fn lockstep_width_does_not_change_trajectories() {
    let agent = agent_of(PolicyKind::Kernel, 16);
    let seeds: Vec<u64> = (90..96).collect();
    let run = |slots: usize| {
        let mut venv = VecEnv::new((0..slots).map(|_| env_for(&agent, 20)).collect::<Vec<_>>());
        let (bufs, stats) = collect_episodes(agent.ppo(), &mut venv, &seeds);
        (RolloutBuffer::into_batch(bufs), stats)
    };
    let (wide, ws) = run(6);
    let (narrow, ns) = run(2);
    assert_batches_identical(&wide, &narrow, "6 slots vs 2 slots");
    assert_eq!(ws.metrics, ns.metrics);
}

/// The batched greedy evaluator must schedule exactly like the
/// per-decision `Policy` adapter for unpacked architectures (the kernel
/// policy serves unpacked, so the two paths share every bit).
#[test]
fn batched_greedy_eval_matches_sequential_protocol() {
    let agent = agent_of(PolicyKind::Kernel, 16);
    let trace = NamedWorkload::Lublin1.generate(500, 3);
    let windows = sample_eval_windows(&trace, 4, 60, 77);
    let sequential = evaluate_policy(&windows, SimConfig::default(), &mut agent.as_policy());
    let batched = evaluate_agent(&agent, &windows, SimConfig::default());
    assert_eq!(
        sequential, batched,
        "lockstep evaluation must reproduce the paper's protocol exactly"
    );
}
