//! The policy abstraction: anything that can pick the next job to run.
//!
//! Both the heuristic priority schedulers (Table III of the paper) and the
//! trained RLScheduler agent implement [`Policy`]; the episode driver and
//! the evaluation harness treat them uniformly, which is exactly how the
//! paper compares them (Tables V–XI).

use rlsched_swf::Job;

/// One waiting job as a policy sees it: the job's submit-time attributes
/// plus its current wait and whether it fits in the free processors.
#[derive(Debug, Clone, Copy)]
pub struct WaitingJob<'a> {
    /// The job record (schedulers must use `time_bound()`, never `run_time`).
    pub job: &'a Job,
    /// Index of the job in the episode trace.
    pub job_index: usize,
    /// How long the job has been waiting, in seconds.
    pub wait: f64,
    /// True when the job's processor request fits right now.
    pub can_run_now: bool,
}

/// A decision point: the waiting jobs (FCFS order) and the cluster state.
#[derive(Debug, Clone)]
pub struct QueueView<'a> {
    /// Current virtual time.
    pub time: f64,
    /// Idle processors.
    pub free_procs: u32,
    /// Cluster size.
    pub total_procs: u32,
    /// Waiting jobs in arrival order. Never empty when a policy is asked.
    pub waiting: Vec<WaitingJob<'a>>,
}

impl QueueView<'_> {
    /// Fraction of the cluster currently idle.
    pub fn free_fraction(&self) -> f64 {
        self.free_procs as f64 / self.total_procs as f64
    }
}

/// A scheduling policy: selects which waiting job runs next.
pub trait Policy {
    /// Pick a queue position in `view.waiting`. Must be `< view.waiting.len()`.
    fn select(&mut self, view: &QueueView<'_>) -> usize;

    /// Human-readable name for tables and logs.
    fn name(&self) -> &str;
}

impl<P: Policy + ?Sized> Policy for &mut P {
    fn select(&mut self, view: &QueueView<'_>) -> usize {
        (**self).select(view)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn select(&mut self, view: &QueueView<'_>) -> usize {
        (**self).select(view)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_swf::Job;

    struct Head;
    impl Policy for Head {
        fn select(&mut self, _: &QueueView<'_>) -> usize {
            0
        }
        fn name(&self) -> &str {
            "head"
        }
    }

    #[test]
    fn free_fraction() {
        let v = QueueView {
            time: 0.0,
            free_procs: 16,
            total_procs: 64,
            waiting: vec![],
        };
        assert!((v.free_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn policy_blanket_impls_delegate() {
        let job = Job::new(1, 0.0, 1.0, 1, 1.0);
        let view = QueueView {
            time: 0.0,
            free_procs: 1,
            total_procs: 1,
            waiting: vec![WaitingJob {
                job: &job,
                job_index: 0,
                wait: 0.0,
                can_run_now: true,
            }],
        };
        let mut p = Head;
        let by_ref: &mut Head = &mut p;
        assert_eq!(by_ref.select(&view), 0);
        assert_eq!(by_ref.name(), "head");
        let mut boxed: Box<dyn Policy> = Box::new(Head);
        assert_eq!(boxed.select(&view), 0);
        assert_eq!(boxed.name(), "head");
    }
}
