//! Trace-alike generators: synthetic stand-ins for the four archive traces
//! of Table II (SDSC-SP2, HPC2N, PIK-IPLEX-2009, ANL Intrepid).
//!
//! Each generator is a small stochastic model with three pluggable parts —
//! an arrival process (stationary lognormal gaps, or a two-state
//! Markov-modulated process for bursty traces), a lognormal runtime body
//! with user-style overestimated *requested* times, and a discrete
//! job-size menu — plus a user population. Parameters for the concrete
//! traces live in [`crate::named`]; this module is the machinery.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rlsched_swf::{Job, JobTrace};

use crate::dist::{quantize_request, LogNormalByMoments};
use crate::users::UserModel;

/// How submit-time gaps are produced.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Stationary lognormal gaps with the given mean and coefficient of
    /// variation.
    LogNormal {
        /// Mean gap, seconds.
        mean: f64,
        /// Coefficient of variation of the gaps.
        cv: f64,
    },
    /// Two-state Markov-modulated arrivals: calm stretches with long gaps,
    /// burst episodes with very short gaps. This reproduces the
    /// "most-of-the-time idle, occasionally catastrophic" shape of
    /// PIK-IPLEX-2009 (Fig 3 of the paper).
    Mmpp {
        /// Mean gap in the calm state, seconds.
        calm_gap: f64,
        /// Mean gap inside a burst, seconds.
        burst_gap: f64,
        /// Per-arrival probability of entering a burst from calm.
        enter_burst: f64,
        /// Per-arrival probability of leaving a burst.
        exit_burst: f64,
    },
}

/// Parameters of one trace-alike model.
#[derive(Debug, Clone)]
pub struct TraceAlikeParams {
    /// Cluster size (processors).
    pub cluster_size: u32,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Mean of the *long-job* runtime component, seconds.
    pub runtime_mean: f64,
    /// Coefficient of variation of the long-job component (archive traces
    /// are heavy-tailed: 2–5 is typical).
    pub runtime_cv: f64,
    /// Fraction of very short jobs (debug runs, failures, array stubs —
    /// ubiquitous in archives and the jobs whose bounded slowdown explodes
    /// when they queue behind whales).
    pub short_frac: f64,
    /// Mean runtime of the short component, seconds (CV fixed at 2).
    pub short_mean: f64,
    /// Runtime multiplier for "whale" jobs (procs ≥ cluster/8): big jobs
    /// run longer in real traces (the size–runtime correlation the Lublin
    /// model encodes via `p = pa·n + pb`). 1.0 disables.
    pub big_job_runtime_mult: f64,
    /// Whether users file runtime estimates. When true, requested time =
    /// quantized `actual × U(lo, hi)`; when false the archive records no
    /// estimates (PIK-IPLEX), so schedulers see the actual runtime, exactly
    /// as SWF `-1` request fields replay in the reference simulator.
    pub estimates: bool,
    /// Requested time = quantized `actual × U(lo, hi)` — users overestimate.
    pub overestimate: (f64, f64),
    /// Maximum runtime, seconds (queue limit of the machine).
    pub max_runtime: f64,
    /// Job-size menu: (processors, weight). Archive machines allocate from
    /// a small set of typical sizes.
    pub size_menu: Vec<(u32, f64)>,
    /// User population.
    pub users: UserModel,
}

/// A ready-to-sample trace-alike model.
#[derive(Debug, Clone)]
pub struct TraceAlikeModel {
    params: TraceAlikeParams,
    runtime: LogNormalByMoments,
    short_runtime: LogNormalByMoments,
    size_total_weight: f64,
}

/// Internal MMPP arrival state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Calm,
    Burst,
}

impl TraceAlikeModel {
    /// Validate parameters and precompute samplers.
    pub fn new(params: TraceAlikeParams) -> Self {
        assert!(!params.size_menu.is_empty(), "size menu must not be empty");
        assert!(
            params
                .size_menu
                .iter()
                .all(|&(s, w)| s >= 1 && s <= params.cluster_size && w >= 0.0),
            "menu sizes must fit the cluster and have non-negative weights"
        );
        assert!(params.overestimate.0 >= 1.0 && params.overestimate.1 >= params.overestimate.0);
        assert!(
            (0.0..1.0).contains(&params.short_frac),
            "short_frac in [0,1)"
        );
        let runtime = LogNormalByMoments::new(params.runtime_mean, params.runtime_cv);
        let short_runtime = LogNormalByMoments::new(params.short_mean.max(1.0), 2.0);
        let size_total_weight = params.size_menu.iter().map(|&(_, w)| w).sum();
        assert!(size_total_weight > 0.0);
        TraceAlikeModel {
            params,
            runtime,
            short_runtime,
            size_total_weight,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &TraceAlikeParams {
        &self.params
    }

    fn sample_size<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let mut x = rng.gen::<f64>() * self.size_total_weight;
        for &(s, w) in &self.params.size_menu {
            if x < w {
                return s;
            }
            x -= w;
        }
        self.params.size_menu.last().expect("menu non-empty").0
    }

    /// Generate a trace of `n` jobs, reproducibly from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> JobTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut jobs = Vec::with_capacity(n);
        let mut t = 0.0f64;
        let mut phase = Phase::Calm;

        // Pre-build the calm/burst gap samplers once.
        let gap_sampler = |rng: &mut StdRng, phase: &mut Phase| -> f64 {
            match &self.params.arrival {
                ArrivalProcess::LogNormal { mean, cv } => {
                    LogNormalByMoments::new(*mean, *cv).sample(rng)
                }
                ArrivalProcess::Mmpp {
                    calm_gap,
                    burst_gap,
                    enter_burst,
                    exit_burst,
                } => {
                    match phase {
                        Phase::Calm if rng.gen::<f64>() < *enter_burst => *phase = Phase::Burst,
                        Phase::Burst if rng.gen::<f64>() < *exit_burst => *phase = Phase::Calm,
                        _ => {}
                    }
                    let mean = match phase {
                        Phase::Calm => *calm_gap,
                        Phase::Burst => *burst_gap,
                    };
                    // Exponential gaps inside each phase.
                    -mean * (1.0 - rng.gen::<f64>()).ln()
                }
            }
        };

        for i in 0..n {
            t += gap_sampler(&mut rng, &mut phase).max(1e-3);
            let size = self.sample_size(&mut rng);
            let mut base = if rng.gen::<f64>() < self.params.short_frac {
                self.short_runtime.sample(&mut rng)
            } else {
                self.runtime.sample(&mut rng)
            };
            if size >= self.params.cluster_size / 8 {
                base *= self.params.big_job_runtime_mult;
            }
            let actual = base.clamp(1.0, self.params.max_runtime);
            let requested = if self.params.estimates {
                let over = rng.gen_range(self.params.overestimate.0..=self.params.overestimate.1);
                quantize_request(actual * over).min(self.params.max_runtime * 2.0)
            } else {
                actual
            };
            let user = self.params.users.sample(&mut rng);
            let mut job = Job::new(i as u32 + 1, t, actual, size, requested).with_user(user);
            job.group_id = (user / 8) as i64; // coarse group structure
            jobs.push(job);
        }
        JobTrace::new(jobs, self.params.cluster_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_swf::TraceStats;

    fn base_params() -> TraceAlikeParams {
        TraceAlikeParams {
            cluster_size: 128,
            arrival: ArrivalProcess::LogNormal {
                mean: 1000.0,
                cv: 2.0,
            },
            runtime_mean: 3000.0,
            runtime_cv: 2.5,
            short_frac: 0.2,
            short_mean: 120.0,
            big_job_runtime_mult: 1.0,
            estimates: true,
            overestimate: (1.2, 3.0),
            max_runtime: 48.0 * 3600.0,
            size_menu: vec![
                (1, 3.0),
                (2, 1.0),
                (4, 2.0),
                (8, 2.0),
                (16, 1.5),
                (32, 1.0),
                (64, 0.5),
            ],
            users: UserModel::zipf(40, 1.0),
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = TraceAlikeModel::new(base_params());
        assert_eq!(m.generate(300, 11).jobs(), m.generate(300, 11).jobs());
        assert_ne!(m.generate(300, 11).jobs(), m.generate(300, 12).jobs());
    }

    #[test]
    fn sizes_come_from_menu() {
        let m = TraceAlikeModel::new(base_params());
        let menu: Vec<u32> = base_params().size_menu.iter().map(|&(s, _)| s).collect();
        for j in m.generate(2_000, 13).jobs() {
            assert!(menu.contains(&j.procs()), "size {} not in menu", j.procs());
        }
    }

    #[test]
    fn requested_time_is_overestimated_and_quantized() {
        let m = TraceAlikeModel::new(base_params());
        for j in m.generate(2_000, 14).jobs() {
            assert!(j.requested_time >= j.run_time);
            let q = j.requested_time;
            assert!(
                (q % 900.0).abs() < 1e-6 || (q % 3600.0).abs() < 1e-6,
                "request {q} not quantized"
            );
        }
    }

    #[test]
    fn lognormal_arrival_mean_is_close() {
        let m = TraceAlikeModel::new(base_params());
        let s = TraceStats::from_trace(&m.generate(20_000, 15));
        assert!(
            (s.mean_interarrival - 1000.0).abs() / 1000.0 < 0.1,
            "it={}",
            s.mean_interarrival
        );
    }

    #[test]
    fn mmpp_is_burstier_than_lognormal() {
        let mut p = base_params();
        // Bursts dominate arrivals; calm gaps are rare and huge — the
        // high-CV regime (see the PIK parameters in named.rs).
        p.arrival = ArrivalProcess::Mmpp {
            calm_gap: 3000.0,
            burst_gap: 30.0,
            enter_burst: 0.40,
            exit_burst: 0.02,
        };
        let bursty = TraceAlikeModel::new(p);
        let smooth = TraceAlikeModel::new(base_params());
        let sb = TraceStats::from_trace(&bursty.generate(20_000, 16));
        let ss = TraceStats::from_trace(&smooth.generate(20_000, 16));
        assert!(
            sb.cv_interarrival > 1.3 * ss.cv_interarrival,
            "bursty cv {} vs smooth cv {}",
            sb.cv_interarrival,
            ss.cv_interarrival
        );
    }

    #[test]
    fn mmpp_produces_tight_burst_episodes() {
        let mut p = base_params();
        p.arrival = ArrivalProcess::Mmpp {
            calm_gap: 500.0,
            burst_gap: 2.0,
            enter_burst: 0.02,
            exit_burst: 0.05,
        };
        let m = TraceAlikeModel::new(p);
        let t = m.generate(10_000, 17);
        // Somewhere there must be a run of 10 consecutive gaps under 20s.
        let gaps: Vec<f64> = t
            .jobs()
            .windows(2)
            .map(|w| w[1].submit_time - w[0].submit_time)
            .collect();
        let has_burst = gaps.windows(10).any(|w| w.iter().all(|&g| g < 20.0));
        assert!(has_burst, "no burst episode found");
    }

    #[test]
    fn runtime_mean_is_roughly_calibrated() {
        let m = TraceAlikeModel::new(base_params());
        let t = m.generate(20_000, 18);
        let mean_actual: f64 = t.jobs().iter().map(|j| j.run_time).sum::<f64>() / t.len() as f64;
        // Clamping to max_runtime biases the mean down a little.
        assert!(
            (mean_actual - 3000.0).abs() / 3000.0 < 0.25,
            "actual mean {mean_actual}"
        );
    }

    #[test]
    #[should_panic(expected = "menu")]
    fn empty_menu_rejected() {
        let mut p = base_params();
        p.size_menu.clear();
        let _ = TraceAlikeModel::new(p);
    }

    #[test]
    #[should_panic(expected = "fit the cluster")]
    fn oversized_menu_entry_rejected() {
        let mut p = base_params();
        p.size_menu.push((1024, 1.0));
        let _ = TraceAlikeModel::new(p);
    }
}
