//! The serving parity suite: decisions scored through the sharded,
//! request-coalescing server are **bit-identical** to sequential
//! in-process `Agent::as_policy` decisions — for every `PolicyKind`, at
//! any shard count, under concurrent traffic that perturbs batch
//! composition, on both SIMD dispatch arms (CI re-runs this whole file
//! with `RLSCHED_FORCE_SCALAR=1`).
//!
//! The guarantee composes from: shared snapshot/view encoding, exact
//! float round-trips through both wire formats (JSON via
//! shortest-round-trip formatting, binary via `to_le_bytes` verbatim),
//! `ScorerSnapshot` using `as_policy`'s per-architecture
//! representation, and the forward kernels' row-count invariance. Equal
//! `EpisodeMetrics` is the strongest possible check here: a single
//! different decision anywhere in an episode cascades into different
//! schedules and metrics.
//!
//! Most tests connect through `ServerHandle::connect`, so the whole
//! file follows the `RLSCHED_WIRE` pin (CI re-runs it with
//! `RLSCHED_WIRE=binary-uds` next to the `RLSCHED_FORCE_SCALAR` arm);
//! the matrix test below additionally pins every
//! {JSON, binary} × {TCP, UDS} combination explicitly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rlsched_rl::PpoConfig;
use rlsched_serve::{
    ClientError, ListenAddr, RemotePolicy, ServeClient, ServeConfig, ServedBy, Server, ServerAddr,
    WireProtocol,
};
use rlsched_sim::{run_episode, MetricKind, SimConfig};
use rlsched_swf::{Job, JobTrace};
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind};

/// A toy trace with enough queue contention that policies differ.
fn toy_trace() -> JobTrace {
    let jobs = (0..40u32)
        .map(|i| {
            Job::new(
                i + 1,
                i as f64 * 15.0,
                60.0 + (i % 5) as f64 * 150.0,
                1 + (i % 4),
                900.0 + (i % 3) as f64 * 600.0,
            )
        })
        .collect();
    JobTrace::new(jobs, 4)
}

fn agent_for(kind: PolicyKind, seed: u64) -> Agent {
    // LeNet needs max_obsv % 4 == 0 and >= 64; everyone else runs a
    // small window for speed.
    let max_obsv = if kind == PolicyKind::LeNet { 64 } else { 16 };
    Agent::new(AgentConfig {
        policy: kind,
        obs: ObsConfig {
            max_obsv,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig::default(),
        seed,
    })
}

/// Background clients hammering the server with valid raw requests, so
/// the foreground episode's decisions land in batches of varying
/// composition. Returns a stop flag and the join handles.
fn spawn_noise(
    addr: ServerAddr,
    obs_dim: usize,
    n_actions: usize,
    n_threads: usize,
) -> (Arc<AtomicBool>, Vec<std::thread::JoinHandle<()>>) {
    let stop = Arc::new(AtomicBool::new(false));
    let handles = (0..n_threads)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect_any(&addr)
                    .expect("noise client connects")
                    .with_id_base(1_000_000 * (t as u64 + 1));
                // A fixed valid row: 3 live slots, the rest padding.
                let mut obs = vec![0.0f32; obs_dim];
                let mut mask = vec![-1e9f32; n_actions];
                let feats = obs_dim / n_actions;
                for slot in 0..3 {
                    for f in 0..feats {
                        obs[slot * feats + f] = 0.1 + 0.2 * (slot as f32) + 0.01 * f as f32;
                    }
                    mask[slot] = 0.0;
                }
                while !stop.load(Ordering::Relaxed) {
                    match client.score_raw(&obs, &mask, 3) {
                        Ok(d) => assert!(d.action < 3, "noise action in range"),
                        Err(ClientError::Shed) => {}
                        Err(_) => break, // server shut down under us
                    }
                }
            })
        })
        .collect();
    (stop, handles)
}

/// The tentpole guarantee, end to end over TCP: same trace, same
/// weights — remote coalesced decisions == in-process sequential
/// decisions, exactly, for every architecture, while concurrent noise
/// traffic reshapes every coalesced batch.
#[test]
fn served_decisions_are_bit_identical_to_as_policy_all_kinds() {
    let trace = toy_trace();
    for kind in PolicyKind::all() {
        let agent = agent_for(kind, 11);
        let expected = run_episode(&trace, SimConfig::default(), &mut agent.as_policy()).unwrap();

        let handle = Server::spawn(
            agent.scorer_snapshot(),
            *agent.encoder(),
            ServeConfig {
                shards: 3,
                coalesce_window: Duration::from_micros(200),
                ..ServeConfig::default()
            },
        )
        .expect("server spawns");
        let (stop, noise) = spawn_noise(
            handle.server_addr().clone(),
            agent.encoder().obs_dim(),
            agent.encoder().n_actions(),
            2,
        );

        let client = handle.connect().expect("client connects");
        let mut policy = RemotePolicy::new(client, agent.encoder().cfg.max_obsv);
        let remote = run_episode(&trace, SimConfig::default(), &mut policy).unwrap();
        assert_eq!(
            policy.sheds(),
            0,
            "{}: nothing shed at this load",
            kind.name()
        );
        assert_eq!(
            policy.remote_fallbacks(),
            0,
            "{}: every decision came from the model arm",
            kind.name()
        );
        assert_eq!(
            expected,
            remote,
            "{}: remote episode must match as_policy exactly",
            kind.name()
        );

        stop.store(true, Ordering::Relaxed);
        let stats = handle.shutdown();
        for h in noise {
            h.join().expect("noise thread exits cleanly");
        }
        assert!(stats.served > 0, "{}: server did work", kind.name());
        assert!(
            stats.max_batch >= 1,
            "{}: batches were dispatched",
            kind.name()
        );
    }
}

/// Shard count must never change a decision: routing only picks *where*
/// a row is scored, and every shard's replica computes the same bits.
#[test]
fn decisions_are_invariant_across_shard_counts() {
    let trace = toy_trace();
    let agent = agent_for(PolicyKind::Kernel, 23);
    let expected = run_episode(&trace, SimConfig::with_backfill(), &mut agent.as_policy()).unwrap();
    for shards in [1usize, 4] {
        let handle = Server::spawn(
            agent.scorer_snapshot(),
            *agent.encoder(),
            ServeConfig {
                shards,
                ..ServeConfig::default()
            },
        )
        .expect("server spawns");
        let client = handle
            .connect()
            .expect("client connects")
            // Distinct id streams route to distinct shards.
            .with_id_base(7919 * shards as u64);
        let mut policy = RemotePolicy::new(client, agent.encoder().cfg.max_obsv);
        let remote = run_episode(&trace, SimConfig::with_backfill(), &mut policy).unwrap();
        assert_eq!(expected, remote, "{shards}-shard episode diverged");
        handle.shutdown();
    }
}

/// Hot swap: in-flight traffic keeps being answered, the swap is
/// atomic per batch, and post-swap decisions are the new agent's bits.
#[test]
fn hot_swap_serves_new_weights_without_dropping_requests() {
    let trace = toy_trace();
    let agent_a = agent_for(PolicyKind::MlpV2, 5);
    let agent_b = agent_for(PolicyKind::MlpV2, 6); // different weights
    let expect_b = run_episode(&trace, SimConfig::default(), &mut agent_b.as_policy()).unwrap();

    let handle = Server::spawn(
        agent_a.scorer_snapshot(),
        *agent_a.encoder(),
        ServeConfig::default(),
    )
    .expect("server spawns");
    let (stop, noise) = spawn_noise(
        handle.server_addr().clone(),
        agent_a.encoder().obs_dim(),
        agent_a.encoder().n_actions(),
        2,
    );
    // Let A serve some traffic, then swap under load.
    std::thread::sleep(Duration::from_millis(20));
    handle.swap_scorer(agent_b.scorer_snapshot());

    let client = handle.connect().expect("client connects");
    let mut policy = RemotePolicy::new(client, agent_b.encoder().cfg.max_obsv);
    let remote = run_episode(&trace, SimConfig::default(), &mut policy).unwrap();
    assert_eq!(expect_b, remote, "post-swap decisions are agent B's");

    stop.store(true, Ordering::Relaxed);
    let stats = handle.shutdown();
    for h in noise {
        h.join().expect("noise thread exits");
    }
    assert_eq!(stats.swaps, 1);
    assert!(stats.served > 0);
}

/// Backpressure: a depth-1 inbox behind a slow coalescing window must
/// shed — and every request still gets exactly one response.
#[test]
fn full_inboxes_shed_and_every_request_is_answered() {
    use rlsched_serve::protocol::{read_frame, write_frame, Request, Response};
    use std::io::BufReader;

    let agent = agent_for(PolicyKind::Kernel, 31);
    let handle = Server::spawn(
        agent.scorer_snapshot(),
        *agent.encoder(),
        ServeConfig {
            shards: 1,
            batch_cap: 4,
            // Drain is throttled to ≤ 4 rows / 5 ms, so a burst of
            // back-to-back requests must overflow the depth-1 inbox.
            coalesce_window: Duration::from_millis(5),
            queue_depth: 1,
            // No fallback: this test pins the bare-shed semantics.
            fallback: None,
            // Raw TcpStream below: pin TCP regardless of RLSCHED_WIRE.
            addr: ListenAddr::Tcp("127.0.0.1:0".into()),
            ..ServeConfig::default()
        },
    )
    .expect("server spawns");

    // Fire-and-forget burst on a raw connection, then drain replies.
    const N: u64 = 256;
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let obs_dim = agent.encoder().obs_dim();
    let n_actions = agent.encoder().n_actions();
    let mut obs = vec![0.0f32; obs_dim];
    let mut mask = vec![-1e9f32; n_actions];
    obs[..obs_dim / n_actions].fill(0.5);
    mask[0] = 0.0;
    for id in 0..N {
        write_frame(
            &mut writer,
            &Request::ScoreRaw {
                id,
                obs: obs.clone(),
                mask: mask.clone(),
                queue_len: 1,
            },
        )
        .unwrap();
    }
    let mut actions = 0u64;
    let mut sheds = 0u64;
    let mut seen = vec![false; N as usize];
    for _ in 0..N {
        match read_frame::<Response, _>(&mut reader).unwrap().unwrap() {
            Response::Action { id, action, .. } => {
                actions += 1;
                assert_eq!(action, 0, "single-job queue has one valid action");
                assert!(!std::mem::replace(&mut seen[id as usize], true));
            }
            Response::Shed { id } => {
                sheds += 1;
                assert!(!std::mem::replace(&mut seen[id as usize], true));
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(actions + sheds, N, "every request answered exactly once");
    assert!(sheds > 0, "depth-1 inbox under burst load must shed");
    let stats = handle.shutdown();
    assert_eq!(stats.served, actions);
    assert_eq!(stats.shed, sheds);
    assert!(stats.p99_us >= stats.p50_us);
    assert!(stats.max_us > 0.0);
}

/// Protocol robustness: a malformed line gets an error report and the
/// connection keeps working; an empty snapshot is rejected.
#[test]
fn malformed_frames_report_errors_and_resync() {
    use rlsched_serve::protocol::{read_frame, write_frame, Request, Response};
    use std::io::{BufReader, Write};

    let agent = agent_for(PolicyKind::Kernel, 41);
    let handle = Server::spawn(
        agent.scorer_snapshot(),
        *agent.encoder(),
        ServeConfig {
            // Raw TcpStream below: pin TCP regardless of RLSCHED_WIRE.
            addr: ListenAddr::Tcp("127.0.0.1:0".into()),
            ..ServeConfig::default()
        },
    )
    .expect("server spawns");
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writer.write_all(b"this is not json\n").unwrap();
    let resp: Response = read_frame(&mut reader).unwrap().unwrap();
    assert!(
        matches!(resp, Response::Error { id: 0, .. }),
        "garbage line reports a parse error: {resp:?}"
    );

    // Empty snapshot: rejected with the request's id.
    write_frame(
        &mut writer,
        &Request::Score {
            id: 9,
            snapshot: rlscheduler::QueueSnapshot {
                free_procs: 1,
                total_procs: 4,
                queue_len: 0,
                jobs: vec![],
            },
        },
    )
    .unwrap();
    let resp: Response = read_frame(&mut reader).unwrap().unwrap();
    assert!(matches!(resp, Response::Error { id: 9, .. }), "{resp:?}");

    // The connection still scores after both errors.
    let mut client = handle.connect().unwrap();
    let trace = toy_trace();
    let view_probe = run_episode(&trace, SimConfig::default(), &mut agent.as_policy()).unwrap();
    drop(view_probe);
    let mut obs = vec![0.0f32; agent.encoder().obs_dim()];
    let mut mask = vec![-1e9f32; agent.encoder().n_actions()];
    obs[..rlscheduler::JOB_FEATURES].fill(0.3);
    mask[0] = 0.0;
    let out = client.score_raw(&obs, &mask, 1).unwrap();
    assert_eq!(out.action, 0);
    assert_eq!(out.served_by, ServedBy::Model);
    handle.shutdown();
}

/// The stats round trip over the wire, and the histogram's sanity.
#[test]
fn stats_are_queryable_over_the_wire() {
    let agent = agent_for(PolicyKind::Kernel, 51);
    let handle = Server::spawn(
        agent.scorer_snapshot(),
        *agent.encoder(),
        ServeConfig::default(),
    )
    .expect("server spawns");
    let mut client = handle.connect().unwrap();
    let mut obs = vec![0.0f32; agent.encoder().obs_dim()];
    let mut mask = vec![-1e9f32; agent.encoder().n_actions()];
    obs[..rlscheduler::JOB_FEATURES].fill(0.7);
    mask[0] = 0.0;
    for _ in 0..10 {
        client.score_raw(&obs, &mask, 1).unwrap();
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.served, 10);
    assert_eq!(stats.shed, 0);
    assert!(stats.batches >= 1 && stats.batches <= 10);
    assert!(stats.mean_batch() >= 1.0);
    assert!(stats.p50_us > 0.0 && stats.p50_us <= stats.p99_us);
    let final_stats = handle.shutdown();
    assert_eq!(final_stats.served, 10);
}

/// The headline invariant of the wire-format work: served decisions are
/// bit-identical across {JSON, binary} × {TCP, UDS} × shard count. The
/// transport moves bytes and the format arranges them; neither may
/// change a single decision. Every cell replays the same episode and
/// must equal the in-process `as_policy` metrics exactly.
#[test]
fn decisions_are_identical_across_protocols_and_transports() {
    let trace = toy_trace();
    let agent = agent_for(PolicyKind::Kernel, 61);
    let expected = run_episode(&trace, SimConfig::with_backfill(), &mut agent.as_policy()).unwrap();

    type ListenerArm = (&'static str, fn() -> ListenAddr);
    let listeners: Vec<ListenerArm> = vec![
        ("tcp", || ListenAddr::Tcp("127.0.0.1:0".into())),
        #[cfg(unix)]
        ("uds", || ListenAddr::unix_temp("parity-matrix")),
    ];
    for (transport, listen) in listeners {
        for shards in [1usize, 3] {
            let handle = Server::spawn(
                agent.scorer_snapshot(),
                *agent.encoder(),
                ServeConfig {
                    shards,
                    addr: listen(),
                    ..ServeConfig::default()
                },
            )
            .expect("server spawns");
            for proto in [WireProtocol::Json, WireProtocol::Binary] {
                let client = handle
                    .connect()
                    .expect("client connects")
                    .with_protocol(proto)
                    // Distinct id streams per cell perturb shard routing.
                    .with_id_base(1000 * shards as u64);
                let mut policy = RemotePolicy::new(client, agent.encoder().cfg.max_obsv);
                let remote = run_episode(&trace, SimConfig::with_backfill(), &mut policy).unwrap();
                assert_eq!(
                    expected,
                    remote,
                    "{}/{transport}/{shards}-shard episode diverged",
                    proto.name()
                );
                assert_eq!(policy.remote_fallbacks(), 0);
                assert_eq!(policy.sheds(), 0);
            }
            handle.shutdown();
        }
    }
}
