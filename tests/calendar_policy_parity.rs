//! Calendar parity at the policy level: episodes scheduled by every
//! `PolicyKind` produce bit-identical metrics whether the session's wait
//! queue is the Fenwick-indexed calendar (`IndexedQueue`, the default)
//! or the historical linear scan (`LinearQueue`). The sim-level
//! `calendar_parity` suite pins the backends' op-for-op equivalence;
//! this pins the full RL decision loop on top (and runs on both SIMD
//! dispatch arms in CI, since the policies score through the kernels).

use rlsched_repro::core::{Agent, AgentConfig, ObsConfig, PolicyKind};
use rlsched_repro::sim::{run_episode, LinearQueue, MetricKind, Policy, SchedSession, SimConfig};
use rlsched_repro::workload::NamedWorkload;

#[test]
fn every_policy_kind_is_backend_invariant() {
    let trace = NamedWorkload::Lublin1.generate(200, 13);
    for kind in PolicyKind::all() {
        let mut cfg = AgentConfig {
            policy: kind,
            obs: ObsConfig {
                max_obsv: 16,
                ..ObsConfig::default()
            },
            metric: MetricKind::BoundedSlowdown,
            ppo: Default::default(),
            seed: 9,
        };
        if kind == PolicyKind::LeNet {
            cfg.obs.max_obsv = 64;
        }
        let agent = Agent::new(cfg);
        for sim in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
            // Indexed calendar: the default session, via the stock runner.
            let indexed = run_episode(&trace, sim, &mut agent.as_policy()).unwrap();

            // Linear scan: the same episode on the historical backend.
            let mut policy = agent.as_policy();
            let mut session = SchedSession::<LinearQueue>::with_queue(&trace, sim).unwrap();
            while !session.done() {
                let view = session.view();
                let pos = policy.select(&view);
                session.step(pos).unwrap();
            }
            let linear = session.metrics().unwrap();

            assert_eq!(
                indexed, linear,
                "{kind:?} diverged across queue backends under {sim:?}"
            );
        }
    }
}
