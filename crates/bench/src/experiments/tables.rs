//! Table generators: Tables II, V, VI, VII, VIII, IX, X, XI of the paper.

use std::time::Instant;

use serde_json::json;

use rlsched_sched::{HeuristicKind, PriorityScheduler};
use rlsched_sim::{MetricKind, Policy, QueueView, SimConfig, WaitingJob};
use rlsched_swf::{Job, TraceStats};
use rlsched_workload::NamedWorkload;
use rlscheduler::{evaluate_policy, mean_metric, sample_eval_windows, FilterMode, PolicyKind};

use crate::experiments::{best_of, scheduler_row, worst_of};
use crate::profile::Profile;
use crate::report::{fmt_metric, Report};

/// Table II: characteristics of the six job traces.
pub fn table2(p: &Profile, report: &mut Report) {
    report.section("Table II: job trace characteristics");
    let mut rows = Vec::new();
    for w in NamedWorkload::all() {
        let t = p.trace(w);
        let s = TraceStats::from_trace(&t);
        let tg = w.targets();
        rows.push(vec![
            w.name().to_string(),
            s.max_procs.to_string(),
            fmt_metric(s.mean_interarrival),
            fmt_metric(s.mean_run_time),
            fmt_metric(s.mean_requested_procs),
            format!("({}/{}/{})", tg.it, tg.rt, tg.nt),
        ]);
        report.record(
            w.name(),
            json!({
                "size": s.max_procs, "it": s.mean_interarrival,
                "rt": s.mean_requested_time, "nt": s.mean_requested_procs,
                "target": {"it": tg.it, "rt": tg.rt, "nt": tg.nt},
                "cv_interarrival": s.cv_interarrival,
                "users": s.users, "max_user_jobs": s.max_user_jobs,
            }),
        );
    }
    report.table(
        &["Trace", "size", "it(s)", "rt(s)", "nt", "paper (it/rt/nt)"],
        &rows,
    );
}

/// The scheduling-grid tables: V (bsld), VI (util), X (slowdown),
/// XI (wait). One RL agent is trained per (trace, backfill mode) on the
/// table's metric, then all schedulers run the same sampled windows.
pub fn scheduling_grid(p: &Profile, metric: MetricKind, table_name: &str, report: &mut Report) {
    report.section(&format!(
        "{table_name}: scheduling toward {} ({} profile)",
        metric.name(),
        p.name
    ));
    for (mode_name, sim) in [
        ("without backfilling", SimConfig::no_backfill()),
        ("with backfilling", SimConfig::with_backfill()),
    ] {
        let mut rows = Vec::new();
        for (wi, w) in NamedWorkload::training_four().iter().enumerate() {
            let trace = p.trace(*w);
            let windows = sample_eval_windows(&trace, p.eval_seqs, p.eval_len, p.seed ^ 0xEA11);
            let (agent, _curve) = p.train_agent(
                *w,
                PolicyKind::Kernel,
                metric,
                sim,
                FilterMode::Off,
                0x7AB1E
                    ^ (wi as u64) << 8
                    ^ metric.name().len() as u64
                    ^ (sim.backfill == rlsched_sim::BackfillMode::Easy) as u64,
            );
            let row = scheduler_row(&windows, sim, metric, Some(&agent));
            let best = best_of(&row, metric);
            report.record(
                &format!("{}/{}", mode_name, w.name()),
                json!(row
                    .iter()
                    .map(|(n, v)| json!({"sched": n, "value": v}))
                    .collect::<Vec<_>>()),
            );
            let mut cells = vec![w.name().to_string()];
            cells.extend(row.iter().map(|(n, v)| {
                let s = fmt_metric(*v);
                if *n == best.0 {
                    format!("*{s}")
                } else {
                    s
                }
            }));
            rows.push(cells);
        }
        println!("\n-- {mode_name} (* = best) --");
        report.table(
            &["Trace", "FCFS", "WFP3", "UNICEP", "SJF", "F1", "RL"],
            &rows,
        );
    }
}

/// Table VII: transfer — apply RL-X (trained on X, bsld) to every trace Y.
pub fn table7(p: &Profile, report: &mut Report) {
    report.section("Table VII: RL-X models applied to other traces (bsld)");
    let metric = MetricKind::BoundedSlowdown;
    let train_on = NamedWorkload::training_four();
    let eval_on = [
        NamedWorkload::Lublin1,
        NamedWorkload::SdscSp2,
        NamedWorkload::Hpc2n,
        NamedWorkload::Lublin2,
        NamedWorkload::AnlIntrepid,
    ];

    for (mode_name, sim) in [
        ("without backfilling", SimConfig::no_backfill()),
        ("with backfilling", SimConfig::with_backfill()),
    ] {
        // Train one model per source trace.
        let agents: Vec<_> = train_on
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let (agent, _) = p.train_agent(
                    *w,
                    PolicyKind::Kernel,
                    metric,
                    sim,
                    FilterMode::Off,
                    0x77AB
                        ^ (i as u64) << 4
                        ^ (sim.backfill == rlsched_sim::BackfillMode::Easy) as u64,
                );
                agent
            })
            .collect();

        let mut rows = Vec::new();
        for y in eval_on {
            let trace = p.trace(y);
            let windows = sample_eval_windows(&trace, p.eval_seqs, p.eval_len, p.seed ^ 0x7E57);
            let heur = scheduler_row(&windows, sim, metric, None);
            let best = best_of(&heur, metric);
            let worst = worst_of(&heur, metric);
            let mut cells = vec![
                y.name().to_string(),
                format!("{} ({})", fmt_metric(best.1), best.0),
                format!("{} ({})", fmt_metric(worst.1), worst.0),
            ];
            let mut cross = Vec::new();
            for agent in &agents {
                let r = evaluate_policy(&windows, sim, &mut agent.as_policy());
                let v = mean_metric(&r, metric);
                cross.push(v);
                cells.push(fmt_metric(v));
            }
            report.record(
                &format!("{}/{}", mode_name, y.name()),
                json!({
                    "best_heuristic": {"name": best.0, "value": best.1},
                    "worst_heuristic": {"name": worst.0, "value": worst.1},
                    "rl_models": train_on.iter().zip(&cross)
                        .map(|(w, v)| json!({"trained_on": w.name(), "value": v}))
                        .collect::<Vec<_>>(),
                }),
            );
            rows.push(cells);
        }
        println!("\n-- {mode_name} --");
        report.table(
            &[
                "Trace",
                "Best Heur",
                "Worst Heur",
                "RL-Lublin-1",
                "RL-SDSC-SP2",
                "RL-HPC2N",
                "RL-Lublin-2",
            ],
            &rows,
        );
    }
}

/// Table VIII: bounded slowdown with Maximal fairness, on the two traces
/// that carry user structure (SDSC-SP2, HPC2N).
pub fn table8(p: &Profile, report: &mut Report) {
    report.section("Table VIII: bsld with Maximal per-user fairness");
    let metric = MetricKind::FairMaxBoundedSlowdown;
    for (mode_name, sim) in [
        ("without backfilling", SimConfig::no_backfill()),
        ("with backfilling", SimConfig::with_backfill()),
    ] {
        let mut rows = Vec::new();
        for (i, w) in [NamedWorkload::SdscSp2, NamedWorkload::Hpc2n]
            .iter()
            .enumerate()
        {
            let trace = p.trace(*w);
            let windows = sample_eval_windows(&trace, p.eval_seqs, p.eval_len, p.seed ^ 0xFA1E);
            let (agent, _) = p.train_agent(
                *w,
                PolicyKind::Kernel,
                metric,
                sim,
                FilterMode::Off,
                0xFA17 ^ (i as u64) << 3 ^ (sim.backfill == rlsched_sim::BackfillMode::Easy) as u64,
            );
            let row = scheduler_row(&windows, sim, metric, Some(&agent));
            let best = best_of(&row, metric);
            report.record(
                &format!("{}/{}", mode_name, w.name()),
                json!(row
                    .iter()
                    .map(|(n, v)| json!({"sched": n, "value": v}))
                    .collect::<Vec<_>>()),
            );
            let mut cells = vec![w.name().to_string()];
            cells.extend(row.iter().map(|(n, v)| {
                let s = fmt_metric(*v);
                if *n == best.0 {
                    format!("*{s}")
                } else {
                    s
                }
            }));
            rows.push(cells);
        }
        println!("\n-- {mode_name} (* = best) --");
        report.table(
            &["Trace", "FCFS", "WFP3", "UNICEP", "SJF", "F1", "RL"],
            &rows,
        );
    }
}

/// Table IX: computational cost — decision latency for 128 pending jobs
/// (SJF sort vs RL DNN inference) and one training epoch.
pub fn table9(p: &Profile, report: &mut Report) {
    report.section("Table IX: computational cost");

    // A 128-job decision point.
    let jobs: Vec<Job> = (0..128u32)
        .map(|i| {
            Job::new(
                i + 1,
                i as f64,
                60.0 + i as f64 * 7.0,
                1 + i % 16,
                100.0 + i as f64 * 9.0,
            )
        })
        .collect();
    let view = QueueView {
        time: 1000.0,
        free_procs: 64,
        total_procs: 256,
        waiting: jobs
            .iter()
            .enumerate()
            .map(|(i, job)| WaitingJob {
                job,
                job_index: i,
                wait: 1000.0 - job.submit_time,
                can_run_now: job.procs() <= 64,
            })
            .collect(),
    };

    let mut sjf = PriorityScheduler::new(HeuristicKind::Sjf);
    let reps = 2000;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(sjf.select(&view));
    }
    let sjf_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    // The paper times the 128-slot DNN; build the full-size agent.
    let full_agent = Profile {
        max_obsv: 128,
        ..*p
    }
    .agent(PolicyKind::Kernel, MetricKind::BoundedSlowdown, 0x71ED);
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(full_agent.greedy_select(&view));
    }
    let rl_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    // One training epoch at profile scale.
    let trace = p.trace(NamedWorkload::Lublin1);
    let mut agent = p.agent(PolicyKind::Kernel, MetricKind::BoundedSlowdown, 0x71EE);
    let mut cfg = p.train_cfg(SimConfig::default(), FilterMode::Off);
    cfg.epochs = 1;
    let t0 = Instant::now();
    let _ = rlscheduler::train(&mut agent, &trace, &cfg);
    let epoch_s = t0.elapsed().as_secs_f64();

    let rows = vec![
        vec![
            "SJF sorts 128 jobs and picks one".to_string(),
            format!("{sjf_ms:.3} ms"),
        ],
        vec![
            "RLScheduler DNN makes a decision (128 jobs)".to_string(),
            format!("{rl_ms:.3} ms"),
        ],
        vec![
            format!(
                "RLScheduler training, one epoch ({} traj x {} jobs)",
                cfg.trajectories_per_epoch, cfg.seq_len
            ),
            format!("{epoch_s:.2} s"),
        ],
        vec![
            "Estimated convergence (x epochs-to-converge)".to_string(),
            format!(
                "{:.1} min for ~{} epochs",
                epoch_s * p.epochs as f64 / 60.0,
                p.epochs
            ),
        ],
    ];
    report.table(&["Operation", "Time"], &rows);
    report.record(
        "timings",
        json!({
            "sjf_decision_ms": sjf_ms,
            "rl_decision_ms": rl_ms,
            "epoch_seconds": epoch_s,
            "paper": {"sjf_decision_ms": 0.71, "rl_decision_ms": 0.30, "epoch_seconds": 123.0}
        }),
    );
}
