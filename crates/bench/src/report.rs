//! Console tables and JSON result files.
//!
//! Two kinds of machine-readable output exist:
//!
//! * Experiment results — `results/<experiment>.json`, written by
//!   [`Report::save`] from the `repro` binary's table/figure generators.
//! * Microbenchmark medians — `BENCH_<bench-name>.json` (e.g.
//!   `BENCH_decision_latency.json`, `BENCH_ppo_update.json`), written
//!   automatically by the criterion shim when `cargo bench` finishes:
//!   one entry per benchmark id with `median_ns` and the calibrated
//!   iterations per sample. Files land in the working directory (or
//!   `$BENCH_OUT_DIR`); committing or archiving them per PR gives a
//!   perf trajectory that can be diffed without parsing console logs.
//!   [`load_bench_report`] reads one back.

use std::fs;
use std::path::{Path, PathBuf};

use serde_json::Value;

/// List every `BENCH_*.json` report in `dir`, sorted by file name.
/// Pattern-based, so a new bench (e.g. `BENCH_serving.json` from
/// `serving_throughput`) shows up in the perf-trajectory tooling
/// without special-casing.
pub fn list_bench_reports(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    out.sort();
    Ok(out)
}

/// One bench file's parsed trajectory entries: the bench name (file
/// name without the `BENCH_`/`.json` wrapping) and its sorted
/// `(benchmark id, median ns/iter)` pairs.
pub type BenchReport = (String, Vec<(String, f64)>);

/// Load every bench report in `dir` ([`list_bench_reports`] order).
/// Files that fail to parse are skipped — one truncated artifact must
/// not hide the rest of the trajectory.
pub fn load_bench_reports(dir: &Path) -> std::io::Result<Vec<BenchReport>> {
    Ok(list_bench_reports(dir)?
        .into_iter()
        .filter_map(|path| {
            let name = path
                .file_name()?
                .to_str()?
                .trim_start_matches("BENCH_")
                .trim_end_matches(".json")
                .to_string();
            load_bench_report(&path).ok().map(|entries| (name, entries))
        })
        .collect())
}

/// Parse a `BENCH_<name>.json` file produced by `cargo bench` into
/// `(benchmark id, median ns/iter)` pairs, sorted by id.
pub fn load_bench_report(path: &Path) -> std::io::Result<Vec<(String, f64)>> {
    let text = fs::read_to_string(path)?;
    let v: Value = serde_json::from_str(&text)?;
    let obj = v
        .as_object()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "not an object"))?;
    let mut out: Vec<(String, f64)> = obj
        .iter()
        .filter_map(|(k, entry)| {
            entry
                .get("median_ns")
                .and_then(Value::as_f64)
                .map(|m| (k.clone(), m))
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Collects one experiment's output: a human-readable table on stdout and
/// a machine-readable JSON file under `results/`.
pub struct Report {
    experiment: String,
    json: serde_json::Map<String, Value>,
    out_dir: PathBuf,
}

impl Report {
    /// Start a report for an experiment id (e.g. `"table5"`).
    pub fn new(experiment: &str, out_dir: &str) -> Self {
        Report {
            experiment: experiment.to_string(),
            json: serde_json::Map::new(),
            out_dir: PathBuf::from(out_dir),
        }
    }

    /// Print a section heading.
    pub fn section(&self, title: &str) {
        println!("\n=== {title} ===");
    }

    /// Print one fixed-width table.
    pub fn table(&self, headers: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i.min(widths.len() - 1)]));
            }
            println!("{}", s.trim_end());
        };
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
        line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
        for row in rows {
            line(row);
        }
    }

    /// Attach a JSON value to the result file.
    pub fn record(&mut self, key: &str, value: Value) {
        self.json.insert(key.to_string(), value);
    }

    /// Write `results/<experiment>.json`. Returns the path.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(format!("{}.json", self.experiment));
        fs::write(
            &path,
            serde_json::to_string_pretty(&Value::Object(self.json.clone()))?,
        )?;
        println!("\n[saved {}]", path.display());
        Ok(path)
    }
}

/// Format a metric value the way the paper's tables do (4-5 significant
/// figures, no scientific notation for the typical ranges).
pub fn fmt_metric(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_metric_ranges() {
        assert_eq!(fmt_metric(0.0), "0");
        assert_eq!(fmt_metric(0.657), "0.657");
        assert_eq!(fmt_metric(58.64), "58.64");
        assert_eq!(fmt_metric(7273.8), "7274");
    }

    #[test]
    fn report_saves_json() {
        let dir = std::env::temp_dir().join("rlsched-report-test");
        let mut r = Report::new("unit", dir.to_str().unwrap());
        r.record("answer", serde_json::json!(42));
        let path = r.save().unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("42"));
    }

    #[test]
    fn bench_report_round_trip() {
        let dir = std::env::temp_dir().join("rlsched-bench-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_unit.json");
        std::fs::write(
            &path,
            "{\n  \"g/a\": {\"median_ns\": 120.5, \"iters_per_sample\": 10},\n  \"g/b\": {\"median_ns\": 80.0, \"iters_per_sample\": 5}\n}\n",
        )
        .unwrap();
        let entries = load_bench_report(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "g/a");
        assert!((entries[0].1 - 120.5).abs() < 1e-9);
    }

    #[test]
    fn report_listing_picks_up_new_bench_files() {
        // The serving bench's report must ride along with the existing
        // files with zero special-casing — any BENCH_*.json counts.
        let dir = std::env::temp_dir().join("rlsched-bench-listing-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let body = "{\n  \"g/x\": {\"median_ns\": 10.0, \"iters_per_sample\": 1}\n}\n";
        for name in [
            "BENCH_serving.json",
            "BENCH_decision_latency.json",
            "BENCH_ppo_update.json",
        ] {
            std::fs::write(dir.join(name), body).unwrap();
        }
        std::fs::write(dir.join("not_a_report.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_truncated.json"), "{\"oops").unwrap();

        let listed = list_bench_reports(&dir).unwrap();
        let names: Vec<_> = listed
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "BENCH_decision_latency.json",
                "BENCH_ppo_update.json",
                "BENCH_serving.json",
                "BENCH_truncated.json"
            ],
            "sorted, BENCH_-prefixed only"
        );

        let loaded = load_bench_reports(&dir).unwrap();
        let loaded_names: Vec<_> = loaded.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            loaded_names,
            vec!["decision_latency", "ppo_update", "serving"],
            "parse failures are skipped, wrapping stripped"
        );
        assert!(loaded.iter().all(|(_, e)| e.len() == 1 && e[0].1 == 10.0));
    }

    #[test]
    fn table_prints_without_panic() {
        let r = Report::new("t", "/tmp");
        r.table(
            &["a", "metric"],
            &[
                vec!["x".into(), "1.0".into()],
                vec!["yyyy".into(), "2.5".into()],
            ],
        );
    }
}
