//! First-order optimizers: Adam (the paper trains with learning rate 1e-3,
//! §V-A) and plain SGD, plus global-norm gradient clipping.
//!
//! The Adam inner loop is SIMD-dispatched ([`crate::simd::simd_enabled`]
//! gates an AVX2 kernel): it runs once per update iteration over every
//! parameter, m/v moment and gradient, so at 80+80 iterations per PPO
//! epoch it streams the whole optimizer state hundreds of times. The
//! vector kernel performs the *same* per-element operations in the same
//! order (multiply/add/sqrt/divide, deliberately no FMA contraction), so
//! both dispatch arms produce bit-identical parameters — pinned by the
//! forced-scalar parity test below.

use crate::tensor::Tensor;

/// Adam optimizer (Kingma & Ba) with per-parameter moment state.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999, 1e-8) moments.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update step. `params` and `grads` must be index-aligned
    /// and keep the same shapes across calls.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads must align");
        self.step_params(params.iter_mut().map(|p| &mut **p), grads);
    }

    /// [`Adam::step`] over a parameter *iterator* — the allocation-free
    /// entry point for callers that can walk their parameter tensors in
    /// place (the fused PPO update iterates MLP layers directly instead
    /// of collecting a `Vec<&mut Tensor>` per iteration). The iterator
    /// must yield exactly `grads.len()` tensors in bind order.
    pub fn step_params<'a>(
        &mut self,
        mut params: impl Iterator<Item = &'a mut Tensor>,
        grads: &[Tensor],
    ) {
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
            self.v = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        assert_eq!(self.m.len(), grads.len(), "parameter set changed size");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let mut count = 0;
        // Grads drive the zip so a too-long params iterator is never
        // pulled past grads.len(): the surplus tensor stays in the
        // iterator for the trailing exhaustion assert to catch.
        for ((g, (m, v)), p) in grads
            .iter()
            .zip(self.m.iter_mut().zip(&mut self.v))
            .zip(params.by_ref())
        {
            assert_eq!(p.shape(), g.shape(), "parameter/gradient shape mismatch");
            adam_update_slice(
                p.data_mut(),
                g.data(),
                m.data_mut(),
                v.data_mut(),
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                b1t,
                b2t,
            );
            count += 1;
        }
        assert_eq!(count, grads.len(), "params/grads must align");
        assert!(
            params.next().is_none(),
            "params/grads must align (iterator yielded more than {} tensors)",
            grads.len()
        );
    }
}

/// One fused m/v/param Adam update over a parameter slice, dispatched to
/// the AVX2 kernel when available (`RLSCHED_FORCE_SCALAR` pins the scalar
/// arm). Both arms compute identical bits per element.
#[allow(clippy::too_many_arguments)] // the full Adam state, BLAS-style
fn adam_update_slice(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    b1t: f32,
    b2t: f32,
) {
    debug_assert!(g.len() == p.len() && m.len() == p.len() && v.len() == p.len());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_enabled() {
        unsafe { adam_update_avx2(p, g, m, v, lr, beta1, beta2, eps, b1t, b2t) };
        return;
    }
    adam_update_scalar(p, g, m, v, lr, beta1, beta2, eps, b1t, b2t);
}

/// Scalar reference arm: the original per-element Adam loop.
#[allow(clippy::too_many_arguments)]
fn adam_update_scalar(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    b1t: f32,
    b2t: f32,
) {
    for (((p, &gi), m), v) in p.iter_mut().zip(g).zip(m.iter_mut()).zip(v.iter_mut()) {
        let mi = beta1 * *m + (1.0 - beta1) * gi;
        let vi = beta2 * *v + (1.0 - beta2) * gi * gi;
        *m = mi;
        *v = vi;
        let mhat = mi / b1t;
        let vhat = vi / b2t;
        *p -= lr * mhat / (vhat.sqrt() + eps);
    }
}

/// AVX2 arm: 8 lanes per step, using separate multiply/add (no FMA
/// contraction) plus IEEE-exact sqrt and divide, so every lane computes
/// the *same bits* as [`adam_update_scalar`] — parameter trajectories are
/// dispatch-independent. The tail runs the scalar arm.
///
/// # Safety
/// Caller must ensure AVX2 is available and all slices share one length.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn adam_update_avx2(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    b1t: f32,
    b2t: f32,
) {
    use std::arch::x86_64::*;
    let n = p.len();
    assert!(g.len() == n && m.len() == n && v.len() == n);
    let n8 = n - n % 8;
    unsafe {
        let vb1 = _mm256_set1_ps(beta1);
        let vb1c = _mm256_set1_ps(1.0 - beta1);
        let vb2 = _mm256_set1_ps(beta2);
        let vb2c = _mm256_set1_ps(1.0 - beta2);
        let vb1t = _mm256_set1_ps(b1t);
        let vb2t = _mm256_set1_ps(b2t);
        let vlr = _mm256_set1_ps(lr);
        let veps = _mm256_set1_ps(eps);
        let mut i = 0;
        while i < n8 {
            let gi = _mm256_loadu_ps(g.as_ptr().add(i));
            let mi = _mm256_add_ps(
                _mm256_mul_ps(vb1, _mm256_loadu_ps(m.as_ptr().add(i))),
                _mm256_mul_ps(vb1c, gi),
            );
            let vi = _mm256_add_ps(
                _mm256_mul_ps(vb2, _mm256_loadu_ps(v.as_ptr().add(i))),
                _mm256_mul_ps(_mm256_mul_ps(vb2c, gi), gi),
            );
            _mm256_storeu_ps(m.as_mut_ptr().add(i), mi);
            _mm256_storeu_ps(v.as_mut_ptr().add(i), vi);
            let mhat = _mm256_div_ps(mi, vb1t);
            let vhat = _mm256_div_ps(vi, vb2t);
            let denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
            let upd = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
            let pv = _mm256_sub_ps(_mm256_loadu_ps(p.as_ptr().add(i)), upd);
            _mm256_storeu_ps(p.as_mut_ptr().add(i), pv);
            i += 8;
        }
    }
    adam_update_scalar(
        &mut p[n8..],
        &g[n8..],
        &mut m[n8..],
        &mut v[n8..],
        lr,
        beta1,
        beta2,
        eps,
        b1t,
        b2t,
    );
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with fixed learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Apply one descent step.
    pub fn step(&self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            p.axpy(-self.lr, g);
        }
    }
}

/// Scale all gradients down so their joint L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let total: f32 = grads.iter().map(|g| g.norm().powi(2)).sum::<f32>().sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            for x in g.data_mut() {
                *x *= scale;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 elementwise with each optimizer.
    fn quadratic_grad(p: &Tensor) -> Tensor {
        p.map(|x| 2.0 * (x - 3.0))
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Tensor::from_vec(vec![-5.0, 10.0], &[2]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quadratic_grad(&p);
            opt.step(&mut [&mut p], &[g]);
        }
        for &x in p.data() {
            assert!((x - 3.0).abs() < 1e-2, "x={x}");
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Tensor::from_vec(vec![-5.0, 10.0], &[2]);
        let opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quadratic_grad(&p);
            opt.step(&mut [&mut p], &[g]);
        }
        for &x in p.data() {
            assert!((x - 3.0).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn adam_bias_correction_makes_first_step_lr_sized() {
        // With a constant gradient, the very first Adam step is ~lr.
        let mut p = Tensor::from_vec(vec![0.0], &[1]);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p], &[Tensor::from_vec(vec![42.0], &[1])]);
        assert!(
            (p.data()[0] + 0.01).abs() < 1e-4,
            "step was {}",
            p.data()[0]
        );
    }

    #[test]
    fn adam_multiple_params() {
        let mut a = Tensor::from_vec(vec![0.0], &[1]);
        let mut b = Tensor::from_vec(vec![10.0], &[1]);
        let mut opt = Adam::new(0.2);
        for _ in 0..400 {
            let ga = quadratic_grad(&a);
            let gb = quadratic_grad(&b);
            opt.step(&mut [&mut a, &mut b], &[ga, gb]);
        }
        assert!((a.data()[0] - 3.0).abs() < 1e-2);
        assert!((b.data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_rejected() {
        let mut p = Tensor::zeros(&[1]);
        Adam::new(0.1).step(&mut [&mut p], &[]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn step_params_rejects_one_surplus_param() {
        // Exactly one extra tensor is the subtle case: zip would consume
        // it before stopping if params drove the zip, silently freezing
        // the surplus parameter instead of panicking.
        let mut a = Tensor::zeros(&[2]);
        let mut b = Tensor::zeros(&[2]);
        let grads = vec![Tensor::from_vec(vec![1.0, 2.0], &[2])];
        Adam::new(0.1).step_params([&mut a, &mut b].into_iter(), &grads);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn step_params_rejects_short_params() {
        let grads = vec![
            Tensor::from_vec(vec![1.0], &[1]),
            Tensor::from_vec(vec![2.0], &[1]),
        ];
        let mut a = Tensor::zeros(&[1]);
        Adam::new(0.1).step_params([&mut a].into_iter(), &grads);
    }

    #[test]
    fn clip_scales_down_only_when_needed() {
        let mut grads = vec![
            Tensor::from_vec(vec![3.0], &[1]),
            Tensor::from_vec(vec![4.0], &[1]),
        ];
        let norm = clip_global_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped: f32 = grads.iter().map(|g| g.norm().powi(2)).sum::<f32>().sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);

        let mut small = vec![Tensor::from_vec(vec![0.1], &[1])];
        clip_global_norm(&mut small, 1.0);
        assert_eq!(small[0].data(), &[0.1], "under-norm gradients untouched");
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut opt = Adam::new(0.1);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
    }

    #[test]
    fn step_params_matches_step() {
        // The iterator entry point must walk the same update as the
        // slice-of-refs one (it is the same kernel underneath).
        let grads: Vec<Tensor> = (0..3)
            .map(|k| {
                Tensor::from_vec(
                    (0..5 + k).map(|i| ((i + k) as f32 * 0.7).sin()).collect(),
                    &[5 + k],
                )
            })
            .collect();
        let mut a: Vec<Tensor> = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        let mut b = a.clone();
        let mut oa = Adam::new(0.05);
        let mut ob = Adam::new(0.05);
        for _ in 0..7 {
            let mut refs: Vec<&mut Tensor> = a.iter_mut().collect();
            oa.step(&mut refs, &grads);
            ob.step_params(b.iter_mut(), &grads);
        }
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data(), "step and step_params diverged");
        }
    }

    /// The forced-scalar parity contract of the fused m/v/param kernel:
    /// the AVX2 arm must produce the *same bits* as the scalar arm (it
    /// deliberately uses no FMA contraction), so parameter trajectories
    /// never depend on dispatch.
    #[test]
    fn adam_kernel_simd_matches_scalar_bitwise() {
        #[cfg(target_arch = "x86_64")]
        {
            if !(std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma"))
            {
                return; // no SIMD arm on this machine; nothing to compare
            }
            for n in [1usize, 7, 8, 9, 64, 129] {
                let g: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 2.0).collect();
                let mut ps = vec![0.5f32; n];
                let mut ms: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos() * 0.1).collect();
                let mut vs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.05).sin().abs()).collect();
                let (mut pv, mut mv, mut vv) = (ps.clone(), ms.clone(), vs.clone());
                adam_update_scalar(
                    &mut ps, &g, &mut ms, &mut vs, 1e-3, 0.9, 0.999, 1e-8, 0.1, 0.001,
                );
                unsafe {
                    adam_update_avx2(
                        &mut pv, &g, &mut mv, &mut vv, 1e-3, 0.9, 0.999, 1e-8, 0.1, 0.001,
                    )
                };
                assert_eq!(ps, pv, "params diverged at n={n}");
                assert_eq!(ms, mv, "first moments diverged at n={n}");
                assert_eq!(vs, vv, "second moments diverged at n={n}");
            }
        }
    }
}
