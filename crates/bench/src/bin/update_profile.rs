//! Phase profiler for the PPO update loop (sibling of
//! `lockstep_profile`): attributes update wall time to minibatch gather /
//! forward / backward / optimizer on both dispatch arms, so regressions
//! in any one phase are attributable.
//!
//! ```text
//! cargo run --release -p rlsched-bench --bin update_profile -- [reps]
//! ```
//!
//! Uses the `ppo_update` bench configuration (kernel policy @ 64-job
//! window, 5+5 iterations, minibatch 512 over an 8×128-step batch) so
//! the phase sums line up with `BENCH_ppo_update.json`'s
//! `update_5x5_iters_mb512` median. A committed reference run lives at
//! `crates/bench/PROFILE_update_phases.txt` — regenerate it alongside
//! the BENCH_*.json files when the update path changes.

use rlsched_rl::{collect_rollouts, PpoConfig, UpdateProfile};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SchedulingEnv};

fn print_profile(name: &str, p: &UpdateProfile, reps: u32, wall: std::time::Duration) {
    let total = p.total().as_secs_f64() * 1e3 / reps as f64;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3 / reps as f64;
    let pct = |d: std::time::Duration| 100.0 * d.as_secs_f64() / p.total().as_secs_f64();
    println!("{name} ({:.2} ms/update wall):", ms(wall));
    println!(
        "  gather    : {:7.2} ms  ({:4.1}%)",
        ms(p.gather),
        pct(p.gather)
    );
    println!(
        "  forward   : {:7.2} ms  ({:4.1}%)",
        ms(p.forward),
        pct(p.forward)
    );
    println!(
        "  backward  : {:7.2} ms  ({:4.1}%)",
        ms(p.backward),
        pct(p.backward)
    );
    println!(
        "  optimizer : {:7.2} ms  ({:4.1}%)",
        ms(p.optimizer),
        pct(p.optimizer)
    );
    println!("  attributed: {total:7.2} ms");
}

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(1024, 3));
    let cfg = AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 64,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig {
            train_pi_iters: 5,
            train_v_iters: 5,
            minibatch: Some(512),
            ..PpoConfig::default()
        },
        seed: 5,
    };
    let mut agent = Agent::new(cfg);
    let encoder = *agent.encoder();
    let objective = agent.objective();
    let mut envs: Vec<SchedulingEnv> = (0..8)
        .map(|_| SchedulingEnv::new(trace.clone(), 128, SimConfig::default(), encoder, objective))
        .collect();
    let seeds: Vec<u64> = (0..8).collect();
    let (batch, _stats) = collect_rollouts(agent.ppo(), &mut envs, &seeds);
    println!(
        "batch: {} transitions, minibatch 512, 5 pi + 5 v iters, kernel@64, reps {reps}\n",
        batch.len()
    );

    // Warm both arms (graph pools, fused scratch, optimizer state).
    let _ = agent.ppo_mut().update_fused(&batch);
    let _ = agent.ppo_mut().update_tape(&batch);

    let mut fused = UpdateProfile::default();
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let _ = agent.ppo_mut().update_fused_profiled(&batch, &mut fused);
    }
    let fused_wall = t0.elapsed();
    print_profile(
        "fused (tape-free analytic backward)",
        &fused,
        reps,
        fused_wall,
    );
    println!();

    let mut tape = UpdateProfile::default();
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let _ = agent.ppo_mut().update_tape_profiled(&batch, &mut tape);
    }
    let tape_wall = t0.elapsed();
    print_profile("tape (autodiff graph)", &tape, reps, tape_wall);
    println!(
        "\nspeedup: {:.2}x wall ({:.2} -> {:.2} ms)",
        tape_wall.as_secs_f64() / fused_wall.as_secs_f64(),
        tape_wall.as_secs_f64() * 1e3 / reps as f64,
        fused_wall.as_secs_f64() * 1e3 / reps as f64,
    );
}
