//! Offline shim for `serde`.
//!
//! Upstream serde abstracts over data formats through visitor-based
//! `Serializer`/`Deserializer` traits. This workspace only ever serializes
//! to and from JSON, so the shim collapses that machinery into one owned
//! tree type, [`Value`]: `Serialize` renders into a `Value`, `Deserialize`
//! reads back out of one, and the `serde_json` shim handles text. The
//! `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` shim) generate externally-tagged representations that
//! match upstream serde's defaults (unit enum variants as strings, newtype
//! variants as single-key objects, …), so checkpoint files stay readable
//! if the real crates are ever swapped back in.

pub use serde_derive::{Deserialize, Serialize};

/// JSON object storage. Upstream serde_json preserves insertion order
/// behind a feature flag; sorted keys (BTreeMap) are deterministic, which
/// is what the repro's result files want.
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// An owned JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error {
            msg: format!("missing field `{name}`"),
        }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error {
            msg: format!("expected {what}, found {kind}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Produce the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::expected("number", v))?;
                Ok(n as $t)
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let mut it = arr.iter();
                let out = ($(
                    {
                        let _ = $idx;
                        $name::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                    },
                )+);
                Ok(out)
            }
        }
    )*};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<K: ToString, V: Serialize> Serialize for Map<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&(1.5f64).to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let v: Option<f32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<f32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn tuples_are_arrays() {
        let t = (1.0f64, 2.0f64);
        let v = t.to_value();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(<(f64, f64)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn mismatches_error() {
        assert!(u32::from_value(&Value::String("no".into())).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(true)).is_err());
    }
}
