//! SchedGym throughput: full-episode simulation cost with and without
//! EASY backfilling, across workload shapes. Training cost (Table IX) is
//! bounded below by this — every trajectory is one simulated episode.

use criterion::{criterion_group, criterion_main, Criterion};

use rlsched_sched::{HeuristicKind, PriorityScheduler};
use rlsched_sim::{run_episode, SimConfig};
use rlsched_workload::NamedWorkload;

fn bench_episode(c: &mut Criterion) {
    let trace = NamedWorkload::Lublin1.generate(512, 7);
    let window = trace.window(0, 256).expect("window");

    let mut group = c.benchmark_group("episode_256_jobs");
    for (name, cfg) in [
        ("fcfs_nobf", SimConfig::no_backfill()),
        ("fcfs_easy", SimConfig::with_backfill()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut fcfs = PriorityScheduler::new(HeuristicKind::Fcfs);
                std::hint::black_box(run_episode(&window, cfg, &mut fcfs).expect("episode"))
            })
        });
    }
    for (name, kind) in [
        ("sjf_easy", HeuristicKind::Sjf),
        ("f1_easy", HeuristicKind::F1),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sched = PriorityScheduler::new(kind);
                std::hint::black_box(
                    run_episode(&window, SimConfig::with_backfill(), &mut sched).expect("episode"),
                )
            })
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation_1k_jobs");
    for w in [
        NamedWorkload::Lublin1,
        NamedWorkload::PikIplex,
        NamedWorkload::AnlIntrepid,
    ] {
        group.bench_function(w.name(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(w.generate(1000, seed))
            })
        });
    }
    group.finish();
}

/// Short, CI-friendly measurement settings: these are latency gauges, not
/// regression-grade statistics.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}
criterion_group! {name = benches; config = short_config(); targets = bench_episode, bench_workload_generation}
criterion_main!(benches);
