//! The reproduction driver: regenerates every table and figure of the
//! RLScheduler paper's evaluation section.
//!
//! ```text
//! repro <experiment> [--full] [--seed N] [--out DIR]
//!
//! experiments:
//!   table2              trace characteristics
//!   fig3 fig7           PIK-IPLEX variance analysis / filter distribution
//!   fig8                policy-network architecture comparison
//!   fig9                trajectory filtering on/off
//!   fig10 fig11 fig12 fig13   training curves (bsld/util/slowdown/wait)
//!   table5 table6 table10 table11   scheduling grids (bsld/util/sld/wait)
//!   table7              transfer study (RL-X on trace Y)
//!   table8              fairness (Maximal per-user bsld)
//!   table9              computational cost
//!   ablate-obs ablate-filter-range   design ablations
//!   bench-trajectory    committed microbenchmark medians (BENCH_*.json)
//!   all                 every paper experiment above, in order
//! ```

use std::process::ExitCode;

use rlsched_bench::experiments::{ablations, figures, tables};
use rlsched_bench::{Profile, Report};
use rlsched_sim::MetricKind;

struct Args {
    experiment: String,
    full: bool,
    seed: Option<u64>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut full = false;
    let mut seed = None;
    let mut out = "results".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse::<u64>().map_err(|_| format!("bad seed: {v}"))?);
            }
            "--out" => out = it.next().ok_or("--out needs a value")?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string())
            }
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    Ok(Args {
        experiment: experiment.ok_or(USAGE.to_string())?,
        full,
        seed,
        out,
    })
}

const USAGE: &str = "usage: repro <experiment> [--full] [--seed N] [--out DIR]\n\
experiments: table2 fig3 fig7 fig8 fig9 fig10 fig11 fig12 fig13 \
table5 table6 table7 table8 table9 table10 table11 ablate-obs ablate-filter-range \
bench-trajectory all";

/// The perf trajectory: every committed `BENCH_*.json` (pattern-scanned,
/// so new benches like `BENCH_serving.json` ride along automatically) as
/// console tables + one `results/bench_trajectory.json`, diffable across
/// PRs without parsing bench console logs.
fn bench_trajectory(report: &mut Report) {
    use std::path::Path;
    // `cargo run` starts binaries at the workspace root; `cargo bench`
    // writes reports to the package root. Cover both cwd conventions.
    let dir = ["crates/bench", "."]
        .map(Path::new)
        .into_iter()
        .find(|d| rlsched_bench::report::list_bench_reports(d).is_ok_and(|files| !files.is_empty()))
        .unwrap_or(Path::new("."));
    let reports = rlsched_bench::report::load_bench_reports(dir).unwrap_or_default();
    report.section(&format!(
        "Microbenchmark medians ({} BENCH_*.json under {})",
        reports.len(),
        dir.display()
    ));
    for (name, entries) in &reports {
        let rows: Vec<Vec<String>> = entries
            .iter()
            .map(|(id, ns)| vec![id.clone(), format!("{:.2}", ns / 1e3)])
            .collect();
        report.table(&[name, "median µs"], &rows);
        let mut m = serde_json::Map::new();
        for (id, ns) in entries {
            m.insert(id.clone(), serde_json::to_value(ns));
        }
        report.record(name, serde_json::Value::Object(m));
    }
}

fn run_one(id: &str, p: &Profile, out: &str) -> Result<(), String> {
    let mut report = Report::new(id, out);
    match id {
        "table2" => tables::table2(p, &mut report),
        "fig3" => figures::fig3(p, &mut report),
        "fig7" => figures::fig7(p, &mut report),
        "fig8" => figures::fig8(p, &mut report),
        "fig9" => figures::fig9(p, &mut report),
        "fig10" => figures::training_curves(p, MetricKind::BoundedSlowdown, "Fig 10", &mut report),
        "fig11" => figures::training_curves(p, MetricKind::Utilization, "Fig 11", &mut report),
        "fig12" => figures::training_curves(p, MetricKind::Slowdown, "Fig 12", &mut report),
        "fig13" => figures::training_curves(p, MetricKind::WaitTime, "Fig 13", &mut report),
        "table5" => tables::scheduling_grid(p, MetricKind::BoundedSlowdown, "Table V", &mut report),
        "table6" => tables::scheduling_grid(p, MetricKind::Utilization, "Table VI", &mut report),
        "table10" => tables::scheduling_grid(p, MetricKind::Slowdown, "Table X", &mut report),
        "table11" => tables::scheduling_grid(p, MetricKind::WaitTime, "Table XI", &mut report),
        "table7" => tables::table7(p, &mut report),
        "table8" => tables::table8(p, &mut report),
        "table9" => tables::table9(p, &mut report),
        "ablate-obs" => ablations::ablate_obs(p, &mut report),
        "ablate-filter-range" => ablations::ablate_filter_range(p, &mut report),
        "bench-trajectory" => bench_trajectory(&mut report),
        other => return Err(format!("unknown experiment: {other}\n{USAGE}")),
    }
    report.save().map_err(|e| format!("saving report: {e}"))?;
    Ok(())
}

const ALL: &[&str] = &[
    "table2",
    "fig3",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "ablate-obs",
    "ablate-filter-range",
];

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut profile = Profile::from_flag(args.full);
    if let Some(s) = args.seed {
        profile.seed = s;
    }
    println!(
        "profile: {} (traces {} jobs, {} epochs x {} traj x {} jobs, eval {} x {} jobs)",
        profile.name,
        profile.trace_jobs,
        profile.epochs,
        profile.trajectories,
        profile.train_seq,
        profile.eval_seqs,
        profile.eval_len
    );

    let t0 = std::time::Instant::now();
    let result = if args.experiment == "all" {
        ALL.iter()
            .try_for_each(|id| run_one(id, &profile, &args.out))
    } else {
        run_one(&args.experiment, &profile, &args.out)
    };
    println!("\n[total {:.1}s]", t0.elapsed().as_secs_f64());
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
