//! The environment abstraction: a masked discrete-action episodic
//! environment, the SchedGym contract of §IV-D seen from the agent's side.

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Next observation (flattened, `obs_dim` long). Meaningless when
    /// `done` is true.
    pub obs: Vec<f32>,
    /// Next additive action mask (`n_actions` long; 0 valid, very negative
    /// invalid). Meaningless when `done` is true.
    pub mask: Vec<f32>,
    /// Reward for the action just taken. In batch-job scheduling this is 0
    /// until the final action, which carries the whole episode metric
    /// (§IV-A of the paper).
    pub reward: f64,
    /// True when the episode just ended.
    pub done: bool,
    /// The episode's raw objective value (e.g. average bounded slowdown),
    /// reported once at `done` for logging/curves.
    pub episode_metric: Option<f64>,
}

/// A masked discrete-action episodic environment.
pub trait Env {
    /// Observation width (flattened).
    fn obs_dim(&self) -> usize;

    /// Action-space size (the paper's `MAX_OBSV_SIZE`, default 128).
    fn n_actions(&self) -> usize;

    /// Start a new episode derived from `seed` (the seed selects the job
    /// sequence; implementations must be reproducible). Returns the first
    /// observation and mask.
    fn reset(&mut self, seed: u64) -> (Vec<f32>, Vec<f32>);

    /// Apply an action.
    fn step(&mut self, action: usize) -> StepOutcome;
}

#[cfg(test)]
pub(crate) mod test_env {
    use super::*;

    /// A tiny bandit-style environment for substrate tests: `n_actions`
    /// arms, reward = arm index / n (higher arm, higher reward), episode
    /// length fixed. The optimal policy always picks the last arm; some
    /// arms are masked off to exercise masking.
    pub struct BanditEnv {
        pub n_actions: usize,
        pub episode_len: usize,
        pub t: usize,
        pub masked: Vec<usize>,
        pub acc: f64,
    }

    impl BanditEnv {
        pub fn new(n_actions: usize, episode_len: usize, masked: Vec<usize>) -> Self {
            BanditEnv {
                n_actions,
                episode_len,
                t: 0,
                masked,
                acc: 0.0,
            }
        }

        fn mask(&self) -> Vec<f32> {
            (0..self.n_actions)
                .map(|i| {
                    if self.masked.contains(&i) {
                        crate::categorical::MASK_OFF
                    } else {
                        0.0
                    }
                })
                .collect()
        }

        fn obs(&self) -> Vec<f32> {
            vec![self.t as f32 / self.episode_len as f32, 1.0]
        }
    }

    impl Env for BanditEnv {
        fn obs_dim(&self) -> usize {
            2
        }
        fn n_actions(&self) -> usize {
            self.n_actions
        }
        fn reset(&mut self, _seed: u64) -> (Vec<f32>, Vec<f32>) {
            self.t = 0;
            self.acc = 0.0;
            (self.obs(), self.mask())
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            assert!(!self.masked.contains(&action), "masked action selected");
            self.t += 1;
            self.acc += action as f64 / self.n_actions as f64;
            let done = self.t >= self.episode_len;
            StepOutcome {
                obs: self.obs(),
                mask: self.mask(),
                reward: if done { self.acc } else { 0.0 },
                done,
                episode_metric: if done { Some(self.acc) } else { None },
            }
        }
    }
}
